//! Error types for the expression language.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, ExprError>;

/// Errors raised while lexing, parsing, type-checking or evaluating stencil
/// code segments.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprError {
    /// An unexpected character was encountered while tokenizing.
    Lex {
        /// Byte position of the offending character.
        position: usize,
        /// The offending character.
        character: char,
    },
    /// The parser encountered an unexpected token.
    Parse {
        /// Byte position at which the error occurred.
        position: usize,
        /// Human-readable description of what was expected.
        message: String,
    },
    /// A field access used a malformed index expression (e.g. `a[2*i]`).
    InvalidIndex {
        /// Field being accessed.
        field: String,
        /// Description of the problem.
        message: String,
    },
    /// An unknown function name was called.
    UnknownFunction {
        /// The name that failed to resolve to a builtin math function.
        name: String,
    },
    /// A function was called with the wrong number of arguments.
    Arity {
        /// Function name.
        name: String,
        /// Number of arguments expected.
        expected: usize,
        /// Number of arguments found.
        found: usize,
    },
    /// The evaluator could not resolve a field access or scalar symbol.
    UnresolvedSymbol {
        /// Symbol that could not be resolved.
        name: String,
    },
    /// A type error was detected (e.g. using a boolean as an arithmetic
    /// operand).
    Type {
        /// Description of the mismatch.
        message: String,
    },
    /// Division by zero (or other undefined arithmetic) during constant
    /// folding or evaluation of integer expressions.
    Arithmetic {
        /// Description of the failure.
        message: String,
    },
    /// The program contained no statements.
    EmptyProgram,
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::Lex {
                position,
                character,
            } => write!(
                f,
                "unexpected character `{character}` at byte offset {position}"
            ),
            ExprError::Parse { position, message } => {
                write!(f, "parse error at byte offset {position}: {message}")
            }
            ExprError::InvalidIndex { field, message } => {
                write!(f, "invalid index expression for field `{field}`: {message}")
            }
            ExprError::UnknownFunction { name } => write!(f, "unknown function `{name}`"),
            ExprError::Arity {
                name,
                expected,
                found,
            } => write!(
                f,
                "function `{name}` expects {expected} argument(s), found {found}"
            ),
            ExprError::UnresolvedSymbol { name } => {
                write!(f, "unresolved symbol `{name}` during evaluation")
            }
            ExprError::Type { message } => write!(f, "type error: {message}"),
            ExprError::Arithmetic { message } => write!(f, "arithmetic error: {message}"),
            ExprError::EmptyProgram => write!(f, "program contains no statements"),
        }
    }
}

impl std::error::Error for ExprError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = vec![
            ExprError::Lex {
                position: 3,
                character: '$',
            },
            ExprError::Parse {
                position: 0,
                message: "expected expression".into(),
            },
            ExprError::UnknownFunction { name: "foo".into() },
            ExprError::EmptyProgram,
        ];
        for e in errors {
            let text = e.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ExprError>();
    }
}
