//! Compilation of stencil code segments to slot-resolved bytecode.
//!
//! The tree-walking [`crate::eval::Evaluator`] is the semantic reference for
//! the expression language, but it is far too slow for the hot path of the
//! stack: the reference executor and the functional mode of the spatial
//! simulator evaluate a code segment **once per cell of the iteration
//! space**, and the evaluator heap-allocates an offset vector and performs a
//! string-keyed resolver lookup for every field access of every cell, plus a
//! `BTreeMap` of locals per evaluation.
//!
//! [`CompiledKernel`] removes all of that from the inner loop:
//!
//! * The statement list is lowered **once** into a flat, postorder
//!   instruction array ([`Op`]) executed by a small stack machine over
//!   [`Value`]s. Locals become register indices, math functions dispatch on
//!   the [`MathFn`] enum, and constants are pre-folded with the bit-exact
//!   variant of the [`crate::fold`] pass.
//! * Every distinct field access `(field, offsets)` — and every scalar
//!   symbol — becomes an [`AccessSlot`] with a dense index. Consumers
//!   resolve each slot to their own storage **once per plan** (the reference
//!   executor binds slots to grids and flat-offset deltas; the simulator
//!   binds them to sliding-window taps) and then feed the kernel a plain
//!   `&[Value]` per cell: no strings, no allocation, no hashing.
//!
//! Evaluation semantics are identical to the evaluator bit for bit —
//! including type promotion, `f32` rounding, short-circuit logic, lazy
//! ternary branches, and integer-division errors — which the golden
//! equivalence suite checks exhaustively.
//!
//! On top of the slot-resolved bytecode, [`CompiledKernel::specialize`]
//! produces a [`TypedKernel`] when every instruction's result type can be
//! resolved statically from the slot types: evaluation then runs on raw
//! `f64`s with compile-time `f32` rounding flags, skipping `Value` tagging
//! and per-op promotion entirely (again bit-identical by construction).

use crate::ast::{BinOp, Expr, MathFn, Program, Stmt, UnOp};
use crate::error::{ExprError, Result};
use crate::eval::{eval_math_fn, math_fn_raw, AccessResolver};
use crate::fold::fold_program_exact;
use crate::types::DataType;
use crate::value::{CompareOp, Value};
use std::collections::BTreeMap;

/// One distinct access of a compiled kernel: a field (or scalar symbol) at a
/// fixed constant-offset vector. Scalar symbols have empty `offsets`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessSlot {
    /// Field or scalar symbol name.
    pub field: String,
    /// Constant offsets of the access (one per index used; empty for
    /// scalars).
    pub offsets: Vec<i64>,
    /// Index variables of the access, parallel to `offsets`.
    pub index_vars: Vec<String>,
}

impl AccessSlot {
    /// Whether this slot is a scalar symbol reference.
    pub fn is_scalar(&self) -> bool {
        self.offsets.is_empty()
    }
}

/// One instruction of the compiled kernel's stack machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push a literal value.
    Const(Value),
    /// Push the pre-resolved value of an access slot.
    Slot(u16),
    /// Push the value of a local register.
    Local(u16),
    /// Pop into a local register.
    Store(u16),
    /// Pop and discard (anonymous non-final statements).
    Pop,
    /// Unary operation on the stack top.
    Unary(UnOp),
    /// Binary (non-logical) operation on the two topmost values.
    Binary(BinOp),
    /// Math function of one argument.
    Call1(MathFn),
    /// Math function of two arguments.
    Call2(MathFn),
    /// Unconditional jump to an instruction index.
    Jump(u32),
    /// Pop; jump when false (ternary conditions).
    JumpIfFalse(u32),
    /// Pop; on false push `Bool(false)` and jump (short-circuit `&&`).
    AndShortCircuit(u32),
    /// Pop; on true push `Bool(true)` and jump (short-circuit `||`).
    OrShortCircuit(u32),
    /// Pop and push the value coerced to `Bool` (logical-operator results).
    ToBool,
    /// Branch-free conditional: pop `otherwise`, `then`, `cond` (in that
    /// order) and push `then` when `cond` is truthy, `otherwise` when it is
    /// not. Produced only by the if-conversion pass
    /// ([`crate::opt::IfConversion`]), which proves both arms side-effect
    /// free before rewriting a jump diamond into this form.
    Select,
}

/// Reusable evaluation scratch space; one per worker thread.
///
/// Holding the operand stack and local registers outside the kernel keeps
/// [`CompiledKernel::eval_slots`] allocation-free after the first call and
/// lets one immutable kernel be shared across threads.
#[derive(Debug, Default, Clone)]
pub struct EvalScratch {
    stack: Vec<Value>,
    locals: Vec<Value>,
}

/// A code segment lowered to slot-resolved bytecode.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledKernel {
    ops: Vec<Op>,
    slots: Vec<AccessSlot>,
    local_count: usize,
    max_stack: usize,
}

impl CompiledKernel {
    /// Lower a parsed code segment.
    ///
    /// The program is first constant-folded (bit-exactly); every remaining
    /// distinct access becomes an [`AccessSlot`].
    ///
    /// # Errors
    ///
    /// Returns [`ExprError::EmptyProgram`] for empty programs. Unresolvable
    /// symbols are *not* detected here — they surface when the consumer
    /// binds slots (mirroring the evaluator, which fails on first use).
    pub fn compile(program: &Program) -> Result<CompiledKernel> {
        Self::compile_with(program, &crate::opt::OptConfig::default())
    }

    /// Lower a parsed code segment and run the optimization pipeline with an
    /// explicit configuration (see [`crate::opt::PassManager`]). The default
    /// configuration enables every pass; [`crate::opt::OptConfig::disabled`]
    /// yields the raw lowering (also available as
    /// [`CompiledKernel::compile_unoptimized`]).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`CompiledKernel::compile`].
    pub fn compile_with(
        program: &Program,
        config: &crate::opt::OptConfig,
    ) -> Result<CompiledKernel> {
        let (kernel, _) = Self::compile_traced(program, config)?;
        Ok(kernel)
    }

    /// [`CompiledKernel::compile_with`], additionally returning the per-pass
    /// effect report (and, when `config.debug` is set, bytecode dumps after
    /// each pass that changed the kernel).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`CompiledKernel::compile`].
    pub fn compile_traced(
        program: &Program,
        config: &crate::opt::OptConfig,
    ) -> Result<(CompiledKernel, Vec<crate::opt::PassEffect>)> {
        if program.statements.is_empty() {
            return Err(ExprError::EmptyProgram);
        }
        let folded = fold_program_exact(program);
        let mut compiler = Compiler::default();
        let last = folded.statements.len() - 1;
        for (idx, stmt) in folded.statements.iter().enumerate() {
            compiler.lower_stmt(stmt, idx == last);
        }
        let mut ops = compiler.ops;
        let report = crate::opt::PassManager::standard(config).run(&mut ops);
        let max_stack = max_stack_of(&ops);
        let local_count = local_count_of(&ops);
        let kernel = CompiledKernel {
            ops,
            slots: compiler.slots,
            local_count,
            max_stack,
        };
        // Debug builds independently verify the finished kernel (the pass
        // manager already verified after each pass); the eval loops rely on
        // the proven invariants with debug-only checks.
        #[cfg(debug_assertions)]
        if let Err(e) = crate::verify::verify_kernel(&kernel, None) {
            panic!("compiled kernel failed verification: {e}");
        }
        Ok((kernel, report))
    }

    /// Lower a parsed code segment without running any optimization pass:
    /// ternaries and short-circuit logic stay jump-based. This is the
    /// semantic anchor the optimized form is differentially tested against.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`CompiledKernel::compile`].
    pub fn compile_unoptimized(program: &Program) -> Result<CompiledKernel> {
        Self::compile_with(program, &crate::opt::OptConfig::disabled())
    }

    /// The distinct accesses of this kernel, indexed by slot number.
    pub fn slots(&self) -> &[AccessSlot] {
        &self.slots
    }

    /// The lowered instruction stream.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of local registers the kernel uses.
    pub fn local_count(&self) -> usize {
        self.local_count
    }

    /// Maximum operand-stack depth, statically determined.
    pub fn max_stack(&self) -> usize {
        self.max_stack
    }

    /// Evaluate with pre-resolved slot values (the hot path).
    ///
    /// `slot_values[i]` must hold the value of `self.slots()[i]` for the
    /// current cell. After `scratch` has warmed up (first call), this
    /// performs no heap allocation.
    ///
    /// # Errors
    ///
    /// Propagates arithmetic failures (integer division by zero), exactly
    /// like the tree-walking evaluator.
    pub fn eval_slots(&self, slot_values: &[Value], scratch: &mut EvalScratch) -> Result<Value> {
        debug_assert_eq!(slot_values.len(), self.slots.len());
        let stack = &mut scratch.stack;
        stack.clear();
        stack.reserve(self.max_stack);
        scratch.locals.resize(self.local_count, Value::F64(0.0));
        let locals = &mut scratch.locals;

        let ops = &self.ops;
        let mut pc = 0usize;
        while pc < ops.len() {
            match ops[pc] {
                Op::Const(v) => stack.push(v),
                Op::Slot(ix) => stack.push(slot_values[ix as usize]),
                Op::Local(ix) => stack.push(locals[ix as usize]),
                Op::Store(ix) => {
                    locals[ix as usize] = pop_verified(stack, Value::F64(0.0), "Store")
                }
                Op::Pop => {
                    pop_verified(stack, Value::F64(0.0), "Pop");
                }
                Op::Unary(op) => {
                    let v = pop_verified(stack, Value::F64(0.0), "Unary");
                    stack.push(match op {
                        UnOp::Neg => v.neg(),
                        UnOp::Not => v.not(),
                    });
                }
                Op::Binary(op) => {
                    let r = pop_verified(stack, Value::F64(0.0), "Binary rhs");
                    let l = pop_verified(stack, Value::F64(0.0), "Binary lhs");
                    stack.push(match op {
                        BinOp::Add => l.add(r),
                        BinOp::Sub => l.sub(r),
                        BinOp::Mul => l.mul(r),
                        BinOp::Div => l.div(r)?,
                        BinOp::Lt => l.compare(r, CompareOp::Lt),
                        BinOp::Gt => l.compare(r, CompareOp::Gt),
                        BinOp::Le => l.compare(r, CompareOp::Le),
                        BinOp::Ge => l.compare(r, CompareOp::Ge),
                        BinOp::Eq => l.compare(r, CompareOp::Eq),
                        BinOp::Ne => l.compare(r, CompareOp::Ne),
                        BinOp::And | BinOp::Or => {
                            unreachable!("logical operators lower to jumps")
                        }
                    });
                }
                Op::Call1(func) => {
                    let a = pop_verified(stack, Value::F64(0.0), "Call1");
                    stack.push(eval_math_fn(func, &[a]));
                }
                Op::Call2(func) => {
                    let b = pop_verified(stack, Value::F64(0.0), "Call2 arg 2");
                    let a = pop_verified(stack, Value::F64(0.0), "Call2 arg 1");
                    stack.push(eval_math_fn(func, &[a, b]));
                }
                Op::Jump(target) => {
                    pc = target as usize;
                    continue;
                }
                Op::JumpIfFalse(target) => {
                    let c = pop_verified(stack, Value::F64(0.0), "JumpIfFalse");
                    if !c.as_bool() {
                        pc = target as usize;
                        continue;
                    }
                }
                Op::AndShortCircuit(target) => {
                    let l = pop_verified(stack, Value::F64(0.0), "AndShortCircuit");
                    if !l.as_bool() {
                        stack.push(Value::Bool(false));
                        pc = target as usize;
                        continue;
                    }
                }
                Op::OrShortCircuit(target) => {
                    let l = pop_verified(stack, Value::F64(0.0), "OrShortCircuit");
                    if l.as_bool() {
                        stack.push(Value::Bool(true));
                        pc = target as usize;
                        continue;
                    }
                }
                Op::ToBool => {
                    let v = pop_verified(stack, Value::F64(0.0), "ToBool");
                    stack.push(Value::Bool(v.as_bool()));
                }
                Op::Select => {
                    let otherwise = pop_verified(stack, Value::F64(0.0), "Select otherwise");
                    let then = pop_verified(stack, Value::F64(0.0), "Select then");
                    let cond = pop_verified(stack, Value::F64(0.0), "Select cond");
                    stack.push(if cond.as_bool() { then } else { otherwise });
                }
            }
            pc += 1;
        }
        stack.pop().ok_or(ExprError::EmptyProgram)
    }

    /// Specialize this kernel for the given slot data types, producing a
    /// [`TypedKernel`] that evaluates over raw `f64`s with **no `Value`
    /// tagging and no per-op promotion**.
    ///
    /// Specialization performs a static type-propagation pass over the
    /// bytecode: given the (bind-time) type of every slot, the result type
    /// of each instruction is determined by the same promotion rules the
    /// [`Value`] arithmetic applies dynamically. When every instruction
    /// resolves to a single static float (or boolean) type, the kernel is
    /// lowered to [`TypedOp`]s carrying a compile-time "round through `f32`"
    /// flag, and the typed evaluation loop is bit-identical to
    /// [`CompiledKernel::eval_slots`] by construction.
    ///
    /// Returns `None` — and consumers keep the dynamic `Value` path — when
    /// the kernel cannot be statically typed: integer-typed slots or
    /// literals (integer division can fail, which the infallible typed loop
    /// cannot express), arithmetic on two booleans, negation of a boolean
    /// (which promotes to `int64`), or control-flow joins whose branches
    /// produce different types.
    pub fn specialize(&self, slot_types: &[DataType]) -> Option<TypedKernel> {
        assert_eq!(
            slot_types.len(),
            self.slots.len(),
            "one data type per access slot"
        );
        let slot_stypes: Vec<SType> = slot_types
            .iter()
            .map(|&t| SType::from_data_type(t))
            .collect::<Option<_>>()?;

        let mut stack: Vec<SType> = Vec::new();
        let mut locals: Vec<Option<SType>> = vec![None; self.local_count];
        // Expected stack types at each forward-jump target. All jumps in the
        // bytecode are forward (ternaries and short-circuit logic), so one
        // linear pass visits every instruction with its full type context.
        let mut joins: BTreeMap<u32, Vec<SType>> = BTreeMap::new();
        let mut ops = Vec::with_capacity(self.ops.len());
        let mut live = true;

        fn join(joins: &mut BTreeMap<u32, Vec<SType>>, target: u32, snapshot: Vec<SType>) -> bool {
            match joins.get(&target) {
                Some(existing) => *existing == snapshot,
                None => {
                    joins.insert(target, snapshot);
                    true
                }
            }
        }

        for (pc, op) in self.ops.iter().enumerate() {
            if let Some(snapshot) = joins.get(&(pc as u32)) {
                if live {
                    if *snapshot != stack {
                        return None;
                    }
                } else {
                    stack = snapshot.clone();
                    live = true;
                }
            }
            if !live {
                // Fall-through past an unconditional jump with no recorded
                // join: the lowering never produces this, but bail rather
                // than guess.
                return None;
            }
            match *op {
                Op::Const(v) => {
                    stack.push(SType::from_data_type(v.data_type())?);
                    ops.push(TypedOp::Const(v.as_f64()));
                }
                Op::Slot(ix) => {
                    stack.push(slot_stypes[ix as usize]);
                    ops.push(TypedOp::Slot(ix));
                }
                Op::Local(ix) => {
                    stack.push(locals[ix as usize]?);
                    ops.push(TypedOp::Local(ix));
                }
                Op::Store(ix) => {
                    let t = stack.pop()?;
                    match locals[ix as usize] {
                        Some(previous) if previous != t => return None,
                        _ => locals[ix as usize] = Some(t),
                    }
                    ops.push(TypedOp::Store(ix));
                }
                Op::Pop => {
                    stack.pop()?;
                    ops.push(TypedOp::Pop);
                }
                Op::Unary(UnOp::Neg) => {
                    let t = stack.pop()?;
                    if t == SType::Bool {
                        // Negating a boolean promotes to int64.
                        return None;
                    }
                    stack.push(t);
                    ops.push(TypedOp::Neg {
                        round: t == SType::F32,
                    });
                }
                Op::Unary(UnOp::Not) => {
                    stack.pop()?;
                    stack.push(SType::Bool);
                    ops.push(TypedOp::Not);
                }
                Op::Binary(binop) => {
                    let r = stack.pop()?;
                    let l = stack.pop()?;
                    match binop {
                        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                            let t = SType::arithmetic(l, r)?;
                            let round = t == SType::F32;
                            stack.push(t);
                            ops.push(match binop {
                                BinOp::Add => TypedOp::Add { round },
                                BinOp::Sub => TypedOp::Sub { round },
                                BinOp::Mul => TypedOp::Mul { round },
                                BinOp::Div => TypedOp::Div { round },
                                _ => unreachable!(),
                            });
                        }
                        BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                            stack.push(SType::Bool);
                            ops.push(TypedOp::Compare(match binop {
                                BinOp::Lt => CompareOp::Lt,
                                BinOp::Gt => CompareOp::Gt,
                                BinOp::Le => CompareOp::Le,
                                BinOp::Ge => CompareOp::Ge,
                                BinOp::Eq => CompareOp::Eq,
                                BinOp::Ne => CompareOp::Ne,
                                _ => unreachable!(),
                            }));
                        }
                        BinOp::And | BinOp::Or => {
                            unreachable!("logical operators lower to jumps")
                        }
                    }
                }
                Op::Call1(func) => {
                    let a = stack.pop()?;
                    let t = SType::math_result(a, None);
                    stack.push(t);
                    ops.push(TypedOp::Call1(func, t == SType::F32));
                }
                Op::Call2(func) => {
                    let b = stack.pop()?;
                    let a = stack.pop()?;
                    let t = SType::math_result(a, Some(b));
                    stack.push(t);
                    ops.push(TypedOp::Call2(func, t == SType::F32));
                }
                Op::Jump(target) => {
                    if !join(&mut joins, target, stack.clone()) {
                        return None;
                    }
                    live = false;
                    ops.push(TypedOp::Jump(target));
                }
                Op::JumpIfFalse(target) => {
                    stack.pop()?;
                    if !join(&mut joins, target, stack.clone()) {
                        return None;
                    }
                    ops.push(TypedOp::JumpIfFalse(target));
                }
                Op::AndShortCircuit(target) => {
                    stack.pop()?;
                    let mut taken = stack.clone();
                    taken.push(SType::Bool);
                    if !join(&mut joins, target, taken) {
                        return None;
                    }
                    ops.push(TypedOp::AndFalse(target));
                }
                Op::OrShortCircuit(target) => {
                    stack.pop()?;
                    let mut taken = stack.clone();
                    taken.push(SType::Bool);
                    if !join(&mut joins, target, taken) {
                        return None;
                    }
                    ops.push(TypedOp::OrTrue(target));
                }
                Op::ToBool => {
                    stack.pop()?;
                    stack.push(SType::Bool);
                    ops.push(TypedOp::ToBool);
                }
                Op::Select => {
                    let otherwise = stack.pop()?;
                    let then = stack.pop()?;
                    stack.pop()?; // condition: any type (truthiness).
                    if then != otherwise {
                        // Mixed-type arms cannot resolve to one static type —
                        // the same condition that fails a jump-based join.
                        return None;
                    }
                    stack.push(then);
                    ops.push(TypedOp::Select);
                }
            }
        }
        // A jump may target one past the final instruction (ternary in tail
        // position): merge that join like any other.
        if let Some(snapshot) = joins.get(&(self.ops.len() as u32)) {
            if live {
                if *snapshot != stack {
                    return None;
                }
            } else {
                stack = snapshot.clone();
                live = true;
            }
        }
        if !live || stack.is_empty() {
            return None;
        }
        // Statically-typed if-conversion: the untyped pass keeps any
        // diamond whose arm contains a division (it cannot rule out the
        // fallible integer variant), but every op of this stream is now
        // proven float-typed — float division is IEEE-total — so the
        // remaining diamonds convert to branch-free selects here,
        // unlocking lane batching for division-heavy ternaries.
        if crate::opt::typed_if_convert(&mut ops) {
            // Both arms now evaluate unconditionally: the jump-based
            // stack bound no longer covers the select form.
            let max_stack = crate::opt::typed_max_stack_of(&ops);
            return Some(debug_verified_typed(TypedKernel {
                ops,
                slot_count: self.slots.len(),
                local_count: self.local_count,
                max_stack,
            }));
        }
        Some(debug_verified_typed(TypedKernel {
            ops,
            slot_count: self.slots.len(),
            local_count: self.local_count,
            max_stack: self.max_stack,
        }))
    }

    /// Convenience evaluation through an [`AccessResolver`]: resolves every
    /// slot, then runs the bytecode. Used by tests and one-off evaluations;
    /// hot paths should pre-bind slots and call
    /// [`CompiledKernel::eval_slots`].
    ///
    /// # Errors
    ///
    /// Returns [`ExprError::UnresolvedSymbol`] if the resolver cannot supply
    /// a slot, and propagates arithmetic failures.
    pub fn eval<R: AccessResolver + ?Sized>(&self, resolver: &R) -> Result<Value> {
        let mut values = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let value = resolver
                .resolve(&slot.field, &slot.offsets)
                .ok_or_else(|| ExprError::UnresolvedSymbol {
                    name: if slot.is_scalar() {
                        slot.field.clone()
                    } else {
                        format!("{}{:?}", slot.field, slot.offsets)
                    },
                })?;
            values.push(value);
        }
        self.eval_slots(&values, &mut EvalScratch::default())
    }
}

/// Static type of one stack position / local register in a specialized
/// kernel. Booleans are represented as `0.0` / `1.0`, matching
/// [`Value::as_f64`], so every slot of the typed stack is a plain `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SType {
    /// 32-bit float: every producing operation rounds through `f32`.
    F32,
    /// 64-bit float: no intermediate rounding.
    F64,
    /// Boolean (comparison / logic results), stored as `0.0` / `1.0`.
    Bool,
}

impl SType {
    fn from_data_type(dtype: DataType) -> Option<SType> {
        match dtype {
            DataType::Float32 => Some(SType::F32),
            DataType::Float64 => Some(SType::F64),
            DataType::Bool => Some(SType::Bool),
            // Integer arithmetic can fail (division by zero) and truncates
            // through `from_f64`; keep it on the fallible Value path.
            DataType::Int32 | DataType::Int64 => None,
        }
    }

    /// Result type of `+ - * /` on two operands, mirroring
    /// [`DataType::promote`]. `Bool ∘ Bool` stays boolean under promotion
    /// (the result is re-coerced through `from_f64`), which the typed loop
    /// does not model — reject it.
    fn arithmetic(l: SType, r: SType) -> Option<SType> {
        match (l, r) {
            (SType::Bool, SType::Bool) => None,
            (SType::F64, _) | (_, SType::F64) => Some(SType::F64),
            _ => Some(SType::F32),
        }
    }

    /// Result type of a math-function call, mirroring
    /// [`crate::eval::eval_math_fn`]: the promoted argument type if it is a
    /// float, otherwise `f64`.
    fn math_result(a: SType, b: Option<SType>) -> SType {
        let promoted = match (a, b) {
            (t, None) => t,
            (SType::Bool, Some(t)) | (t, Some(SType::Bool)) => t,
            (SType::F64, Some(_)) | (_, Some(SType::F64)) => SType::F64,
            (SType::F32, Some(SType::F32)) => SType::F32,
        };
        match promoted {
            SType::Bool => SType::F64,
            t => t,
        }
    }
}

/// One instruction of a type-specialized kernel. Arithmetic ops carry a
/// statically resolved `round` flag (`true` when the result type is `f32`);
/// comparisons push `0.0` / `1.0`; truthiness is `!= 0.0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TypedOp {
    /// Push a literal.
    Const(f64),
    /// Push a pre-resolved slot value.
    Slot(u16),
    /// Push a local register.
    Local(u16),
    /// Pop into a local register.
    Store(u16),
    /// Pop and discard.
    Pop,
    /// Arithmetic negation.
    Neg {
        /// Round the result through `f32`.
        round: bool,
    },
    /// Logical negation (pushes `0.0` / `1.0`).
    Not,
    /// Addition.
    Add {
        /// Round the result through `f32`.
        round: bool,
    },
    /// Subtraction.
    Sub {
        /// Round the result through `f32`.
        round: bool,
    },
    /// Multiplication.
    Mul {
        /// Round the result through `f32`.
        round: bool,
    },
    /// Division (always IEEE; integer kernels never specialize).
    Div {
        /// Round the result through `f32`.
        round: bool,
    },
    /// Comparison; pushes `0.0` / `1.0`.
    Compare(CompareOp),
    /// Math function of one argument; `true` rounds through `f32`.
    Call1(MathFn, bool),
    /// Math function of two arguments; `true` rounds through `f32`.
    Call2(MathFn, bool),
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump when zero.
    JumpIfFalse(u32),
    /// Pop; on zero push `0.0` and jump (short-circuit `&&`).
    AndFalse(u32),
    /// Pop; on non-zero push `1.0` and jump (short-circuit `||`).
    OrTrue(u32),
    /// Pop and push its truthiness as `0.0` / `1.0`.
    ToBool,
    /// Branch-free conditional: pop `otherwise`, `then`, `cond`; push `then`
    /// when `cond` is non-zero, `otherwise` when it is zero.
    Select,
}

/// Reusable scratch space for [`TypedKernel::eval_slots`]; one per worker
/// thread.
#[derive(Debug, Default, Clone)]
pub struct TypedScratch {
    stack: Vec<f64>,
    locals: Vec<f64>,
}

/// Default lane width used by the lane-batched consumers of [`TypedKernel`]
/// (the reference executor's interior sweep and the simulator's batched
/// window taps). Eight `f64` lanes fill one 512-bit vector register and
/// still map cleanly onto two 256-bit (AVX) or four 128-bit (SSE/NEON)
/// operations.
pub const KERNEL_LANES: usize = 8;

/// Wide lane width for kernels whose every operation rounds through `f32`
/// (see the reference executor's width dispatch): each `f32`-rounding op
/// appends a double `f64 ↔ f32` conversion to the dependency chain, so
/// narrow batches of such kernels are *latency*-bound — widening the batch
/// gives the conversion chain independent work to overlap with. Measured
/// on the Jacobi/chain kernels, 16 lanes run the f32 variants ~1.4-1.6x
/// faster per cell than 8 (and the once-proposed *narrowing* to 4 lanes
/// for f64 kernels measures strictly slower at every width below 8: lanes
/// are `f64`-typed regardless of the element type, so shrinking the batch
/// only sheds dispatch amortization). Wide batches only pay off when rows
/// are long enough that full batches dominate; the dispatch in
/// `stencilflow_reference` guards on the row length.
pub const KERNEL_LANES_WIDE: usize = 16;

/// Reusable scratch space for [`TypedKernel::eval_lanes`]; one per worker
/// thread.
#[derive(Debug, Clone)]
pub struct LaneScratch<const LANES: usize> {
    stack: Vec<[f64; LANES]>,
    locals: Vec<[f64; LANES]>,
}

impl<const LANES: usize> Default for LaneScratch<LANES> {
    fn default() -> Self {
        LaneScratch {
            stack: Vec::new(),
            locals: Vec::new(),
        }
    }
}

/// A [`CompiledKernel`] monomorphized for fixed slot types (see
/// [`CompiledKernel::specialize`]): evaluation runs entirely on raw `f64`s
/// with statically resolved rounding, skipping `Value` tagging and per-op
/// promotion. Specialized kernels are infallible — integer division (the
/// only failing operation) never specializes.
#[derive(Debug, Clone, PartialEq)]
pub struct TypedKernel {
    ops: Vec<TypedOp>,
    slot_count: usize,
    local_count: usize,
    max_stack: usize,
}

impl TypedKernel {
    /// Number of access slots (same layout and indices as the kernel this
    /// was specialized from).
    pub fn slot_count(&self) -> usize {
        self.slot_count
    }

    /// Number of local registers the kernel uses.
    pub fn local_count(&self) -> usize {
        self.local_count
    }

    /// Maximum operand-stack depth, statically determined.
    pub fn max_stack(&self) -> usize {
        self.max_stack
    }

    /// The specialized instruction stream.
    pub fn ops(&self) -> &[TypedOp] {
        &self.ops
    }

    /// Whether this kernel can be evaluated lane-batched
    /// ([`TypedKernel::eval_lanes`]): the instruction stream must be free of
    /// control flow. Jumps cannot diverge per lane, so jump-based ternaries
    /// and short-circuit logic keep the scalar path; comparisons, `ToBool`,
    /// `Not`, and `Select` are branch-free and batch fine. The if-conversion
    /// pass ([`crate::opt::IfConversion`]) rewrites eligible jump diamonds
    /// into [`TypedOp::Select`], which is how formerly-branchy kernels gain
    /// lane support.
    pub fn supports_lanes(&self) -> bool {
        !self.ops.iter().any(|op| {
            matches!(
                op,
                TypedOp::Jump(_)
                    | TypedOp::JumpIfFalse(_)
                    | TypedOp::AndFalse(_)
                    | TypedOp::OrTrue(_)
            )
        })
    }

    /// Evaluate with pre-resolved raw slot values (the hot path).
    ///
    /// `slot_values[i]` must hold the value of slot `i` for the current
    /// cell, already representable in the slot's type (grid storage
    /// guarantees this: every store rounds through the element type).
    /// Booleans are `0.0` / `1.0`. After `scratch` has warmed up, this
    /// performs no heap allocation.
    pub fn eval_slots(&self, slot_values: &[f64], scratch: &mut TypedScratch) -> f64 {
        debug_assert_eq!(slot_values.len(), self.slot_count);
        #[inline]
        fn finish(v: f64, round: bool) -> f64 {
            if round {
                v as f32 as f64
            } else {
                v
            }
        }
        let stack = &mut scratch.stack;
        stack.clear();
        stack.reserve(self.max_stack);
        scratch.locals.clear();
        scratch.locals.resize(self.local_count, 0.0);
        let locals = &mut scratch.locals;

        let ops = &self.ops;
        let mut pc = 0usize;
        while pc < ops.len() {
            match ops[pc] {
                TypedOp::Const(v) => stack.push(v),
                TypedOp::Slot(ix) => stack.push(slot_values[ix as usize]),
                TypedOp::Local(ix) => stack.push(locals[ix as usize]),
                TypedOp::Store(ix) => {
                    locals[ix as usize] = pop_verified(stack, 0.0, "Store");
                }
                TypedOp::Pop => {
                    pop_verified(stack, 0.0, "Pop");
                }
                TypedOp::Neg { round } => {
                    let v = pop_verified(stack, 0.0, "Neg");
                    stack.push(finish(-v, round));
                }
                TypedOp::Not => {
                    let v = pop_verified(stack, 0.0, "Not");
                    stack.push(if v != 0.0 { 0.0 } else { 1.0 });
                }
                TypedOp::Add { round } => {
                    let r = pop_verified(stack, 0.0, "Add rhs");
                    let l = pop_verified(stack, 0.0, "Add lhs");
                    stack.push(finish(l + r, round));
                }
                TypedOp::Sub { round } => {
                    let r = pop_verified(stack, 0.0, "Sub rhs");
                    let l = pop_verified(stack, 0.0, "Sub lhs");
                    stack.push(finish(l - r, round));
                }
                TypedOp::Mul { round } => {
                    let r = pop_verified(stack, 0.0, "Mul rhs");
                    let l = pop_verified(stack, 0.0, "Mul lhs");
                    stack.push(finish(l * r, round));
                }
                TypedOp::Div { round } => {
                    let r = pop_verified(stack, 0.0, "Div rhs");
                    let l = pop_verified(stack, 0.0, "Div lhs");
                    stack.push(finish(l / r, round));
                }
                TypedOp::Compare(op) => {
                    let r = pop_verified(stack, 0.0, "Compare rhs");
                    let l = pop_verified(stack, 0.0, "Compare lhs");
                    let result = match op {
                        CompareOp::Lt => l < r,
                        CompareOp::Gt => l > r,
                        CompareOp::Le => l <= r,
                        CompareOp::Ge => l >= r,
                        CompareOp::Eq => l == r,
                        CompareOp::Ne => l != r,
                    };
                    stack.push(if result { 1.0 } else { 0.0 });
                }
                TypedOp::Call1(func, round) => {
                    let a = pop_verified(stack, 0.0, "Call1");
                    stack.push(finish(math_fn_raw(func, a, 0.0), round));
                }
                TypedOp::Call2(func, round) => {
                    let b = pop_verified(stack, 0.0, "Call2 arg 2");
                    let a = pop_verified(stack, 0.0, "Call2 arg 1");
                    stack.push(finish(math_fn_raw(func, a, b), round));
                }
                TypedOp::Jump(target) => {
                    pc = target as usize;
                    continue;
                }
                TypedOp::JumpIfFalse(target) => {
                    let c = pop_verified(stack, 0.0, "JumpIfFalse");
                    if c == 0.0 {
                        pc = target as usize;
                        continue;
                    }
                }
                TypedOp::AndFalse(target) => {
                    let l = pop_verified(stack, 0.0, "AndFalse");
                    if l == 0.0 {
                        stack.push(0.0);
                        pc = target as usize;
                        continue;
                    }
                }
                TypedOp::OrTrue(target) => {
                    let l = pop_verified(stack, 0.0, "OrTrue");
                    if l != 0.0 {
                        stack.push(1.0);
                        pc = target as usize;
                        continue;
                    }
                }
                TypedOp::ToBool => {
                    let v = pop_verified(stack, 0.0, "ToBool");
                    stack.push(if v != 0.0 { 1.0 } else { 0.0 });
                }
                TypedOp::Select => {
                    let otherwise = pop_verified(stack, 0.0, "Select otherwise");
                    let then = pop_verified(stack, 0.0, "Select then");
                    let cond = pop_verified(stack, 0.0, "Select cond");
                    stack.push(if cond != 0.0 { then } else { otherwise });
                }
            }
            pc += 1;
        }
        pop_verified(stack, 0.0, "result")
    }

    /// Evaluate `LANES` cells per bytecode pass (the lane-batched hot path).
    ///
    /// `slot_values[i][lane]` must hold the value of slot `i` for lane
    /// `lane`, under the same preconditions as
    /// [`TypedKernel::eval_slots`]. Every instruction applies the identical
    /// scalar `f64` computation (including the static `f32`-rounding flags)
    /// independently per lane, so lane `l` of the result is bit-identical to
    /// a scalar evaluation of lane `l`'s slot values — the per-lane loops
    /// over plain `[f64; LANES]` arrays are written so rustc autovectorizes
    /// them, and the bytecode-dispatch cost is amortized over all lanes.
    ///
    /// # Panics
    ///
    /// The kernel must be branch-free ([`TypedKernel::supports_lanes`]);
    /// control-flow instructions panic.
    pub fn eval_lanes<const LANES: usize>(
        &self,
        slot_values: &[[f64; LANES]],
        scratch: &mut LaneScratch<LANES>,
    ) -> [f64; LANES] {
        debug_assert_eq!(slot_values.len(), self.slot_count);
        self.eval_lanes_with(|ix| slot_values[ix], scratch)
    }

    /// [`TypedKernel::eval_lanes`] with the slot gather supplied as a
    /// callback: `load(i)` returns the lane batch of slot `i`, letting
    /// consumers that hold slot data in contiguous storage (the fused
    /// tile sweep) construct each batch directly on the operand stack
    /// instead of staging it through a slot-value array. `load` may be
    /// called several times for the same slot (CSE re-emits leaf taps);
    /// it must be pure.
    ///
    /// # Panics
    ///
    /// The kernel must be branch-free ([`TypedKernel::supports_lanes`]);
    /// control-flow instructions panic.
    pub fn eval_lanes_with<const LANES: usize>(
        &self,
        load: impl Fn(usize) -> [f64; LANES],
        scratch: &mut LaneScratch<LANES>,
    ) -> [f64; LANES] {
        #[inline]
        fn finish<const LANES: usize>(v: &mut [f64; LANES], round: bool) {
            if round {
                for lane in v.iter_mut() {
                    *lane = *lane as f32 as f64;
                }
            }
        }
        let stack = &mut scratch.stack;
        stack.clear();
        stack.reserve(self.max_stack);
        scratch.locals.clear();
        scratch.locals.resize(self.local_count, [0.0; LANES]);
        let locals = &mut scratch.locals;

        for op in &self.ops {
            match *op {
                TypedOp::Const(v) => stack.push([v; LANES]),
                TypedOp::Slot(ix) => stack.push(load(ix as usize)),
                TypedOp::Local(ix) => stack.push(locals[ix as usize]),
                TypedOp::Store(ix) => {
                    locals[ix as usize] = pop_verified(stack, [0.0; LANES], "Store");
                }
                TypedOp::Pop => {
                    pop_verified(stack, [0.0; LANES], "Pop");
                }
                TypedOp::Neg { round } => {
                    let v = top_verified(stack, "Neg");
                    for lane in v.iter_mut() {
                        *lane = -*lane;
                    }
                    finish(v, round);
                }
                TypedOp::Not => {
                    let v = top_verified(stack, "Not");
                    for lane in v.iter_mut() {
                        *lane = if *lane != 0.0 { 0.0 } else { 1.0 };
                    }
                }
                TypedOp::Add { round } => {
                    let r = pop_verified(stack, [0.0; LANES], "Add rhs");
                    let l = top_verified(stack, "Add lhs");
                    for (a, b) in l.iter_mut().zip(r.iter()) {
                        *a += b;
                    }
                    finish(l, round);
                }
                TypedOp::Sub { round } => {
                    let r = pop_verified(stack, [0.0; LANES], "Sub rhs");
                    let l = top_verified(stack, "Sub lhs");
                    for (a, b) in l.iter_mut().zip(r.iter()) {
                        *a -= b;
                    }
                    finish(l, round);
                }
                TypedOp::Mul { round } => {
                    let r = pop_verified(stack, [0.0; LANES], "Mul rhs");
                    let l = top_verified(stack, "Mul lhs");
                    for (a, b) in l.iter_mut().zip(r.iter()) {
                        *a *= b;
                    }
                    finish(l, round);
                }
                TypedOp::Div { round } => {
                    let r = pop_verified(stack, [0.0; LANES], "Div rhs");
                    let l = top_verified(stack, "Div lhs");
                    for (a, b) in l.iter_mut().zip(r.iter()) {
                        *a /= b;
                    }
                    finish(l, round);
                }
                TypedOp::Compare(cmp) => {
                    let r = pop_verified(stack, [0.0; LANES], "Compare rhs");
                    let l = top_verified(stack, "Compare lhs");
                    for (a, b) in l.iter_mut().zip(r.iter()) {
                        let result = match cmp {
                            CompareOp::Lt => *a < *b,
                            CompareOp::Gt => *a > *b,
                            CompareOp::Le => *a <= *b,
                            CompareOp::Ge => *a >= *b,
                            CompareOp::Eq => *a == *b,
                            CompareOp::Ne => *a != *b,
                        };
                        *a = if result { 1.0 } else { 0.0 };
                    }
                }
                TypedOp::Call1(func, round) => {
                    let v = top_verified(stack, "Call1");
                    for lane in v.iter_mut() {
                        *lane = math_fn_raw(func, *lane, 0.0);
                    }
                    finish(v, round);
                }
                TypedOp::Call2(func, round) => {
                    let b = pop_verified(stack, [0.0; LANES], "Call2 arg 2");
                    let a = top_verified(stack, "Call2 arg 1");
                    for (x, y) in a.iter_mut().zip(b.iter()) {
                        *x = math_fn_raw(func, *x, *y);
                    }
                    finish(a, round);
                }
                TypedOp::ToBool => {
                    let v = top_verified(stack, "ToBool");
                    for lane in v.iter_mut() {
                        *lane = if *lane != 0.0 { 1.0 } else { 0.0 };
                    }
                }
                TypedOp::Select => {
                    let otherwise = pop_verified(stack, [0.0; LANES], "Select otherwise");
                    let then = pop_verified(stack, [0.0; LANES], "Select then");
                    let cond = top_verified(stack, "Select cond");
                    for ((c, t), e) in cond.iter_mut().zip(then.iter()).zip(otherwise.iter()) {
                        *c = if *c != 0.0 { *t } else { *e };
                    }
                }
                TypedOp::Jump(_)
                | TypedOp::JumpIfFalse(_)
                | TypedOp::AndFalse(_)
                | TypedOp::OrTrue(_) => {
                    unreachable!("eval_lanes requires a branch-free kernel (supports_lanes)")
                }
            }
        }
        pop_verified(stack, [0.0; LANES], "result")
    }
}

/// In debug builds, run the bytecode verifier over a freshly specialized
/// stream — specialization bugs (including `typed_if_convert`'s rewrites)
/// surface at the construction site rather than cells later in an eval
/// loop. Release builds pass the kernel through untouched.
fn debug_verified_typed(kernel: TypedKernel) -> TypedKernel {
    #[cfg(debug_assertions)]
    if let Err(e) = crate::verify::verify_typed(&kernel) {
        panic!("specialized kernel failed verification: {e}");
    }
    kernel
}

/// Pop an operand the bytecode verifier proved present.
///
/// Every kernel entering an eval loop has passed [`crate::verify`] — run
/// after lowering, after every optimizer pass, and after specialization in
/// debug builds — which proves no reachable instruction underflows the
/// operand stack and that the kernel exits with exactly one result. The
/// `debug_assert!` restates that invariant at the call site; release
/// builds take the `unwrap_or` path, which carries no panic machinery
/// (`zero` is unreachable by the proof above).
#[inline(always)]
fn pop_verified<T>(stack: &mut Vec<T>, zero: T, what: &str) -> T {
    debug_assert!(!stack.is_empty(), "stack underflow: {what}");
    stack.pop().unwrap_or(zero)
}

/// Borrow the stack top the bytecode verifier proved present (see
/// [`pop_verified`] for the invariant). The `len - 1` index is trivially
/// in bounds under that proof; no `expect` payload is carried.
#[inline(always)]
fn top_verified<'a, T>(stack: &'a mut [T], what: &str) -> &'a mut T {
    debug_assert!(!stack.is_empty(), "stack underflow: {what}");
    let ix = stack.len().wrapping_sub(1);
    &mut stack[ix]
}

/// Lowering state.
#[derive(Default)]
struct Compiler {
    ops: Vec<Op>,
    slots: Vec<AccessSlot>,
    slot_index: BTreeMap<(String, Vec<i64>), u16>,
    locals: BTreeMap<String, u16>,
}

impl Compiler {
    fn lower_stmt(&mut self, stmt: &Stmt, is_last: bool) {
        self.lower_expr(&stmt.value);
        if is_last {
            // The final statement's value is the kernel result: leave it on
            // the stack (even when named — nothing can read the local).
            return;
        }
        match &stmt.name {
            Some(name) => {
                let next = self.locals.len() as u16;
                let register = *self.locals.entry(name.clone()).or_insert(next);
                self.ops.push(Op::Store(register));
            }
            None => self.ops.push(Op::Pop),
        }
    }

    fn slot_for(&mut self, field: &str, index_vars: Vec<String>, offsets: Vec<i64>) -> u16 {
        let key = (field.to_string(), offsets.clone());
        if let Some(&ix) = self.slot_index.get(&key) {
            return ix;
        }
        let ix = u16::try_from(self.slots.len()).expect("more than 65535 distinct accesses");
        self.slots.push(AccessSlot {
            field: field.to_string(),
            offsets,
            index_vars,
        });
        self.slot_index.insert(key, ix);
        ix
    }

    fn lower_expr(&mut self, expr: &Expr) {
        match expr {
            Expr::IntLit(v) => self.ops.push(Op::Const(Value::I64(*v))),
            Expr::FloatLit(v) => self.ops.push(Op::Const(Value::F64(*v))),
            Expr::Var(name) => {
                if let Some(&register) = self.locals.get(name) {
                    self.ops.push(Op::Local(register));
                } else {
                    // Scalar symbol: resolved by the consumer at bind time.
                    let slot = self.slot_for(name, Vec::new(), Vec::new());
                    self.ops.push(Op::Slot(slot));
                }
            }
            Expr::FieldAccess { field, indices } => {
                let offsets: Vec<i64> = indices.iter().map(|ix| ix.offset).collect();
                let vars: Vec<String> = indices.iter().map(|ix| ix.var.clone()).collect();
                let slot = self.slot_for(field, vars, offsets);
                self.ops.push(Op::Slot(slot));
            }
            Expr::Unary { op, operand } => {
                self.lower_expr(operand);
                self.ops.push(Op::Unary(*op));
            }
            Expr::Binary { op, lhs, rhs } => match op {
                BinOp::And => {
                    self.lower_expr(lhs);
                    let patch = self.ops.len();
                    self.ops.push(Op::AndShortCircuit(0));
                    self.lower_expr(rhs);
                    self.ops.push(Op::ToBool);
                    let end = self.ops.len() as u32;
                    self.ops[patch] = Op::AndShortCircuit(end);
                }
                BinOp::Or => {
                    self.lower_expr(lhs);
                    let patch = self.ops.len();
                    self.ops.push(Op::OrShortCircuit(0));
                    self.lower_expr(rhs);
                    self.ops.push(Op::ToBool);
                    let end = self.ops.len() as u32;
                    self.ops[patch] = Op::OrShortCircuit(end);
                }
                _ => {
                    self.lower_expr(lhs);
                    self.lower_expr(rhs);
                    self.ops.push(Op::Binary(*op));
                }
            },
            Expr::Ternary {
                cond,
                then,
                otherwise,
            } => {
                self.lower_expr(cond);
                let patch_else = self.ops.len();
                self.ops.push(Op::JumpIfFalse(0));
                self.lower_expr(then);
                let patch_end = self.ops.len();
                self.ops.push(Op::Jump(0));
                let else_target = self.ops.len() as u32;
                self.ops[patch_else] = Op::JumpIfFalse(else_target);
                self.lower_expr(otherwise);
                let end_target = self.ops.len() as u32;
                self.ops[patch_end] = Op::Jump(end_target);
            }
            Expr::Call { func, args } => {
                for arg in args {
                    self.lower_expr(arg);
                }
                match args.len() {
                    1 => self.ops.push(Op::Call1(*func)),
                    2 => self.ops.push(Op::Call2(*func)),
                    n => unreachable!("math functions have arity 1 or 2, got {n}"),
                }
            }
        }
    }
}

/// Statically determine the maximum operand-stack depth of an instruction
/// stream by abstract execution over instruction effects (jumps only ever
/// skip pushes, so a linear scan upper-bounds the true depth). Shared by the
/// lowering and by the optimization passes, which rewrite the stream.
pub(crate) fn max_stack_of(ops: &[Op]) -> usize {
    let mut depth = 0i64;
    let mut max = 0i64;
    for op in ops {
        depth += op_stack_effect(op);
        max = max.max(depth);
    }
    max.max(1) as usize
}

/// Net stack effect of one instruction on the fall-through path (an upper
/// bound for conditional control flow; see [`max_stack_of`]).
pub(crate) fn op_stack_effect(op: &Op) -> i64 {
    match op {
        Op::Const(_) | Op::Slot(_) | Op::Local(_) => 1,
        Op::Store(_) | Op::Pop | Op::Binary(_) | Op::Call2(_) | Op::JumpIfFalse(_) => -1,
        Op::Unary(_) | Op::Call1(_) | Op::Jump(_) | Op::ToBool => 0,
        // Short-circuit ops pop the lhs and conditionally push the result;
        // net effect on the fall-through path is -1, and the taken path
        // pushes one back, so 0 is the safe upper bound.
        Op::AndShortCircuit(_) | Op::OrShortCircuit(_) => 0,
        Op::Select => -2,
    }
}

/// Number of local registers an instruction stream uses (registers are
/// allocated densely from zero by both the lowering and the optimizer).
pub(crate) fn local_count_of(ops: &[Op]) -> usize {
    ops.iter()
        .map(|op| match op {
            Op::Store(ix) | Op::Local(ix) => *ix as usize + 1,
            _ => 0,
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{Evaluator, MapResolver};
    use crate::parser::parse_program;

    fn compile(code: &str) -> CompiledKernel {
        CompiledKernel::compile(&parse_program(code).unwrap()).unwrap()
    }

    fn check_matches_evaluator(code: &str, resolver: &MapResolver) {
        let program = parse_program(code).unwrap();
        let interpreted = Evaluator::new(resolver).eval_program(&program);
        let compiled = CompiledKernel::compile(&program).unwrap().eval(resolver);
        match (interpreted, compiled) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.data_type(), b.data_type(), "type mismatch for `{code}`");
                assert!(
                    a.as_f64().to_bits() == b.as_f64().to_bits()
                        || (a.as_f64().is_nan() && b.as_f64().is_nan()),
                    "value mismatch for `{code}`: {a:?} vs {b:?}"
                );
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "error mismatch for `{code}`"),
            (a, b) => panic!("outcome mismatch for `{code}`: {a:?} vs {b:?}"),
        }
    }

    fn resolver_f32() -> MapResolver {
        let mut r = MapResolver::new();
        r.insert_access("a", &[0], Value::F32(3.5));
        r.insert_access("a", &[-1], Value::F32(1.25));
        r.insert_access("a", &[1], Value::F32(-2.0));
        r.insert_access("b", &[0], Value::F32(0.0));
        r.insert_scalar("dt", Value::F32(0.25));
        r
    }

    #[test]
    fn matches_evaluator_on_arithmetic_and_locals() {
        let r = resolver_f32();
        for code in [
            "a[i] * 2.0 + 1.0",
            "x = a[i-1] + a[i+1]; y = x * dt; y - a[i]",
            "(a[i] + a[i-1]) / (a[i+1] - 2.0)",
            "-a[i] + -(a[i-1] * dt)",
            "sqrt(abs(a[i+1])) + min(a[i], max(a[i-1], dt))",
            "pow(a[i], 2.0) + exp(b[i]) + log(a[i]) + floor(a[i]) + ceil(dt)",
            "a[i] + 0.0",
            "1.0 * a[i] - 0.0",
        ] {
            check_matches_evaluator(code, &r);
        }
    }

    #[test]
    fn matches_evaluator_on_branches_and_logic() {
        let r = resolver_f32();
        for code in [
            "a[i] > 0.0 ? a[i] : -a[i]",
            "a[i+1] > 0.0 ? a[i] : -a[i]",
            "b[i] != 0.0 && 1 / 0 > 0 ? 1.0 : 2.0",
            "a[i] > 0.0 || 1 / 0 > 0 ? 1.0 : 2.0",
            "!(a[i] > 0.0) ? dt : a[i-1]",
            "(a[i] > 0.0 && a[i-1] > 0.0) ? (a[i+1] > 0.0 ? 1.0 : 2.0) : 3.0",
        ] {
            check_matches_evaluator(code, &r);
        }
    }

    #[test]
    fn matches_evaluator_on_errors() {
        let r = resolver_f32();
        // Integer division by zero errors identically in both paths.
        check_matches_evaluator("1 / 0", &r);
        check_matches_evaluator("x = 1 / 0; a[i]", &r);
        // Float division by zero is IEEE in both paths.
        check_matches_evaluator("a[i] / b[i]", &r);
    }

    #[test]
    fn slots_are_deduplicated() {
        let kernel = compile("u[i,j] * u[i,j] + u[i-1,j] + dt * dt");
        assert_eq!(kernel.slots().len(), 3);
        assert!(kernel
            .slots()
            .iter()
            .any(|s| s.is_scalar() && s.field == "dt"));
        let u_center = kernel
            .slots()
            .iter()
            .find(|s| s.field == "u" && s.offsets == vec![0, 0])
            .unwrap();
        assert_eq!(u_center.index_vars, vec!["i", "j"]);
    }

    #[test]
    fn constants_are_folded_at_compile_time() {
        let kernel = compile("a[i] * (2.0 * 3.0 + 4.0)");
        // 2*3+4 folds into a single constant: slot, const, mul.
        assert_eq!(kernel.ops().len(), 3);
        assert!(kernel.ops().contains(&Op::Const(Value::F64(10.0))));
    }

    #[test]
    fn unresolved_slots_error_at_bind_time() {
        let kernel = compile("missing[i] + 1.0");
        let r = MapResolver::new();
        assert!(matches!(
            kernel.eval(&r),
            Err(ExprError::UnresolvedSymbol { .. })
        ));
    }

    #[test]
    fn eval_slots_reuses_scratch_without_allocation_growth() {
        let kernel = compile("x = a[i-1] + a[i+1]; 0.5 * x + a[i]");
        let values = [Value::F32(1.0), Value::F32(2.0), Value::F32(3.0)];
        let mut scratch = EvalScratch::default();
        let first = kernel.eval_slots(&values, &mut scratch).unwrap();
        let stack_cap = scratch.stack.capacity();
        let locals_cap = scratch.locals.capacity();
        for _ in 0..100 {
            let again = kernel.eval_slots(&values, &mut scratch).unwrap();
            assert_eq!(again, first);
        }
        assert_eq!(scratch.stack.capacity(), stack_cap);
        assert_eq!(scratch.locals.capacity(), locals_cap);
    }

    #[test]
    fn max_stack_bounds_actual_depth() {
        let kernel = compile("((a[i] + a[i-1]) * (a[i+1] + dt)) / (a[i] - dt)");
        assert!(kernel.max_stack() >= 3);
        assert!(kernel.max_stack() <= 8);
        assert_eq!(kernel.local_count(), 0);
    }

    #[test]
    fn empty_program_is_rejected() {
        let program = Program { statements: vec![] };
        assert!(matches!(
            CompiledKernel::compile(&program),
            Err(ExprError::EmptyProgram)
        ));
    }

    /// Specialize `code` for slots uniformly typed `dtype`, evaluate both
    /// paths on the same resolver values, and require identical bits.
    fn check_typed_matches_value_path(code: &str, dtype: DataType, resolver: &MapResolver) {
        let kernel = compile(code);
        let slot_types: Vec<DataType> = kernel.slots().iter().map(|_| dtype).collect();
        let typed = kernel
            .specialize(&slot_types)
            .unwrap_or_else(|| panic!("`{code}` should specialize for {dtype}"));
        let mut values = Vec::new();
        let mut raw = Vec::new();
        for slot in kernel.slots() {
            let v = resolver
                .resolve(&slot.field, &slot.offsets)
                .unwrap_or_else(|| panic!("missing resolver entry for `{}`", slot.field));
            let v = v.cast(dtype);
            raw.push(v.as_f64());
            values.push(v);
        }
        let reference = kernel
            .eval_slots(&values, &mut EvalScratch::default())
            .unwrap();
        let specialized = typed.eval_slots(&raw, &mut TypedScratch::default());
        assert!(
            reference.as_f64().to_bits() == specialized.to_bits()
                || (reference.as_f64().is_nan() && specialized.is_nan()),
            "typed mismatch for `{code}` ({dtype}): {reference:?} vs {specialized:?}"
        );
    }

    #[test]
    fn typed_kernels_match_value_path_bitwise() {
        for dtype in [DataType::Float32, DataType::Float64] {
            let r = resolver_f32();
            for code in [
                "0.125 * (a[i] + a[i-1] + a[i+1] + b[i] + dt)",
                "x = a[i-1] + a[i+1]; y = x * dt; y - a[i]",
                "(a[i] + a[i-1]) / (a[i+1] - 2.0)",
                "-a[i] + -(a[i-1] * dt)",
                "sqrt(abs(a[i+1])) + min(a[i], max(a[i-1], dt))",
                "pow(a[i], 2.0) + exp(b[i]) + log(a[i]) + floor(a[i]) + ceil(dt)",
                "a[i] > 0.0 ? a[i] : -a[i]",
                "b[i] != 0.0 && a[i] > 0.0 ? a[i] : a[i-1]",
                "a[i] > 0.0 || b[i] > 0.0 ? a[i] : a[i-1]",
                "!(a[i] > 0.0) ? dt : a[i-1]",
                "a[i] / b[i]",
                "(a[i] > 0.0) + a[i-1]",
            ] {
                check_typed_matches_value_path(code, dtype, &r);
            }
        }
    }

    #[test]
    fn typed_f32_rounds_per_operation() {
        // 1/3 is inexact: an f32 addition must round before the f64 scale,
        // exactly like the Value path (adds are f32, the literal multiply
        // promotes to f64).
        let mut r = MapResolver::new();
        r.insert_access("a", &[0], Value::F32(1.0 / 3.0));
        r.insert_access("a", &[-1], Value::F32(2.0 / 3.0));
        check_typed_matches_value_path("0.1 * (a[i] + a[i-1])", DataType::Float32, &r);
        let kernel = compile("0.1 * (a[i] + a[i-1])");
        let typed = kernel
            .specialize(&[DataType::Float32, DataType::Float32])
            .unwrap();
        // The add is f32-typed, the multiply (f64 literal) is not.
        assert!(typed.ops().contains(&TypedOp::Add { round: true }));
        assert!(typed.ops().contains(&TypedOp::Mul { round: false }));
    }

    #[test]
    fn all_f64_kernels_never_round() {
        let kernel = compile("0.25 * (a[i-1] + a[i+1]) - a[i]");
        let typed = kernel.specialize(&[DataType::Float64; 3]).unwrap();
        assert!(typed.ops().iter().all(|op| !matches!(
            op,
            TypedOp::Add { round: true }
                | TypedOp::Sub { round: true }
                | TypedOp::Mul { round: true }
                | TypedOp::Div { round: true }
        )));
    }

    #[test]
    fn unspecializable_kernels_fall_back() {
        // Integer literals make integer arithmetic (and its division error)
        // possible: no specialization.
        let kernel = compile("a[i] + 1 / 2");
        assert!(kernel.specialize(&[DataType::Float32]).is_none());
        // Integer-typed slots: no specialization.
        let kernel = compile("a[i] * 2.0");
        assert!(kernel.specialize(&[DataType::Int32]).is_none());
        // Ternary branches of different static types: no specialization.
        let kernel = compile("a[i] > 0.0 ? a[i] : 0.5");
        assert!(kernel.specialize(&[DataType::Float32]).is_none());
        // ... but the same program with f64 slots joins cleanly.
        assert!(kernel.specialize(&[DataType::Float64]).is_some());
    }

    #[test]
    fn typed_scratch_reuse_does_not_allocate() {
        let kernel = compile("x = a[i-1] + a[i+1]; 0.5 * x + a[i]");
        let typed = kernel.specialize(&[DataType::Float32; 3]).unwrap();
        let raw = [1.0, 2.0, 3.0];
        let mut scratch = TypedScratch::default();
        let first = typed.eval_slots(&raw, &mut scratch);
        let stack_cap = scratch.stack.capacity();
        let locals_cap = scratch.locals.capacity();
        for _ in 0..100 {
            assert_eq!(typed.eval_slots(&raw, &mut scratch), first);
        }
        assert_eq!(scratch.stack.capacity(), stack_cap);
        assert_eq!(scratch.locals.capacity(), locals_cap);
    }

    /// Branch-free codes used by the lane-batching tests: arithmetic,
    /// locals, math functions, comparisons used as values, `!`, and —
    /// since the if-conversion pass — ternaries and short-circuit logic
    /// lowered to selects.
    const LANE_CODES: &[&str] = &[
        "0.125 * (a[i] + a[i-1] + a[i+1] + b[i] + dt)",
        "x = a[i-1] + a[i+1]; y = x * dt; y - a[i]",
        "(a[i] + a[i-1]) / (a[i+1] - 2.0)",
        "-a[i] + -(a[i-1] * dt)",
        "sqrt(abs(a[i+1])) + min(a[i], max(a[i-1], dt))",
        "pow(a[i], 2.0) + exp(b[i]) + log(a[i]) + floor(a[i]) + ceil(dt)",
        "(a[i] > 0.0) + a[i-1]",
        "!(a[i] > 0.0) + a[i-1] * (b[i] <= dt)",
        "a[i] > 0.0 ? a[i] : -a[i]",
        "b[i] != 0.0 && a[i] > 0.0 ? a[i] * dt : a[i-1]",
        "u = a[i] > dt ? a[i] - a[i-1] : a[i+1] - a[i]; u * u + b[i]",
    ];

    #[test]
    fn lane_batched_matches_scalar_typed_bitwise() {
        // Each lane of `eval_lanes` must reproduce the scalar typed result
        // bit for bit, for f32 (per-op rounding) and f64 slot types.
        const LANES: usize = 8;
        for dtype in [DataType::Float32, DataType::Float64] {
            for code in LANE_CODES {
                let kernel = compile(code);
                let slot_types: Vec<DataType> = kernel.slots().iter().map(|_| dtype).collect();
                let typed = kernel
                    .specialize(&slot_types)
                    .unwrap_or_else(|| panic!("`{code}` should specialize for {dtype}"));
                assert!(typed.supports_lanes(), "`{code}` should be branch-free");
                // Distinct per-lane values, rounded through the slot type as
                // grid storage would round them.
                let lanes: Vec<[f64; LANES]> = (0..kernel.slots().len())
                    .map(|s| {
                        let mut row = [0.0; LANES];
                        for (lane, value) in row.iter_mut().enumerate() {
                            let raw = (s as f64 + 1.0) * 0.37 + lane as f64 * 0.61 - 1.7;
                            *value = Value::from_f64(raw, dtype).as_f64();
                        }
                        row
                    })
                    .collect();
                let batched = typed.eval_lanes(&lanes, &mut LaneScratch::default());
                let mut scratch = TypedScratch::default();
                for lane in 0..LANES {
                    let scalar_slots: Vec<f64> = lanes.iter().map(|row| row[lane]).collect();
                    let scalar = typed.eval_slots(&scalar_slots, &mut scratch);
                    assert!(
                        scalar.to_bits() == batched[lane].to_bits()
                            || (scalar.is_nan() && batched[lane].is_nan()),
                        "lane {lane} mismatch for `{code}` ({dtype}): \
                         {scalar:?} vs {:?}",
                        batched[lane]
                    );
                }
            }
        }
    }

    #[test]
    fn control_flow_blocks_lane_support() {
        // Jump-based diamonds survive in the *untyped* bytecode of the
        // unoptimized lowering, but `specialize` runs the statically-typed
        // if-conversion regardless of the untyped pipeline: once every op
        // is proven float-typed, no diamond of the expression language can
        // resist conversion, so every specialized kernel is branch-free
        // and lane-ready. (Kernels that cannot specialize at all — the
        // integer cases — remain on the jump-based `Value` path.)
        for code in [
            "a[i] > 0.0 ? a[i] : -a[i]",
            "b[i] != 0.0 && a[i] > 0.0 ? a[i] : a[i-1]",
            "a[i] > 0.0 || b[i] > 0.0 ? a[i] : a[i-1]",
        ] {
            let program = parse_program(code).unwrap();
            let kernel = CompiledKernel::compile_unoptimized(&program).unwrap();
            assert!(
                kernel
                    .ops()
                    .iter()
                    .any(|op| matches!(op, Op::Jump(_) | Op::JumpIfFalse(_))
                        || matches!(op, Op::AndShortCircuit(_) | Op::OrShortCircuit(_))),
                "unoptimized `{code}` should keep its jumps in the Value bytecode"
            );
            let slot_types: Vec<DataType> =
                kernel.slots().iter().map(|_| DataType::Float64).collect();
            let typed = kernel
                .specialize(&slot_types)
                .unwrap_or_else(|| panic!("`{code}` should specialize"));
            assert!(
                typed.supports_lanes(),
                "typed if-conversion should flatten `{code}` even without \
                 the untyped pass"
            );
            let optimized = CompiledKernel::compile(&program).unwrap();
            let typed = optimized
                .specialize(&slot_types)
                .unwrap_or_else(|| panic!("optimized `{code}` should specialize"));
            assert!(
                typed.supports_lanes(),
                "if-converted `{code}` should lane-batch"
            );
        }
        // A division in an arm resists the *untyped* pass (the `Value`
        // bytecode keeps its jumps), but specialization proves the
        // division float — infallible — and the statically-typed
        // if-conversion flattens the diamond, so the typed kernel is
        // branch-free and lane-ready.
        let program = parse_program("a[i] > 0.0 ? a[i] / b[i] : a[i]").unwrap();
        let kernel = CompiledKernel::compile(&program).unwrap();
        assert!(kernel
            .ops()
            .iter()
            .any(|op| matches!(op, Op::Jump(_) | Op::JumpIfFalse(_))));
        let typed = kernel.specialize(&[DataType::Float64; 2]).unwrap();
        assert!(typed.supports_lanes());
    }

    #[test]
    fn typed_if_conversion_flattens_division_diamonds() {
        // Division-carrying ternaries: the untyped bytecode must stay
        // lazy (integer division could error), the typed stream converts
        // to selects — and stays bit-identical to the jump-based `Value`
        // evaluation, division-by-zero arms (quiet inf/NaN) included.
        let mut r = MapResolver::new();
        r.insert_access("a", &[0], Value::F32(3.5));
        r.insert_access("a", &[-1], Value::F32(-1.25));
        r.insert_access("b", &[0], Value::F32(0.0));
        r.insert_scalar("dt", Value::F32(0.25));
        for code in [
            "a[i] > 0.0 ? a[i] / b[i] : a[i]",
            "b[i] > 0.0 ? a[i] / b[i] : a[i]",
            "a[i] / (b[i] != 0.0 ? b[i] : dt)",
            "u = a[i] > 0.0 ? a[i-1] / dt : dt / a[i]; u + a[i]",
            "b[i] != 0.0 && a[i] / b[i] > 1.0 ? 1.5 : 2.5",
            "a[i] > 0.0 || a[i] / b[i] > 1.0 ? 1.5 : 2.5",
        ] {
            for dtype in [DataType::Float32, DataType::Float64] {
                check_typed_matches_value_path(code, dtype, &r);
                let kernel = compile(code);
                let slot_types: Vec<DataType> = kernel.slots().iter().map(|_| dtype).collect();
                let typed = kernel
                    .specialize(&slot_types)
                    .unwrap_or_else(|| panic!("`{code}` should specialize"));
                assert!(
                    typed.supports_lanes(),
                    "`{code}` should be branch-free after typed if-conversion"
                );
            }
        }
    }

    #[test]
    fn typed_if_conversion_recomputes_the_stack_bound() {
        // The select form evaluates both arms before selecting: the
        // jump-based bound (arms never coexist) would under-reserve.
        let code = "a[i] > 0.0 ? (a[i] + a[i-1]) / (b[i] + dt) : a[i] / b[i]";
        let kernel = compile(code);
        let typed = kernel.specialize(&[DataType::Float32; 4]).unwrap();
        assert!(typed.supports_lanes());
        // cond + both arms' peak operands live together.
        assert!(typed.max_stack >= 4);
        // Deep nesting still evaluates correctly through the recomputed
        // reservation (exercises eval_slots and eval_lanes).
        let raw = vec![2.0, 1.0, 3.0, 0.5];
        let scalar = typed.eval_slots(&raw, &mut TypedScratch::default());
        let lanes: Vec<[f64; 4]> = raw.iter().map(|&v| [v; 4]).collect();
        let batched = typed.eval_lanes(&lanes, &mut LaneScratch::<4>::default());
        for lane in batched {
            assert_eq!(lane.to_bits(), scalar.to_bits());
        }
    }

    #[test]
    fn lane_scratch_reuse_does_not_allocate() {
        const LANES: usize = KERNEL_LANES;
        let kernel = compile("x = a[i-1] + a[i+1]; 0.5 * x + a[i]");
        let typed = kernel.specialize(&[DataType::Float32; 3]).unwrap();
        let lanes = vec![[1.0; LANES], [2.0; LANES], [3.0; LANES]];
        let mut scratch = LaneScratch::default();
        let first = typed.eval_lanes(&lanes, &mut scratch);
        let stack_cap = scratch.stack.capacity();
        let locals_cap = scratch.locals.capacity();
        for _ in 0..100 {
            assert_eq!(typed.eval_lanes(&lanes, &mut scratch), first);
        }
        assert_eq!(scratch.stack.capacity(), stack_cap);
        assert_eq!(scratch.locals.capacity(), locals_cap);
    }

    #[test]
    fn locals_shadow_scalars() {
        // `t` is a local after its assignment; before that it would be a
        // scalar — the language only allows use after definition, and the
        // compiled kernel mirrors the evaluator's scoping.
        let mut r = MapResolver::new();
        r.insert_access("a", &[0], Value::F32(2.0));
        check_matches_evaluator("t = a[i] * 3.0; t + t", &r);
    }
}
