//! Tokenizer for the stencil code-segment language.

use crate::error::{ExprError, Result};

/// A lexical token together with its byte position in the source string.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    /// The token itself.
    pub token: Token,
    /// Byte offset of the first character of the token.
    pub position: usize,
}

/// Lexical tokens of the stencil expression language.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier (field name, index variable, local variable, function name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `=`
    Assign,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
}

impl Token {
    /// Short human-readable description used in parse error messages.
    pub fn describe(&self) -> String {
        match self {
            Token::Ident(name) => format!("identifier `{name}`"),
            Token::Int(v) => format!("integer `{v}`"),
            Token::Float(v) => format!("float `{v}`"),
            other => format!("`{}`", other.symbol()),
        }
    }

    fn symbol(&self) -> &'static str {
        match self {
            Token::Plus => "+",
            Token::Minus => "-",
            Token::Star => "*",
            Token::Slash => "/",
            Token::LParen => "(",
            Token::RParen => ")",
            Token::LBracket => "[",
            Token::RBracket => "]",
            Token::Comma => ",",
            Token::Semicolon => ";",
            Token::Assign => "=",
            Token::Question => "?",
            Token::Colon => ":",
            Token::Lt => "<",
            Token::Gt => ">",
            Token::Le => "<=",
            Token::Ge => ">=",
            Token::EqEq => "==",
            Token::Ne => "!=",
            Token::AndAnd => "&&",
            Token::OrOr => "||",
            Token::Not => "!",
            Token::Ident(_) | Token::Int(_) | Token::Float(_) => "",
        }
    }
}

/// Tokenize a stencil code segment.
///
/// # Errors
///
/// Returns [`ExprError::Lex`] if an unexpected character is encountered.
///
/// # Example
///
/// ```
/// # use stencilflow_expr::lexer::{tokenize, Token};
/// let tokens = tokenize("a[i, j] + 1.5").unwrap();
/// assert_eq!(tokens[0].token, Token::Ident("a".into()));
/// assert_eq!(tokens.last().unwrap().token, Token::Float(1.5));
/// ```
pub fn tokenize(input: &str) -> Result<Vec<SpannedToken>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0usize;

    while pos < bytes.len() {
        let c = bytes[pos] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                pos += 1;
            }
            '#' => {
                // Comment until end of line; convenient for hand-written
                // multi-statement programs.
                while pos < bytes.len() && bytes[pos] as char != '\n' {
                    pos += 1;
                }
            }
            '+' => {
                tokens.push(SpannedToken {
                    token: Token::Plus,
                    position: pos,
                });
                pos += 1;
            }
            '-' => {
                tokens.push(SpannedToken {
                    token: Token::Minus,
                    position: pos,
                });
                pos += 1;
            }
            '*' => {
                tokens.push(SpannedToken {
                    token: Token::Star,
                    position: pos,
                });
                pos += 1;
            }
            '/' => {
                tokens.push(SpannedToken {
                    token: Token::Slash,
                    position: pos,
                });
                pos += 1;
            }
            '(' => {
                tokens.push(SpannedToken {
                    token: Token::LParen,
                    position: pos,
                });
                pos += 1;
            }
            ')' => {
                tokens.push(SpannedToken {
                    token: Token::RParen,
                    position: pos,
                });
                pos += 1;
            }
            '[' => {
                tokens.push(SpannedToken {
                    token: Token::LBracket,
                    position: pos,
                });
                pos += 1;
            }
            ']' => {
                tokens.push(SpannedToken {
                    token: Token::RBracket,
                    position: pos,
                });
                pos += 1;
            }
            ',' => {
                tokens.push(SpannedToken {
                    token: Token::Comma,
                    position: pos,
                });
                pos += 1;
            }
            ';' => {
                tokens.push(SpannedToken {
                    token: Token::Semicolon,
                    position: pos,
                });
                pos += 1;
            }
            '?' => {
                tokens.push(SpannedToken {
                    token: Token::Question,
                    position: pos,
                });
                pos += 1;
            }
            ':' => {
                tokens.push(SpannedToken {
                    token: Token::Colon,
                    position: pos,
                });
                pos += 1;
            }
            '=' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(SpannedToken {
                        token: Token::EqEq,
                        position: pos,
                    });
                    pos += 2;
                } else {
                    tokens.push(SpannedToken {
                        token: Token::Assign,
                        position: pos,
                    });
                    pos += 1;
                }
            }
            '<' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(SpannedToken {
                        token: Token::Le,
                        position: pos,
                    });
                    pos += 2;
                } else {
                    tokens.push(SpannedToken {
                        token: Token::Lt,
                        position: pos,
                    });
                    pos += 1;
                }
            }
            '>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(SpannedToken {
                        token: Token::Ge,
                        position: pos,
                    });
                    pos += 2;
                } else {
                    tokens.push(SpannedToken {
                        token: Token::Gt,
                        position: pos,
                    });
                    pos += 1;
                }
            }
            '!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(SpannedToken {
                        token: Token::Ne,
                        position: pos,
                    });
                    pos += 2;
                } else {
                    tokens.push(SpannedToken {
                        token: Token::Not,
                        position: pos,
                    });
                    pos += 1;
                }
            }
            '&' => {
                if bytes.get(pos + 1) == Some(&b'&') {
                    tokens.push(SpannedToken {
                        token: Token::AndAnd,
                        position: pos,
                    });
                    pos += 2;
                } else {
                    return Err(ExprError::Lex {
                        position: pos,
                        character: c,
                    });
                }
            }
            '|' => {
                if bytes.get(pos + 1) == Some(&b'|') {
                    tokens.push(SpannedToken {
                        token: Token::OrOr,
                        position: pos,
                    });
                    pos += 2;
                } else {
                    return Err(ExprError::Lex {
                        position: pos,
                        character: c,
                    });
                }
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = pos;
                let mut saw_dot = false;
                let mut saw_exp = false;
                while pos < bytes.len() {
                    let d = bytes[pos] as char;
                    if d.is_ascii_digit() {
                        pos += 1;
                    } else if d == '.' && !saw_dot && !saw_exp {
                        saw_dot = true;
                        pos += 1;
                    } else if (d == 'e' || d == 'E') && !saw_exp && pos > start {
                        saw_exp = true;
                        pos += 1;
                        if pos < bytes.len() && (bytes[pos] == b'+' || bytes[pos] == b'-') {
                            pos += 1;
                        }
                    } else if d == 'f' && pos > start {
                        // Allow a trailing `f` suffix (C-style float literal).
                        pos += 1;
                        break;
                    } else {
                        break;
                    }
                }
                let mut text = &input[start..pos];
                if text.ends_with('f') {
                    text = &text[..text.len() - 1];
                    saw_dot = true;
                }
                if saw_dot || saw_exp {
                    let value: f64 = text.parse().map_err(|_| ExprError::Lex {
                        position: start,
                        character: c,
                    })?;
                    tokens.push(SpannedToken {
                        token: Token::Float(value),
                        position: start,
                    });
                } else {
                    let value: i64 = text.parse().map_err(|_| ExprError::Lex {
                        position: start,
                        character: c,
                    })?;
                    tokens.push(SpannedToken {
                        token: Token::Int(value),
                        position: start,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = pos;
                while pos < bytes.len() {
                    let d = bytes[pos] as char;
                    if d.is_ascii_alphanumeric() || d == '_' {
                        pos += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(SpannedToken {
                    token: Token::Ident(input[start..pos].to_string()),
                    position: start,
                });
            }
            other => {
                return Err(ExprError::Lex {
                    position: pos,
                    character: other,
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Token> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn simple_expression() {
        assert_eq!(
            toks("a + 2"),
            vec![Token::Ident("a".into()), Token::Plus, Token::Int(2)]
        );
    }

    #[test]
    fn field_access_tokens() {
        assert_eq!(
            toks("u[i-1, j, k]"),
            vec![
                Token::Ident("u".into()),
                Token::LBracket,
                Token::Ident("i".into()),
                Token::Minus,
                Token::Int(1),
                Token::Comma,
                Token::Ident("j".into()),
                Token::Comma,
                Token::Ident("k".into()),
                Token::RBracket,
            ]
        );
    }

    #[test]
    fn float_literals() {
        assert_eq!(toks("0.5"), vec![Token::Float(0.5)]);
        assert_eq!(toks("1e-3"), vec![Token::Float(1e-3)]);
        assert_eq!(toks("2.5e2"), vec![Token::Float(250.0)]);
        assert_eq!(toks("3.0f"), vec![Token::Float(3.0)]);
    }

    #[test]
    fn comparison_and_logic_operators() {
        assert_eq!(
            toks("a <= b && c != d || !e"),
            vec![
                Token::Ident("a".into()),
                Token::Le,
                Token::Ident("b".into()),
                Token::AndAnd,
                Token::Ident("c".into()),
                Token::Ne,
                Token::Ident("d".into()),
                Token::OrOr,
                Token::Not,
                Token::Ident("e".into()),
            ]
        );
    }

    #[test]
    fn ternary_tokens() {
        assert_eq!(
            toks("a > 0 ? a : 0"),
            vec![
                Token::Ident("a".into()),
                Token::Gt,
                Token::Int(0),
                Token::Question,
                Token::Ident("a".into()),
                Token::Colon,
                Token::Int(0),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a # this is a comment\n + b"),
            vec![
                Token::Ident("a".into()),
                Token::Plus,
                Token::Ident("b".into())
            ]
        );
    }

    #[test]
    fn rejects_unknown_characters() {
        assert!(matches!(tokenize("a $ b"), Err(ExprError::Lex { .. })));
        assert!(matches!(tokenize("a & b"), Err(ExprError::Lex { .. })));
        assert!(matches!(tokenize("a | b"), Err(ExprError::Lex { .. })));
    }

    #[test]
    fn positions_are_byte_offsets() {
        let tokens = tokenize("ab + cd").unwrap();
        assert_eq!(tokens[0].position, 0);
        assert_eq!(tokens[1].position, 3);
        assert_eq!(tokens[2].position, 5);
    }
}
