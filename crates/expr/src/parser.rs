//! Recursive-descent parser for the stencil code-segment language.
//!
//! Grammar (in rough EBNF):
//!
//! ```text
//! program  := stmt (';' stmt)* ';'?
//! stmt     := IDENT '=' expr | expr
//! expr     := ternary
//! ternary  := or ('?' expr ':' ternary)?
//! or       := and ('||' and)*
//! and      := cmp ('&&' cmp)*
//! cmp      := add (CMPOP add)?
//! add      := mul (('+'|'-') mul)*
//! mul      := unary (('*'|'/') unary)*
//! unary    := ('-'|'!') unary | primary
//! primary  := NUMBER
//!           | IDENT '[' index (',' index)* ']'
//!           | IDENT '(' expr (',' expr)* ')'
//!           | IDENT
//!           | '(' expr ')'
//! index    := IDENT (('+'|'-') INT)? | INT
//! ```

use crate::ast::{BinOp, Expr, Index, MathFn, Program, Stmt, UnOp};
use crate::error::{ExprError, Result};
use crate::lexer::{tokenize, SpannedToken, Token};

/// Parse a full code segment (one or more statements) into a [`Program`].
///
/// # Errors
///
/// Returns [`ExprError`] on lexical or syntactic errors, unknown functions,
/// wrong arities, or an empty input.
///
/// # Example
///
/// ```
/// # use stencilflow_expr::parse_program;
/// let prog = parse_program("lap = a[i-1] + a[i+1] - 2.0 * a[i]; 0.5 * lap").unwrap();
/// assert_eq!(prog.statements.len(), 2);
/// ```
pub fn parse_program(input: &str) -> Result<Program> {
    let tokens = tokenize(input)?;
    let mut parser = Parser::new(&tokens);
    let program = parser.parse_program()?;
    parser.expect_end()?;
    Ok(program)
}

/// Parse a single expression (no statements, no trailing tokens).
///
/// # Errors
///
/// Returns [`ExprError`] if the input is not exactly one well-formed
/// expression.
pub fn parse_expr(input: &str) -> Result<Expr> {
    let tokens = tokenize(input)?;
    let mut parser = Parser::new(&tokens);
    let expr = parser.parse_expr()?;
    parser.expect_end()?;
    Ok(expr)
}

struct Parser<'a> {
    tokens: &'a [SpannedToken],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(tokens: &'a [SpannedToken]) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|t| &t.token)
    }

    fn position(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.position)
            .unwrap_or_else(|| self.tokens.last().map(|t| t.position + 1).unwrap_or(0))
    }

    fn advance(&mut self) -> Option<&Token> {
        let token = self.tokens.get(self.pos).map(|t| &t.token);
        self.pos += 1;
        token
    }

    fn consume(&mut self, expected: &Token) -> Result<()> {
        match self.peek() {
            Some(t) if t == expected => {
                self.pos += 1;
                Ok(())
            }
            other => Err(ExprError::Parse {
                position: self.position(),
                message: format!(
                    "expected {}, found {}",
                    expected.describe(),
                    other
                        .map(|t| t.describe())
                        .unwrap_or_else(|| "end of input".into())
                ),
            }),
        }
    }

    fn expect_end(&self) -> Result<()> {
        if self.pos < self.tokens.len() {
            Err(ExprError::Parse {
                position: self.position(),
                message: format!(
                    "unexpected trailing {}",
                    self.tokens[self.pos].token.describe()
                ),
            })
        } else {
            Ok(())
        }
    }

    fn parse_program(&mut self) -> Result<Program> {
        let mut statements = Vec::new();
        loop {
            if self.peek().is_none() {
                break;
            }
            statements.push(self.parse_stmt()?);
            match self.peek() {
                Some(Token::Semicolon) => {
                    self.advance();
                    // allow trailing semicolon
                    if self.peek().is_none() {
                        break;
                    }
                }
                None => break,
                Some(other) => {
                    return Err(ExprError::Parse {
                        position: self.position(),
                        message: format!(
                            "expected `;` or end of input, found {}",
                            other.describe()
                        ),
                    })
                }
            }
        }
        if statements.is_empty() {
            return Err(ExprError::EmptyProgram);
        }
        Ok(Program { statements })
    }

    fn parse_stmt(&mut self) -> Result<Stmt> {
        // Lookahead: IDENT '=' (but not '==') means an assignment.
        if let (Some(Token::Ident(name)), Some(Token::Assign)) = (self.peek(), self.peek2()) {
            let name = name.clone();
            self.advance();
            self.advance();
            let value = self.parse_expr()?;
            return Ok(Stmt {
                name: Some(name),
                value,
            });
        }
        let value = self.parse_expr()?;
        Ok(Stmt { name: None, value })
    }

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_ternary()
    }

    fn parse_ternary(&mut self) -> Result<Expr> {
        let cond = self.parse_or()?;
        if self.peek() == Some(&Token::Question) {
            self.advance();
            let then = self.parse_expr()?;
            self.consume(&Token::Colon)?;
            let otherwise = self.parse_ternary()?;
            Ok(Expr::ternary(cond, then, otherwise))
        } else {
            Ok(cond)
        }
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some(&Token::OrOr) {
            self.advance();
            let rhs = self.parse_and()?;
            lhs = Expr::binary(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_cmp()?;
        while self.peek() == Some(&Token::AndAnd) {
            self.advance();
            let rhs = self.parse_cmp()?;
            lhs = Expr::binary(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Ge) => Some(BinOp::Ge),
            Some(Token::EqEq) => Some(BinOp::Eq),
            Some(Token::Ne) => Some(BinOp::Ne),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let rhs = self.parse_add()?;
            Ok(Expr::binary(op, lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn parse_add(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_mul()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_unary()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        match self.peek() {
            Some(Token::Minus) => {
                self.advance();
                let operand = self.parse_unary()?;
                Ok(Expr::unary(UnOp::Neg, operand))
            }
            Some(Token::Not) => {
                self.advance();
                let operand = self.parse_unary()?;
                Ok(Expr::unary(UnOp::Not, operand))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        let position = self.position();
        match self.advance().cloned() {
            Some(Token::Int(v)) => Ok(Expr::IntLit(v)),
            Some(Token::Float(v)) => Ok(Expr::FloatLit(v)),
            Some(Token::LParen) => {
                let inner = self.parse_expr()?;
                self.consume(&Token::RParen)?;
                Ok(inner)
            }
            Some(Token::Ident(name)) => match self.peek() {
                Some(Token::LBracket) => {
                    self.advance();
                    let mut indices = vec![self.parse_index(&name)?];
                    while self.peek() == Some(&Token::Comma) {
                        self.advance();
                        indices.push(self.parse_index(&name)?);
                    }
                    self.consume(&Token::RBracket)?;
                    Ok(Expr::FieldAccess {
                        field: name,
                        indices,
                    })
                }
                Some(Token::LParen) => {
                    self.advance();
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        args.push(self.parse_expr()?);
                        while self.peek() == Some(&Token::Comma) {
                            self.advance();
                            args.push(self.parse_expr()?);
                        }
                    }
                    self.consume(&Token::RParen)?;
                    let func = MathFn::from_name(&name)
                        .ok_or(ExprError::UnknownFunction { name: name.clone() })?;
                    if args.len() != func.arity() {
                        return Err(ExprError::Arity {
                            name: name.clone(),
                            expected: func.arity(),
                            found: args.len(),
                        });
                    }
                    Ok(Expr::Call { func, args })
                }
                _ => Ok(Expr::Var(name)),
            },
            other => Err(ExprError::Parse {
                position,
                message: format!(
                    "expected expression, found {}",
                    other
                        .map(|t| t.describe())
                        .unwrap_or_else(|| "end of input".into())
                ),
            }),
        }
    }

    /// Parse one index expression inside a field access: `i`, `i+1`, `i-2`,
    /// or a bare integer literal (interpreted as an absolute offset with an
    /// empty variable, used for constant-plane accesses such as `a[0]` on 1D
    /// parameter fields).
    fn parse_index(&mut self, field: &str) -> Result<Index> {
        match self.advance().cloned() {
            Some(Token::Ident(var)) => {
                let offset = match self.peek() {
                    Some(Token::Plus) => {
                        self.advance();
                        self.parse_index_offset(field)?
                    }
                    Some(Token::Minus) => {
                        self.advance();
                        -self.parse_index_offset(field)?
                    }
                    _ => 0,
                };
                Ok(Index { var, offset })
            }
            Some(Token::Int(v)) => Ok(Index {
                var: String::new(),
                offset: v,
            }),
            other => Err(ExprError::InvalidIndex {
                field: field.to_string(),
                message: format!(
                    "expected an iteration variable, found {}",
                    other
                        .map(|t| t.describe())
                        .unwrap_or_else(|| "end of input".into())
                ),
            }),
        }
    }

    fn parse_index_offset(&mut self, field: &str) -> Result<i64> {
        match self.advance().cloned() {
            Some(Token::Int(v)) => Ok(v),
            other => Err(ExprError::InvalidIndex {
                field: field.to_string(),
                message: format!(
                    "expected a constant offset, found {}",
                    other
                        .map(|t| t.describe())
                        .unwrap_or_else(|| "end of input".into())
                ),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Expr};

    #[test]
    fn parses_simple_addition() {
        let e = parse_expr("a0[i,j,k] + a1[i,j,k]").unwrap();
        match e {
            Expr::Binary { op, .. } => assert_eq!(op, BinOp::Add),
            other => panic!("unexpected parse result: {other:?}"),
        }
    }

    #[test]
    fn parses_offsets() {
        let e = parse_expr("b1[i-1, j, k+2]").unwrap();
        match e {
            Expr::FieldAccess { field, indices } => {
                assert_eq!(field, "b1");
                assert_eq!(indices.len(), 3);
                assert_eq!(indices[0].var, "i");
                assert_eq!(indices[0].offset, -1);
                assert_eq!(indices[1].offset, 0);
                assert_eq!(indices[2].offset, 2);
            }
            other => panic!("unexpected parse result: {other:?}"),
        }
    }

    #[test]
    fn parses_lower_dimensional_access() {
        let e = parse_expr("a2[i, k]").unwrap();
        match e {
            Expr::FieldAccess { indices, .. } => {
                assert_eq!(indices.len(), 2);
                assert_eq!(indices[0].var, "i");
                assert_eq!(indices[1].var, "k");
            }
            other => panic!("unexpected parse result: {other:?}"),
        }
    }

    #[test]
    fn parses_ternary_and_comparison() {
        let e = parse_expr("delta > 0.0 ? delta : 0.0").unwrap();
        assert!(matches!(e, Expr::Ternary { .. }));
    }

    #[test]
    fn parses_nested_ternary_right_associative() {
        let e = parse_expr("a > 0 ? 1 : b > 0 ? 2 : 3").unwrap();
        match e {
            Expr::Ternary { otherwise, .. } => assert!(matches!(*otherwise, Expr::Ternary { .. })),
            other => panic!("unexpected parse result: {other:?}"),
        }
    }

    #[test]
    fn parses_function_calls() {
        let e = parse_expr("sqrt(a[i]*a[i] + b[i]*b[i])").unwrap();
        assert!(matches!(
            e,
            Expr::Call {
                func: MathFn::Sqrt,
                ..
            }
        ));
        let e = parse_expr("min(a[i], max(b[i], 0.0))").unwrap();
        assert!(matches!(
            e,
            Expr::Call {
                func: MathFn::Min,
                ..
            }
        ));
    }

    #[test]
    fn rejects_unknown_function() {
        assert!(matches!(
            parse_expr("frobnicate(a[i])"),
            Err(ExprError::UnknownFunction { .. })
        ));
    }

    #[test]
    fn rejects_wrong_arity() {
        assert!(matches!(
            parse_expr("min(a[i])"),
            Err(ExprError::Arity { .. })
        ));
        assert!(matches!(
            parse_expr("sqrt(a[i], b[i])"),
            Err(ExprError::Arity { .. })
        ));
    }

    #[test]
    fn rejects_trailing_tokens() {
        assert!(parse_expr("a[i] + b[i] )").is_err());
        assert!(parse_expr("a[i] b[i]").is_err());
    }

    #[test]
    fn rejects_empty_input() {
        assert!(matches!(parse_program(""), Err(ExprError::EmptyProgram)));
        assert!(matches!(parse_program("   "), Err(ExprError::EmptyProgram)));
    }

    #[test]
    fn rejects_non_constant_index() {
        assert!(parse_expr("a[2*i]").is_err());
        assert!(matches!(
            parse_expr("a[i+j]"),
            Err(ExprError::InvalidIndex { .. })
        ));
    }

    #[test]
    fn parses_multi_statement_program() {
        let prog = parse_program(
            "lap = -4.0*u[i,j,k] + u[i-1,j,k] + u[i+1,j,k] + u[i,j-1,k] + u[i,j+1,k];\n\
             delta = lap - u[i,j,k];\n\
             delta > 0.0 ? delta : 0.0",
        )
        .unwrap();
        assert_eq!(prog.statements.len(), 3);
        assert_eq!(prog.statements[0].name.as_deref(), Some("lap"));
        assert_eq!(prog.statements[1].name.as_deref(), Some("delta"));
        assert_eq!(prog.statements[2].name, None);
    }

    #[test]
    fn trailing_semicolon_is_allowed() {
        let prog = parse_program("x = a[i]; x + 1;").unwrap();
        assert_eq!(prog.statements.len(), 2);
    }

    #[test]
    fn unary_minus_binds_tighter_than_mul_operand() {
        let e = parse_expr("-a[i] * b[i]").unwrap();
        // Parses as (-a[i]) * b[i]
        match e {
            Expr::Binary { op, lhs, .. } => {
                assert_eq!(op, BinOp::Mul);
                assert!(matches!(*lhs, Expr::Unary { .. }));
            }
            other => panic!("unexpected parse result: {other:?}"),
        }
    }

    #[test]
    fn display_round_trips_through_parser() {
        let sources = [
            "a0[i, j, k] + a1[i, j, k]",
            "0.5 * (b0[i, j, k] + a2[i, k])",
            "b1[i-1, j, k] + b1[i+1, j, k]",
            "x = a[i] - b[i]; x > 0.0 ? x : -x",
            "sqrt(a[i] * a[i] + b[i] * b[i])",
            "min(a[i], 1.0) + max(b[i], 0.0)",
            "a[i] < b[i] && c[i] != 0.0 ? 1.0 : 0.0",
        ];
        for src in sources {
            let parsed = parse_program(src).unwrap();
            let printed = parsed.to_string();
            let reparsed = parse_program(&printed).unwrap();
            assert_eq!(
                parsed, reparsed,
                "round trip failed for `{src}` -> `{printed}`"
            );
        }
    }
}
