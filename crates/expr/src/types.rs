//! Scalar data types supported by the StencilFlow stack.
//!
//! The paper's evaluation focuses on 32-bit floating point ("as this is used
//! in production by our motivating weather simulation example"), but the
//! stack supports "any data type recognized by the underlying compiler,
//! including double precision floating point and integer types" (§VIII-B).

use std::fmt;
use std::str::FromStr;

/// Scalar element type of a field or intermediate value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum DataType {
    /// 32-bit IEEE-754 floating point (the default and the type used by the
    /// paper's benchmarks).
    #[default]
    Float32,
    /// 64-bit IEEE-754 floating point.
    Float64,
    /// 32-bit signed integer.
    Int32,
    /// 64-bit signed integer.
    Int64,
    /// Boolean (result of comparisons; only appears as an intermediate).
    Bool,
}

impl DataType {
    /// Size of one element of this type in bytes.
    ///
    /// Booleans are reported as one byte; they never reach off-chip memory in
    /// valid programs.
    pub fn size_bytes(self) -> usize {
        match self {
            DataType::Float32 | DataType::Int32 => 4,
            DataType::Float64 | DataType::Int64 => 8,
            DataType::Bool => 1,
        }
    }

    /// Whether this is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, DataType::Float32 | DataType::Float64)
    }

    /// Whether this is an integer type.
    pub fn is_integer(self) -> bool {
        matches!(self, DataType::Int32 | DataType::Int64)
    }

    /// The type resulting from combining two operands in an arithmetic
    /// operation, following the usual promotion rules (float beats int,
    /// wider beats narrower).
    pub fn promote(self, other: DataType) -> DataType {
        use DataType::*;
        match (self, other) {
            (Bool, x) | (x, Bool) => x,
            (Float64, _) | (_, Float64) => Float64,
            (Float32, _) | (_, Float32) => Float32,
            (Int64, _) | (_, Int64) => Int64,
            (Int32, Int32) => Int32,
        }
    }

    /// Canonical lowercase name, matching the JSON program description
    /// (`"float32"`, `"float64"`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            DataType::Float32 => "float32",
            DataType::Float64 => "float64",
            DataType::Int32 => "int32",
            DataType::Int64 => "int64",
            DataType::Bool => "bool",
        }
    }

    /// OpenCL scalar type name used by the code generator.
    pub fn opencl_name(self) -> &'static str {
        match self {
            DataType::Float32 => "float",
            DataType::Float64 => "double",
            DataType::Int32 => "int",
            DataType::Int64 => "long",
            DataType::Bool => "bool",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned when parsing a [`DataType`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDataTypeError {
    /// The string that could not be parsed.
    pub input: String,
}

impl fmt::Display for ParseDataTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown data type `{}`", self.input)
    }
}

impl std::error::Error for ParseDataTypeError {}

impl FromStr for DataType {
    type Err = ParseDataTypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "float32" | "float" | "f32" => Ok(DataType::Float32),
            "float64" | "double" | "f64" => Ok(DataType::Float64),
            "int32" | "int" | "i32" => Ok(DataType::Int32),
            "int64" | "long" | "i64" => Ok(DataType::Int64),
            "bool" | "boolean" => Ok(DataType::Bool),
            _ => Err(ParseDataTypeError { input: s.into() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DataType::Float32.size_bytes(), 4);
        assert_eq!(DataType::Float64.size_bytes(), 8);
        assert_eq!(DataType::Int32.size_bytes(), 4);
        assert_eq!(DataType::Int64.size_bytes(), 8);
    }

    #[test]
    fn promotion_rules() {
        use DataType::*;
        assert_eq!(Float32.promote(Float64), Float64);
        assert_eq!(Int32.promote(Float32), Float32);
        assert_eq!(Int32.promote(Int64), Int64);
        assert_eq!(Bool.promote(Float32), Float32);
        assert_eq!(Int32.promote(Int32), Int32);
    }

    #[test]
    fn parse_round_trip() {
        for dt in [
            DataType::Float32,
            DataType::Float64,
            DataType::Int32,
            DataType::Int64,
            DataType::Bool,
        ] {
            let parsed: DataType = dt.as_str().parse().unwrap();
            assert_eq!(parsed, dt);
        }
        assert!("quux".parse::<DataType>().is_err());
    }

    #[test]
    fn display_matches_json_names() {
        assert_eq!(DataType::Float32.to_string(), "float32");
        assert_eq!(DataType::Float64.to_string(), "float64");
    }

    #[test]
    fn opencl_names() {
        assert_eq!(DataType::Float32.opencl_name(), "float");
        assert_eq!(DataType::Float64.opencl_name(), "double");
    }
}
