//! Per-operation latencies and critical-path analysis of stencil code.
//!
//! Paper §IV-B: "the AST formed by computation of a stencil operation forms
//! another DAG, whose critical path adds a delay between a sequence of inputs
//! entering and exiting the pipeline. Computing the critical path requires
//! latency information for each operation performed, which is both type and
//! architecture dependent. As a result, these latencies can be provided as
//! configuration to the framework, and default to conservative values."
//!
//! The default latencies below are conservative estimates for the hardened
//! floating-point DSP blocks of an Intel Stratix 10 at ~300 MHz, the platform
//! used in the paper's evaluation. They deliberately overestimate: the paper
//! notes such delays are "typically small (<100 cycles)" and negligible next
//! to internal-buffer initialization.

use crate::ast::{BinOp, Expr, MathFn, Program, UnOp};
use std::collections::BTreeMap;

/// Per-operation pipeline latencies, in cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyTable {
    /// Latency of a floating-point addition or subtraction.
    pub add: u64,
    /// Latency of a floating-point multiplication.
    pub mul: u64,
    /// Latency of a floating-point division.
    pub div: u64,
    /// Latency of a square root.
    pub sqrt: u64,
    /// Latency of exp/log/pow/trigonometric functions.
    pub transcendental: u64,
    /// Latency of min/max/abs/floor/ceil (comparison-style operations).
    pub select: u64,
    /// Latency of a comparison.
    pub compare: u64,
    /// Latency of a ternary multiplexer (data-dependent branch).
    pub mux: u64,
    /// Latency of logical and/or/not.
    pub logic: u64,
}

impl LatencyTable {
    /// Conservative defaults for the Stratix 10 HLS flow used in the paper.
    pub fn stratix10_defaults() -> Self {
        LatencyTable {
            add: 8,
            mul: 6,
            div: 28,
            sqrt: 28,
            transcendental: 40,
            select: 2,
            compare: 2,
            mux: 1,
            logic: 1,
        }
    }

    /// An aggressive single-cycle table, useful to isolate initialization
    /// latency from compute latency in tests and ablation studies.
    pub fn unit() -> Self {
        LatencyTable {
            add: 1,
            mul: 1,
            div: 1,
            sqrt: 1,
            transcendental: 1,
            select: 1,
            compare: 1,
            mux: 1,
            logic: 1,
        }
    }

    /// Latency of a binary operator.
    pub fn binop(&self, op: BinOp) -> u64 {
        match op {
            BinOp::Add | BinOp::Sub => self.add,
            BinOp::Mul => self.mul,
            BinOp::Div => self.div,
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne => self.compare,
            BinOp::And | BinOp::Or => self.logic,
        }
    }

    /// Latency of a unary operator.
    pub fn unop(&self, op: UnOp) -> u64 {
        match op {
            UnOp::Neg => self.select,
            UnOp::Not => self.logic,
        }
    }

    /// Latency of a math function.
    pub fn math_fn(&self, func: MathFn) -> u64 {
        match func {
            MathFn::Sqrt => self.sqrt,
            MathFn::Abs | MathFn::Min | MathFn::Max | MathFn::Floor | MathFn::Ceil => self.select,
            MathFn::Exp | MathFn::Log | MathFn::Pow | MathFn::Sin | MathFn::Cos | MathFn::Tan => {
                self.transcendental
            }
        }
    }
}

impl Default for LatencyTable {
    fn default() -> Self {
        LatencyTable::stratix10_defaults()
    }
}

/// Critical-path latency (in cycles) of one expression: the longest chain of
/// dependent operations from any leaf to the root.
pub fn expr_critical_path(expr: &Expr, table: &LatencyTable) -> u64 {
    match expr {
        Expr::IntLit(_) | Expr::FloatLit(_) | Expr::Var(_) | Expr::FieldAccess { .. } => 0,
        Expr::Unary { op, operand } => table.unop(*op) + expr_critical_path(operand, table),
        Expr::Binary { op, lhs, rhs } => {
            table.binop(*op) + expr_critical_path(lhs, table).max(expr_critical_path(rhs, table))
        }
        Expr::Ternary {
            cond,
            then,
            otherwise,
        } => {
            table.mux
                + expr_critical_path(cond, table)
                    .max(expr_critical_path(then, table))
                    .max(expr_critical_path(otherwise, table))
        }
        Expr::Call { func, args } => {
            table.math_fn(*func)
                + args
                    .iter()
                    .map(|a| expr_critical_path(a, table))
                    .max()
                    .unwrap_or(0)
        }
    }
}

/// Critical-path latency of an entire code segment.
///
/// Local variables introduce dependencies between statements: a statement's
/// critical path starts from the critical paths of the locals it reads. The
/// returned value is the latency of the final (output) statement, accounting
/// for chains through locals — i.e. the delay between a set of inputs
/// entering and the corresponding output exiting the stencil's compute
/// pipeline.
pub fn critical_path_latency(program: &Program, table: &LatencyTable) -> u64 {
    let mut local_latency: BTreeMap<&str, u64> = BTreeMap::new();
    let mut last = 0;
    for stmt in &program.statements {
        let latency = expr_latency_with_locals(&stmt.value, table, &local_latency);
        if let Some(name) = &stmt.name {
            local_latency.insert(name.as_str(), latency);
        }
        last = latency;
    }
    last
}

/// Critical-path latency of a compiled kernel's instruction stream — the
/// bytecode-level counterpart of [`critical_path_latency`], evaluated on
/// the *optimized* form (CSE shortens nothing here, but never lengthens it;
/// if-converted selects cost one [`LatencyTable::mux`] above their longest
/// input, exactly like the ternaries they replace).
///
/// Returns `None` when the kernel still carries control flow (jump-based
/// diamonds have no single static dataflow DAG to walk).
pub fn kernel_critical_path(
    kernel: &crate::compile::CompiledKernel,
    table: &LatencyTable,
) -> Option<u64> {
    use crate::compile::Op;
    let mut stack: Vec<u64> = Vec::new();
    let mut locals: Vec<u64> = vec![0; kernel.local_count()];
    for op in kernel.ops() {
        match op {
            Op::Const(_) | Op::Slot(_) => stack.push(0),
            Op::Local(ix) => stack.push(locals[*ix as usize]),
            Op::Store(ix) => locals[*ix as usize] = stack.pop()?,
            Op::Pop => {
                stack.pop()?;
            }
            Op::Unary(op) => {
                let a = stack.pop()?;
                stack.push(table.unop(*op) + a);
            }
            Op::Binary(op) => {
                let b = stack.pop()?;
                let a = stack.pop()?;
                stack.push(table.binop(*op) + a.max(b));
            }
            Op::Call1(func) => {
                let a = stack.pop()?;
                stack.push(table.math_fn(*func) + a);
            }
            Op::Call2(func) => {
                let b = stack.pop()?;
                let a = stack.pop()?;
                stack.push(table.math_fn(*func) + a.max(b));
            }
            Op::ToBool => {
                let a = stack.pop()?;
                stack.push(table.logic + a);
            }
            Op::Select => {
                let otherwise = stack.pop()?;
                let then = stack.pop()?;
                let cond = stack.pop()?;
                stack.push(table.mux + cond.max(then).max(otherwise));
            }
            Op::Jump(_) | Op::JumpIfFalse(_) | Op::AndShortCircuit(_) | Op::OrShortCircuit(_) => {
                return None;
            }
        }
    }
    stack.pop()
}

fn expr_latency_with_locals(
    expr: &Expr,
    table: &LatencyTable,
    locals: &BTreeMap<&str, u64>,
) -> u64 {
    match expr {
        Expr::Var(name) => locals.get(name.as_str()).copied().unwrap_or(0),
        Expr::IntLit(_) | Expr::FloatLit(_) | Expr::FieldAccess { .. } => 0,
        Expr::Unary { op, operand } => {
            table.unop(*op) + expr_latency_with_locals(operand, table, locals)
        }
        Expr::Binary { op, lhs, rhs } => {
            table.binop(*op)
                + expr_latency_with_locals(lhs, table, locals)
                    .max(expr_latency_with_locals(rhs, table, locals))
        }
        Expr::Ternary {
            cond,
            then,
            otherwise,
        } => {
            table.mux
                + expr_latency_with_locals(cond, table, locals)
                    .max(expr_latency_with_locals(then, table, locals))
                    .max(expr_latency_with_locals(otherwise, table, locals))
        }
        Expr::Call { func, args } => {
            table.math_fn(*func)
                + args
                    .iter()
                    .map(|a| expr_latency_with_locals(a, table, locals))
                    .max()
                    .unwrap_or(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    #[test]
    fn leaf_latency_is_zero() {
        let t = LatencyTable::default();
        assert_eq!(expr_critical_path(&parse_expr("a[i]").unwrap(), &t), 0);
        assert_eq!(expr_critical_path(&parse_expr("1.5").unwrap(), &t), 0);
    }

    #[test]
    fn chain_of_adds_accumulates() {
        let t = LatencyTable::unit();
        // ((a + b) + c) + d -> three dependent adds.
        let e = parse_expr("a[i] + b[i] + c[i] + d[i]").unwrap();
        assert_eq!(expr_critical_path(&e, &t), 3);
    }

    #[test]
    fn balanced_tree_is_shorter_than_chain() {
        let t = LatencyTable::unit();
        let chain = parse_expr("a[i] + b[i] + c[i] + d[i]").unwrap();
        let tree = parse_expr("(a[i] + b[i]) + (c[i] + d[i])").unwrap();
        assert!(expr_critical_path(&tree, &t) < expr_critical_path(&chain, &t));
        assert_eq!(expr_critical_path(&tree, &t), 2);
    }

    #[test]
    fn default_table_values_are_conservative() {
        let t = LatencyTable::stratix10_defaults();
        assert!(t.div >= t.mul);
        assert!(t.sqrt >= t.mul);
        assert!(t.add > 0);
        // Paper: delays typically small, < 100 cycles for realistic stencils.
        let e = parse_expr("0.5 * (a[i-1] + a[i+1]) - a[i] / 4.0").unwrap();
        assert!(expr_critical_path(&e, &t) < 100);
    }

    #[test]
    fn locals_chain_latency_across_statements() {
        let t = LatencyTable::unit();
        let prog = parse_program("x = a[i] + b[i]; y = x * c[i]; y + d[i]").unwrap();
        // add -> mul -> add chained through locals = 3.
        assert_eq!(critical_path_latency(&prog, &t), 3);
    }

    #[test]
    fn math_function_latencies() {
        let t = LatencyTable::stratix10_defaults();
        let e = parse_expr("sqrt(a[i])").unwrap();
        assert_eq!(expr_critical_path(&e, &t), t.sqrt);
        let e = parse_expr("min(a[i], b[i])").unwrap();
        assert_eq!(expr_critical_path(&e, &t), t.select);
    }

    #[test]
    fn kernel_critical_path_matches_select_semantics() {
        use crate::compile::CompiledKernel;
        let t = LatencyTable::unit();
        // If-converted ternary: compare (1) and arms (then: 1 add, else: 0)
        // feed a mux (+1) -> critical path 2, same as the AST walk.
        let program = parse_program("c[i] > 0.0 ? a[i] + b[i] : b[i]").unwrap();
        let kernel = CompiledKernel::compile(&program).unwrap();
        assert_eq!(kernel_critical_path(&kernel, &t), Some(2));
        assert_eq!(critical_path_latency(&program, &t), 2);
        // CSE never lengthens the path: sharing the add keeps depth 2.
        let program = parse_program("(a[i] + b[i]) * (a[i] + b[i])").unwrap();
        let kernel = CompiledKernel::compile(&program).unwrap();
        assert_eq!(kernel_critical_path(&kernel, &t), Some(2));
        // Jump-carrying kernels (a division blocks if-conversion) have no
        // static dataflow DAG.
        let program = parse_program("c[i] > 0.0 ? a[i] / b[i] : b[i]").unwrap();
        let kernel = CompiledKernel::compile(&program).unwrap();
        assert_eq!(kernel_critical_path(&kernel, &t), None);
    }

    #[test]
    fn ternary_uses_longest_branch() {
        let t = LatencyTable::unit();
        let e = parse_expr("c[i] > 0.0 ? a[i] + b[i] + a[i] : b[i]").unwrap();
        // compare (1) vs then-branch (2 adds) vs else (0); mux adds 1.
        assert_eq!(expr_critical_path(&e, &t), 3);
    }
}
