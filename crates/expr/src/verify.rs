//! Bytecode verifier: independent static proofs about compiled kernels.
//!
//! The optimizer ([`crate::opt`]) and the typed specializer
//! ([`crate::CompiledKernel::specialize`]) *construct* kernels they believe
//! are well-formed — stack-safe, init-before-use, jump-targets in range —
//! and the evaluation loops in [`crate::compile`] rely on those invariants
//! with `debug_assert!`-backed accesses instead of per-op runtime checks.
//! This module is the independent checker that justifies that reliance: an
//! abstract interpreter over the [`Op`] (and [`TypedOp`]) stream that
//! *proves*, for every reachable instruction on every path:
//!
//! * **Stack-depth safety** — every pop finds an operand; the operand stack
//!   never exceeds the kernel's declared `max_stack`; control-flow joins
//!   agree on the stack depth; the kernel exits with exactly one result.
//! * **Local init-before-use** — no `Local` read can observe an
//!   uninitialized register on any path.
//! * **Jump-target validity** — every jump lands on an instruction or on
//!   the exit point (`ops.len()`), never past it.
//! * **Index bounds** — slot and local indices stay within the kernel's
//!   declared counts.
//! * **Type-flow soundness** — an abstract type lattice mirroring the
//!   [`crate::Value`] promotion rules (and therefore `specialize`'s `SType`
//!   rules, which are a refinement of them) flows through the stack, the
//!   locals, and every join. Unlike `specialize`, mixed-type joins are
//!   *legal* here — the dynamic `Value` path handles them — and widen to
//!   [`AbstractType::Any`].
//!
//! On success the verifier returns a [`KernelJudgment`]: the exact reachable
//! stack bound plus conservative **infallibility** (no reachable division
//! can take the integer-division-by-zero path), **purity** (no local
//! mutation — the property if-conversion requires of speculated regions),
//! and **branch-freedom** (the property `supports_lanes` requires) verdicts.
//! The judgment is what the program-level analyzer (`stencilflow-analysis`)
//! turns into diagnostics, and what tier admission can consult instead of
//! trusting optimizer bookkeeping.
//!
//! The verifier runs automatically in debug builds: after every optimizer
//! pass ([`crate::opt::PassManager::run`]), after lowering
//! ([`crate::CompiledKernel::compile`]), and after typed specialization —
//! so a miscompiled stream is caught at the pass that produced it, not
//! cells later in an eval loop.

use crate::ast::BinOp;
use crate::compile::{Op, TypedOp};
use crate::types::DataType;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Abstract scalar type of one stack position or local register.
///
/// The lattice is flat with a single top: two different concrete types join
/// to [`AbstractType::Any`]. This mirrors [`DataType::promote`] closely
/// enough to decide infallibility (a division is total unless its promoted
/// operand type may be an integer) while tolerating the mixed-type joins
/// that the dynamic `Value` path evaluates happily.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbstractType {
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// 32-bit float.
    F32,
    /// 64-bit float.
    F64,
    /// Boolean.
    Bool,
    /// Unknown / mixed (lattice top).
    Any,
}

impl AbstractType {
    /// Abstract the concrete type of a slot or literal.
    pub fn from_data_type(dtype: DataType) -> AbstractType {
        match dtype {
            DataType::Int32 => AbstractType::I32,
            DataType::Int64 => AbstractType::I64,
            DataType::Float32 => AbstractType::F32,
            DataType::Float64 => AbstractType::F64,
            DataType::Bool => AbstractType::Bool,
        }
    }

    /// Least upper bound of two abstract types.
    pub fn join(self, other: AbstractType) -> AbstractType {
        if self == other {
            self
        } else {
            AbstractType::Any
        }
    }

    /// Whether this type is definitely a float.
    pub fn is_float(self) -> bool {
        matches!(self, AbstractType::F32 | AbstractType::F64)
    }

    /// Whether this type may be an integer (`Any` may).
    pub fn may_be_integer(self) -> bool {
        matches!(
            self,
            AbstractType::I32 | AbstractType::I64 | AbstractType::Any
        )
    }

    /// Result type of `+ - * /`, mirroring [`DataType::promote`]: floats
    /// dominate (widest first), booleans are transparent, two booleans stay
    /// boolean, and anything involving `Any` that a float does not pin down
    /// widens to `Any`.
    pub fn arithmetic(l: AbstractType, r: AbstractType) -> AbstractType {
        use AbstractType::*;
        match (l, r) {
            (F64, _) | (_, F64) => F64,
            (F32, _) | (_, F32) => F32,
            (Any, _) | (_, Any) => Any,
            (Bool, Bool) => Bool,
            (Bool, t) | (t, Bool) => t,
            (I64, _) | (_, I64) => I64,
            (I32, I32) => I32,
        }
    }

    /// Whether a division of these operands may raise the integer
    /// division-by-zero error (the language's only runtime error). A float
    /// operand makes the promoted division IEEE-total.
    pub fn division_may_fail(l: AbstractType, r: AbstractType) -> bool {
        !(l.is_float() || r.is_float()) && (l.may_be_integer() || r.may_be_integer())
    }

    /// Result type of a math-function call, mirroring
    /// [`crate::eval::eval_math_fn`]: the promoted argument type when it is
    /// a float, otherwise `f64` (math functions always produce floats).
    pub fn math_result(a: AbstractType, b: Option<AbstractType>) -> AbstractType {
        let promoted = match b {
            None => a,
            Some(b) => AbstractType::arithmetic(a, b),
        };
        match promoted {
            AbstractType::F32 | AbstractType::F64 => promoted,
            // `Any` could be either float width; everything else maps to f64.
            AbstractType::Any => AbstractType::Any,
            _ => AbstractType::F64,
        }
    }
}

impl fmt::Display for AbstractType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AbstractType::I32 => "i32",
            AbstractType::I64 => "i64",
            AbstractType::F32 => "f32",
            AbstractType::F64 => "f64",
            AbstractType::Bool => "bool",
            AbstractType::Any => "any",
        };
        f.write_str(name)
    }
}

/// A violation found by the verifier. Each variant carries the instruction
/// index (`pc`) it was detected at and maps to a stable diagnostic code
/// (see [`VerifyError::code`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// An instruction pops more operands than the stack holds on some path.
    StackUnderflow {
        /// Instruction index of the underflowing op.
        pc: usize,
        /// Rendered opcode.
        op: String,
    },
    /// Two paths reach the same instruction with different stack depths.
    DepthMismatch {
        /// Instruction index of the join.
        pc: usize,
        /// Depth recorded by the first path.
        expected: usize,
        /// Depth found on the conflicting path.
        found: usize,
    },
    /// A `Local` read may observe an uninitialized register on some path.
    UninitializedLocal {
        /// Instruction index of the read.
        pc: usize,
        /// Register index.
        local: u16,
    },
    /// A local register index is out of the kernel's declared range.
    LocalOutOfBounds {
        /// Instruction index of the access.
        pc: usize,
        /// Register index.
        local: u16,
        /// Declared register count.
        local_count: usize,
    },
    /// A slot index is out of the kernel's declared range.
    SlotOutOfBounds {
        /// Instruction index of the access.
        pc: usize,
        /// Slot index.
        slot: u16,
        /// Declared slot count.
        slot_count: usize,
    },
    /// A jump targets past the exit point (`ops.len()` itself is the valid
    /// exit).
    JumpOutOfBounds {
        /// Instruction index of the jump.
        pc: usize,
        /// Target instruction index.
        target: u32,
        /// Instruction count of the kernel.
        len: usize,
    },
    /// The kernel can exit with a stack depth other than exactly one
    /// result.
    BadExitDepth {
        /// Observed exit depth.
        depth: usize,
    },
    /// A logical `&&`/`||` survived as a `Binary` op; the lowering always
    /// expands these to short-circuit jumps and the eval loop cannot
    /// execute them.
    UnloweredLogicalOp {
        /// Instruction index of the op.
        pc: usize,
    },
    /// The kernel's declared `max_stack` is smaller than a reachable depth.
    DeclaredMaxStackTooSmall {
        /// Declared bound.
        declared: usize,
        /// Reachable depth proven by the verifier.
        required: usize,
    },
    /// The kernel's declared `local_count` is smaller than a register it
    /// uses.
    DeclaredLocalCountTooSmall {
        /// Declared count.
        declared: usize,
        /// Register count the stream actually touches.
        required: usize,
    },
}

impl VerifyError {
    /// Stable diagnostic code for this violation (the `SF01xx` range of the
    /// registry in `docs/analysis.md`).
    pub fn code(&self) -> &'static str {
        match self {
            VerifyError::StackUnderflow { .. } => "SF0101",
            VerifyError::DepthMismatch { .. } => "SF0102",
            VerifyError::UninitializedLocal { .. } => "SF0103",
            VerifyError::LocalOutOfBounds { .. } => "SF0104",
            VerifyError::SlotOutOfBounds { .. } => "SF0105",
            VerifyError::JumpOutOfBounds { .. } => "SF0106",
            VerifyError::BadExitDepth { .. } => "SF0107",
            VerifyError::UnloweredLogicalOp { .. } => "SF0108",
            VerifyError::DeclaredMaxStackTooSmall { .. }
            | VerifyError::DeclaredLocalCountTooSmall { .. } => "SF0109",
        }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::StackUnderflow { pc, op } => {
                write!(f, "stack underflow at op {pc} ({op})")
            }
            VerifyError::DepthMismatch {
                pc,
                expected,
                found,
            } => write!(
                f,
                "inconsistent stack depth at op {pc}: {expected} vs {found}"
            ),
            VerifyError::UninitializedLocal { pc, local } => {
                write!(f, "local {local} may be read uninitialized at op {pc}")
            }
            VerifyError::LocalOutOfBounds {
                pc,
                local,
                local_count,
            } => write!(
                f,
                "local {local} out of bounds at op {pc} (local_count {local_count})"
            ),
            VerifyError::SlotOutOfBounds {
                pc,
                slot,
                slot_count,
            } => write!(
                f,
                "slot {slot} out of bounds at op {pc} (slot_count {slot_count})"
            ),
            VerifyError::JumpOutOfBounds { pc, target, len } => {
                write!(f, "jump at op {pc} targets {target}, past exit {len}")
            }
            VerifyError::BadExitDepth { depth } => {
                write!(f, "kernel exits with stack depth {depth}, expected 1")
            }
            VerifyError::UnloweredLogicalOp { pc } => {
                write!(f, "unlowered logical operator at op {pc}")
            }
            VerifyError::DeclaredMaxStackTooSmall { declared, required } => {
                write!(
                    f,
                    "declared max_stack {declared} below reachable depth {required}"
                )
            }
            VerifyError::DeclaredLocalCountTooSmall { declared, required } => {
                write!(
                    f,
                    "declared local_count {declared} below used registers {required}"
                )
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// What the verifier proved about an accepted kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelJudgment {
    /// Exact maximum reachable operand-stack depth (≤ the linear-scan bound
    /// the compiler declares).
    pub max_stack: usize,
    /// Local registers the stream actually touches.
    pub local_count: usize,
    /// Slots the stream actually reads (highest index + 1).
    pub slot_count: usize,
    /// No reachable division can take the integer-division-by-zero path:
    /// evaluation never returns an error. Conservative — `false` means
    /// "could not prove", not "will fail". Precise only when slot types
    /// are supplied; without them every slot is `Any` and any division
    /// over slot-derived operands demotes to fallible.
    pub infallible: bool,
    /// No `Store` instructions: the kernel never mutates a register. This
    /// is the purity notion if-conversion requires of speculated regions.
    pub pure: bool,
    /// No control-flow instructions (`Select` is branch-free and allowed) —
    /// the property the lane-batched tier requires
    /// ([`crate::TypedKernel::supports_lanes`]).
    pub branch_free: bool,
    /// Abstract result type of the kernel.
    pub result: AbstractType,
}

/// Abstract machine state at one instruction: typed operand stack plus
/// per-register initialization-and-type. `None` means "may be
/// uninitialized on some path reaching here".
#[derive(Debug, Clone, PartialEq, Eq)]
struct AbsState {
    stack: Vec<AbstractType>,
    locals: Vec<Option<AbstractType>>,
}

impl AbsState {
    /// Merge `other` into `self`; `Ok(true)` when `self` changed. Depth
    /// mismatches are hard errors (the eval loop's stack discipline relies
    /// on every join agreeing on depth); type disagreements widen.
    fn merge(&mut self, other: &AbsState, pc: usize) -> Result<bool, VerifyError> {
        if self.stack.len() != other.stack.len() {
            return Err(VerifyError::DepthMismatch {
                pc,
                expected: self.stack.len(),
                found: other.stack.len(),
            });
        }
        let mut changed = false;
        for (mine, theirs) in self.stack.iter_mut().zip(&other.stack) {
            let joined = mine.join(*theirs);
            if joined != *mine {
                *mine = joined;
                changed = true;
            }
        }
        for (mine, theirs) in self.locals.iter_mut().zip(&other.locals) {
            let joined = match (*mine, *theirs) {
                (Some(a), Some(b)) => Some(a.join(b)),
                // Initialized on only one path: a later read must not
                // trust it.
                _ => None,
            };
            if joined != *mine {
                *mine = joined;
                changed = true;
            }
        }
        Ok(changed)
    }
}

/// Slot count an instruction stream requires (highest slot index + 1).
pub fn slot_count_of(ops: &[Op]) -> usize {
    ops.iter()
        .map(|op| match op {
            Op::Slot(ix) => *ix as usize + 1,
            _ => 0,
        })
        .max()
        .unwrap_or(0)
}

/// Verify an untyped instruction stream against declared slot/local counts.
///
/// `slot_types` refines the judgment: with concrete types the infallibility
/// verdict is precise per the promotion rules; without, every slot is
/// [`AbstractType::Any`] and divisions over slot-derived operands are
/// conservatively fallible. `slot_types`, when given, must have
/// `slot_count` entries.
///
/// # Errors
///
/// Returns the first [`VerifyError`] proving the stream unsafe for the
/// unchecked eval loop; see the module docs for the properties checked.
pub fn verify_ops(
    ops: &[Op],
    slot_count: usize,
    local_count: usize,
    slot_types: Option<&[DataType]>,
) -> Result<KernelJudgment, VerifyError> {
    if let Some(types) = slot_types {
        assert_eq!(types.len(), slot_count, "one slot type per slot");
    }
    if ops.is_empty() {
        // No instruction can have left a result on the stack.
        return Err(VerifyError::BadExitDepth { depth: 0 });
    }
    let slot_abs = |ix: usize| -> AbstractType {
        slot_types
            .map(|t| AbstractType::from_data_type(t[ix]))
            .unwrap_or(AbstractType::Any)
    };

    // Structural scan: bounds and lowering invariants that need no flow
    // analysis, plus the effect-free judgment components.
    let mut pure = true;
    let mut branch_free = true;
    for (pc, op) in ops.iter().enumerate() {
        match *op {
            Op::Slot(ix) if ix as usize >= slot_count => {
                return Err(VerifyError::SlotOutOfBounds {
                    pc,
                    slot: ix,
                    slot_count,
                });
            }
            Op::Slot(_) => {}
            Op::Local(ix) | Op::Store(ix) => {
                if ix as usize >= local_count {
                    return Err(VerifyError::LocalOutOfBounds {
                        pc,
                        local: ix,
                        local_count,
                    });
                }
                if matches!(op, Op::Store(_)) {
                    pure = false;
                }
            }
            Op::Binary(BinOp::And | BinOp::Or) => {
                return Err(VerifyError::UnloweredLogicalOp { pc });
            }
            Op::Jump(t) | Op::JumpIfFalse(t) | Op::AndShortCircuit(t) | Op::OrShortCircuit(t) => {
                branch_free = false;
                if t as usize > ops.len() {
                    return Err(VerifyError::JumpOutOfBounds {
                        pc,
                        target: t,
                        len: ops.len(),
                    });
                }
            }
            _ => {}
        }
    }

    // Worklist abstract interpretation. States ascend a finite lattice
    // (fixed depth per pc, types widen toward `Any`, init-sets shrink), so
    // the fixpoint terminates even for irreducible or backward control
    // flow (which the lowering never emits, but the verifier must not
    // assume that — it is the checker, not the compiler).
    let mut states: BTreeMap<usize, AbsState> = BTreeMap::new();
    let mut worklist: VecDeque<usize> = VecDeque::new();
    states.insert(
        0,
        AbsState {
            stack: Vec::new(),
            locals: vec![None; local_count],
        },
    );
    worklist.push_back(0);

    let mut max_depth = 0usize;
    let mut infallible = true;
    let mut exit: Option<AbsState> = None;

    let underflow = |pc: usize| VerifyError::StackUnderflow {
        pc,
        op: format!("{:?}", ops[pc]),
    };

    // Merge `state` into the in-state of `target` (or the exit record when
    // `target == ops.len()`), enqueueing on change.
    fn flow_to(
        states: &mut BTreeMap<usize, AbsState>,
        worklist: &mut VecDeque<usize>,
        exit: &mut Option<AbsState>,
        len: usize,
        target: usize,
        state: AbsState,
    ) -> Result<(), VerifyError> {
        if target == len {
            match exit {
                Some(existing) => {
                    existing.merge(&state, target)?;
                }
                None => *exit = Some(state),
            }
            return Ok(());
        }
        match states.get_mut(&target) {
            Some(existing) => {
                if existing.merge(&state, target)? {
                    worklist.push_back(target);
                }
            }
            None => {
                states.insert(target, state);
                worklist.push_back(target);
            }
        }
        Ok(())
    }

    while let Some(pc) = worklist.pop_front() {
        let mut state = states
            .get(&pc)
            .expect("worklist entries have states")
            .clone();
        max_depth = max_depth.max(state.stack.len());
        let op = ops[pc];
        // Successor on the fall-through path unless the op redirects.
        let mut next = pc + 1;
        let mut extra: Option<(usize, AbsState)> = None;
        match op {
            Op::Const(v) => state
                .stack
                .push(AbstractType::from_data_type(v.data_type())),
            Op::Slot(ix) => state.stack.push(slot_abs(ix as usize)),
            Op::Local(ix) => {
                let t = state.locals[ix as usize]
                    .ok_or(VerifyError::UninitializedLocal { pc, local: ix })?;
                state.stack.push(t);
            }
            Op::Store(ix) => {
                let t = state.stack.pop().ok_or_else(|| underflow(pc))?;
                state.locals[ix as usize] = Some(t);
            }
            Op::Pop => {
                state.stack.pop().ok_or_else(|| underflow(pc))?;
            }
            Op::Unary(crate::ast::UnOp::Neg) => {
                let t = state.stack.pop().ok_or_else(|| underflow(pc))?;
                state.stack.push(match t {
                    // Negating a boolean promotes to int64 (Value::neg).
                    AbstractType::Bool => AbstractType::I64,
                    AbstractType::Any => AbstractType::Any,
                    other => other,
                });
            }
            Op::Unary(crate::ast::UnOp::Not) => {
                state.stack.pop().ok_or_else(|| underflow(pc))?;
                state.stack.push(AbstractType::Bool);
            }
            Op::Binary(binop) => {
                let r = state.stack.pop().ok_or_else(|| underflow(pc))?;
                let l = state.stack.pop().ok_or_else(|| underflow(pc))?;
                match binop {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                        if binop == BinOp::Div && AbstractType::division_may_fail(l, r) {
                            infallible = false;
                        }
                        state.stack.push(AbstractType::arithmetic(l, r));
                    }
                    BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                        state.stack.push(AbstractType::Bool);
                    }
                    BinOp::And | BinOp::Or => unreachable!("rejected by the structural scan"),
                }
            }
            Op::Call1(_) => {
                let a = state.stack.pop().ok_or_else(|| underflow(pc))?;
                state.stack.push(AbstractType::math_result(a, None));
            }
            Op::Call2(_) => {
                let b = state.stack.pop().ok_or_else(|| underflow(pc))?;
                let a = state.stack.pop().ok_or_else(|| underflow(pc))?;
                state.stack.push(AbstractType::math_result(a, Some(b)));
            }
            Op::Jump(t) => next = t as usize,
            Op::JumpIfFalse(t) => {
                state.stack.pop().ok_or_else(|| underflow(pc))?;
                extra = Some((t as usize, state.clone()));
            }
            Op::AndShortCircuit(t) => {
                state.stack.pop().ok_or_else(|| underflow(pc))?;
                let mut taken = state.clone();
                taken.stack.push(AbstractType::Bool);
                extra = Some((t as usize, taken));
            }
            Op::OrShortCircuit(t) => {
                state.stack.pop().ok_or_else(|| underflow(pc))?;
                let mut taken = state.clone();
                taken.stack.push(AbstractType::Bool);
                extra = Some((t as usize, taken));
            }
            Op::ToBool => {
                state.stack.pop().ok_or_else(|| underflow(pc))?;
                state.stack.push(AbstractType::Bool);
            }
            Op::Select => {
                let otherwise = state.stack.pop().ok_or_else(|| underflow(pc))?;
                let then = state.stack.pop().ok_or_else(|| underflow(pc))?;
                state.stack.pop().ok_or_else(|| underflow(pc))?; // condition
                state.stack.push(then.join(otherwise));
            }
        }
        max_depth = max_depth.max(state.stack.len());
        if let Some((target, taken)) = extra {
            flow_to(
                &mut states,
                &mut worklist,
                &mut exit,
                ops.len(),
                target,
                taken,
            )?;
        }
        flow_to(
            &mut states,
            &mut worklist,
            &mut exit,
            ops.len(),
            next,
            state,
        )?;
    }

    let exit = exit.ok_or(VerifyError::BadExitDepth { depth: 0 })?;
    if exit.stack.len() != 1 {
        return Err(VerifyError::BadExitDepth {
            depth: exit.stack.len(),
        });
    }
    Ok(KernelJudgment {
        max_stack: max_depth,
        local_count,
        slot_count,
        infallible,
        pure,
        branch_free,
        result: exit.stack[0],
    })
}

/// Verify a compiled kernel end to end: run [`verify_ops`] over its stream
/// and additionally check the declared `max_stack` / `local_count` bounds
/// cover every reachable state (the eval loops size their scratch from
/// those declarations).
///
/// # Errors
///
/// Same failure modes as [`verify_ops`], plus the declared-bound checks.
pub fn verify_kernel(
    kernel: &crate::CompiledKernel,
    slot_types: Option<&[DataType]>,
) -> Result<KernelJudgment, VerifyError> {
    let judgment = verify_ops(
        kernel.ops(),
        kernel.slots().len(),
        kernel.local_count(),
        slot_types,
    )?;
    if judgment.max_stack > kernel.max_stack() {
        return Err(VerifyError::DeclaredMaxStackTooSmall {
            declared: kernel.max_stack(),
            required: judgment.max_stack,
        });
    }
    Ok(judgment)
}

/// What the verifier proved about an accepted typed stream. Typed kernels
/// are infallible by construction (division is always float), so the
/// judgment carries only the structural facts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TypedJudgment {
    /// Exact maximum reachable operand-stack depth.
    pub max_stack: usize,
    /// Local registers the stream actually touches.
    pub local_count: usize,
    /// No control-flow instructions — must agree with
    /// [`crate::TypedKernel::supports_lanes`].
    pub branch_free: bool,
}

impl TypedJudgment {
    /// Whether the judged kernel is eligible for Tier-4 native emission
    /// (`stencilflow-codegen`'s JIT translation unit): the stream must be
    /// branch-free, since the emitter renders it as a straight-line C
    /// expression DAG — `Select` is fine (a C ternary or fused
    /// `fmin`/`fmax`), but jump diamonds and short-circuit logic are not.
    /// Judged on the *typed* stream deliberately: typed if-conversion
    /// speculates division (IEEE-total) where the untyped pass must keep
    /// the diamond, so kernels like `c ? a/b : d` are native-eligible even
    /// though their untyped bytecode still jumps. Purity is not required:
    /// CSE introduces `Store`s, and single-assignment temporaries emit as
    /// `const double` locals.
    pub fn supports_native(&self) -> bool {
        self.branch_free
    }
}

/// Verify a [`TypedOp`] stream: stack-depth safety, init-before-use,
/// jump-target validity, bounds, and single-result exit — the invariants
/// the unchecked typed/lane eval loops rely on. Types need no tracking
/// (every typed stack slot is a raw `f64`).
///
/// # Errors
///
/// Returns the first [`VerifyError`] proving the stream unsafe.
pub fn verify_typed_ops(
    ops: &[TypedOp],
    slot_count: usize,
    local_count: usize,
) -> Result<TypedJudgment, VerifyError> {
    // Reuse the full abstract interpreter by projecting every TypedOp onto
    // an untyped Op with the same stack/locals/control behavior. `round`
    // flags and concrete functions are irrelevant to the structural
    // properties; placeholder choices below preserve arity exactly.
    let projected: Vec<Op> = ops
        .iter()
        .map(|op| match *op {
            TypedOp::Const(v) => Op::Const(crate::Value::F64(v)),
            TypedOp::Slot(ix) => Op::Slot(ix),
            TypedOp::Local(ix) => Op::Local(ix),
            TypedOp::Store(ix) => Op::Store(ix),
            TypedOp::Pop => Op::Pop,
            TypedOp::Neg { .. } => Op::Unary(crate::ast::UnOp::Neg),
            TypedOp::Not => Op::Unary(crate::ast::UnOp::Not),
            TypedOp::Add { .. } => Op::Binary(BinOp::Add),
            TypedOp::Sub { .. } => Op::Binary(BinOp::Sub),
            TypedOp::Mul { .. } => Op::Binary(BinOp::Mul),
            // Typed division is float division; project to Mul so the
            // untyped interpreter does not demote infallibility (the
            // stack behavior is identical).
            TypedOp::Div { .. } => Op::Binary(BinOp::Mul),
            TypedOp::Compare(_) => Op::Binary(BinOp::Lt),
            TypedOp::Call1(f, _) => Op::Call1(f),
            TypedOp::Call2(f, _) => Op::Call2(f),
            TypedOp::Jump(t) => Op::Jump(t),
            TypedOp::JumpIfFalse(t) => Op::JumpIfFalse(t),
            TypedOp::AndFalse(t) => Op::AndShortCircuit(t),
            TypedOp::OrTrue(t) => Op::OrShortCircuit(t),
            TypedOp::ToBool => Op::ToBool,
            TypedOp::Select => Op::Select,
        })
        .collect();
    let judgment = verify_ops(&projected, slot_count, local_count, None)?;
    Ok(TypedJudgment {
        max_stack: judgment.max_stack,
        local_count: judgment.local_count,
        branch_free: judgment.branch_free,
    })
}

/// Verify a specialized kernel end to end, including its declared bounds
/// and the agreement between the verifier's branch-freedom proof and
/// [`crate::TypedKernel::supports_lanes`] (lane admission must never be
/// more permissive than the proof).
///
/// # Errors
///
/// Same failure modes as [`verify_typed_ops`], plus the declared-bound
/// check.
pub fn verify_typed(kernel: &crate::TypedKernel) -> Result<TypedJudgment, VerifyError> {
    let judgment = verify_typed_ops(kernel.ops(), kernel.slot_count(), kernel.local_count())?;
    if judgment.max_stack > kernel.max_stack() {
        return Err(VerifyError::DeclaredMaxStackTooSmall {
            declared: kernel.max_stack(),
            required: judgment.max_stack,
        });
    }
    debug_assert_eq!(
        judgment.branch_free,
        kernel.supports_lanes(),
        "supports_lanes disagrees with the verifier's branch-freedom proof"
    );
    Ok(judgment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{MathFn, UnOp};
    use crate::parser::parse_program;
    use crate::value::Value;
    use crate::CompiledKernel;

    fn compile(code: &str) -> CompiledKernel {
        CompiledKernel::compile(&parse_program(code).unwrap()).unwrap()
    }

    fn compile_unopt(code: &str) -> CompiledKernel {
        CompiledKernel::compile_unoptimized(&parse_program(code).unwrap()).unwrap()
    }

    #[test]
    fn accepts_all_lowered_forms() {
        for code in [
            "a[i] * 2.0 + 1.0",
            "x = a[i-1] + a[i+1]; y = x * dt; y - a[i]",
            "(a[i] > 0.0) ? a[i] / 2.0 : -a[i]",
            "(a[i] > 0.0 && a[i-1] < 1.0) ? 1.0 : 0.0",
            "(a[i] > 0.0 || a[i-1] < 1.0) ? 1.0 : 0.0",
            "sqrt(abs(a[i+1])) + min(a[i], max(a[i-1], dt))",
            "x = a[i]; x * x + x",
        ] {
            for kernel in [compile(code), compile_unopt(code)] {
                let judgment = verify_kernel(&kernel, None)
                    .unwrap_or_else(|e| panic!("rejected `{code}`: {e}"));
                assert!(judgment.max_stack <= kernel.max_stack());
            }
        }
    }

    #[test]
    fn judgment_tracks_infallibility_with_slot_types() {
        let kernel = compile("a[i] / b[i]");
        // Unknown slot types: the division may be integer-typed.
        assert!(!verify_kernel(&kernel, None).unwrap().infallible);
        // Float slots: IEEE-total division.
        let floats = vec![DataType::Float64; kernel.slots().len()];
        assert!(verify_kernel(&kernel, Some(&floats)).unwrap().infallible);
        // Integer slots: provably fallible path.
        let ints = vec![DataType::Int64; kernel.slots().len()];
        assert!(!verify_kernel(&kernel, Some(&ints)).unwrap().infallible);
        // Constant-only arithmetic folds away; a kernel with no division
        // at all is infallible even with unknown slots.
        assert!(
            verify_kernel(&compile("a[i] + 1.0"), None)
                .unwrap()
                .infallible
        );
    }

    #[test]
    fn judgment_tracks_purity_and_branch_freedom() {
        let pure = verify_kernel(&compile("a[i] + 1.0"), None).unwrap();
        assert!(pure.pure);
        assert!(pure.branch_free);
        let stored = verify_kernel(&compile_unopt("x = a[i]; x + x"), None).unwrap();
        assert!(!stored.pure);
        let branchy = verify_kernel(&compile_unopt("(a[i] > 0.0) ? 1.0 : 2.0"), None).unwrap();
        assert!(!branchy.branch_free);
        // If-conversion turns the diamond into a Select, which is
        // branch-free.
        let converted = verify_kernel(&compile("(a[i] > 0.0) ? 1.0 : 2.0"), None).unwrap();
        assert!(converted.branch_free);
    }

    #[test]
    fn mixed_type_joins_widen_instead_of_rejecting() {
        // `specialize` rejects arms of different types; the verifier must
        // accept them (the Value path evaluates this fine) and widen.
        let kernel = compile_unopt("(a[i] > 0.0) ? 1.0 : 2");
        let judgment = verify_kernel(&kernel, None).unwrap();
        assert_eq!(judgment.result, AbstractType::Any);
    }

    #[test]
    fn rejects_stack_underflow() {
        let err = verify_ops(&[Op::Pop], 0, 0, None).unwrap_err();
        assert_eq!(err.code(), "SF0101");
        let err = verify_ops(
            &[Op::Const(Value::F64(1.0)), Op::Binary(BinOp::Add)],
            0,
            0,
            None,
        )
        .unwrap_err();
        assert_eq!(err.code(), "SF0101");
    }

    #[test]
    fn rejects_depth_mismatched_join() {
        // JumpIfFalse skips a push: the two paths reach op 3 with depths
        // 2 and 1.
        let ops = [
            Op::Const(Value::Bool(true)),
            Op::JumpIfFalse(3),
            Op::Const(Value::F64(1.0)),
            Op::Const(Value::F64(2.0)),
            Op::Binary(BinOp::Add),
        ];
        let err = verify_ops(&ops, 0, 0, None).unwrap_err();
        assert!(matches!(
            err,
            VerifyError::DepthMismatch { .. } | VerifyError::StackUnderflow { .. }
        ));
    }

    #[test]
    fn rejects_uninitialized_local_read() {
        let err = verify_ops(&[Op::Local(0)], 0, 1, None).unwrap_err();
        assert_eq!(err.code(), "SF0103");
        // Initialized on only one branch: still an error after the join.
        let ops = [
            Op::Const(Value::Bool(true)),
            Op::JumpIfFalse(4),
            Op::Const(Value::F64(1.0)),
            Op::Store(0),
            Op::Local(0),
        ];
        let err = verify_ops(&ops, 0, 1, None).unwrap_err();
        assert_eq!(err.code(), "SF0103");
        // Initialized on both branches: fine.
        let ops = [
            Op::Const(Value::Bool(true)),
            Op::JumpIfFalse(5),
            Op::Const(Value::F64(1.0)),
            Op::Store(0),
            Op::Jump(7),
            Op::Const(Value::F64(2.0)),
            Op::Store(0),
            Op::Local(0),
        ];
        verify_ops(&ops, 0, 1, None).unwrap();
    }

    #[test]
    fn rejects_bounds_violations() {
        assert_eq!(
            verify_ops(&[Op::Slot(3)], 2, 0, None).unwrap_err().code(),
            "SF0105"
        );
        assert_eq!(
            verify_ops(&[Op::Store(1)], 0, 1, None).unwrap_err().code(),
            "SF0104"
        );
        assert_eq!(
            verify_ops(&[Op::Jump(9), Op::Const(Value::F64(0.0))], 0, 0, None)
                .unwrap_err()
                .code(),
            "SF0106"
        );
    }

    #[test]
    fn rejects_bad_exit_depth_and_unlowered_logicals() {
        let two = [Op::Const(Value::F64(1.0)), Op::Const(Value::F64(2.0))];
        assert_eq!(verify_ops(&two, 0, 0, None).unwrap_err().code(), "SF0107");
        assert_eq!(verify_ops(&[], 0, 0, None).unwrap_err().code(), "SF0107");
        let logical = [
            Op::Const(Value::Bool(true)),
            Op::Const(Value::Bool(true)),
            Op::Binary(BinOp::And),
        ];
        assert_eq!(
            verify_ops(&logical, 0, 0, None).unwrap_err().code(),
            "SF0108"
        );
    }

    #[test]
    fn typed_verification_accepts_specialized_kernels() {
        for code in [
            "a[i] * 2.0 + 1.0",
            "(a[i] > 0.0) ? a[i] / 2.0 : -a[i]",
            "x = a[i-1] + a[i+1]; x * 0.5",
            "exp(a[i]) + pow(a[i], 2.0)",
        ] {
            let kernel = compile(code);
            let types = vec![DataType::Float64; kernel.slots().len()];
            let typed = kernel.specialize(&types).expect("float kernel specializes");
            let judgment =
                verify_typed(&typed).unwrap_or_else(|e| panic!("rejected `{code}`: {e}"));
            assert_eq!(judgment.branch_free, typed.supports_lanes());
        }
    }

    #[test]
    fn typed_verification_rejects_malformed_streams() {
        let err = verify_typed_ops(&[TypedOp::Pop], 0, 0).unwrap_err();
        assert_eq!(err.code(), "SF0101");
        let err = verify_typed_ops(&[TypedOp::Const(1.0), TypedOp::Local(0)], 0, 1).unwrap_err();
        assert_eq!(err.code(), "SF0103");
    }

    #[test]
    fn max_stack_judgment_is_exact_on_jumpy_kernels() {
        // The linear-scan bound over-counts jump-based ternaries (both
        // arms contribute); the verifier's reachable bound must be ≤ it
        // and still cover every path.
        let kernel = compile_unopt("(a[i] > 0.0) ? a[i] + 1.0 : a[i] - 1.0");
        let judgment = verify_kernel(&kernel, None).unwrap();
        assert!(judgment.max_stack <= kernel.max_stack());
        assert!(judgment.max_stack >= 2);
    }

    #[test]
    fn verifier_is_a_fixpoint_on_backward_jumps() {
        // The lowering never emits loops, but the verifier must terminate
        // (and judge) arbitrary streams. A back-edge forming an infinite
        // loop never reaches the exit: depth mismatch or bad exit.
        let ops = [Op::Const(Value::F64(1.0)), Op::Pop, Op::Jump(0)];
        assert!(verify_ops(&ops, 0, 0, None).is_err());
        // A benign back-edge with consistent depth converges.
        let ops = [
            Op::Const(Value::Bool(true)),
            Op::JumpIfFalse(0),
            Op::Const(Value::F64(1.0)),
        ];
        verify_ops(&ops, 0, 0, None).unwrap();
    }

    #[test]
    fn abstract_type_promotion_mirrors_value_semantics() {
        use AbstractType::*;
        for (l, r, want) in [
            (F64, F32, F64),
            (F32, I64, F32),
            (Bool, Bool, Bool),
            (Bool, I64, I64),
            (I32, I32, I32),
            (I32, I64, I64),
            (Any, F64, F64),
            (Any, Bool, Any),
        ] {
            assert_eq!(AbstractType::arithmetic(l, r), want, "{l} ∘ {r}");
        }
        assert!(AbstractType::division_may_fail(I64, I64));
        assert!(AbstractType::division_may_fail(Any, Any));
        assert!(AbstractType::division_may_fail(Bool, I32));
        assert!(!AbstractType::division_may_fail(F32, Any));
        assert!(!AbstractType::division_may_fail(Bool, Bool));
        assert_eq!(AbstractType::math_result(Bool, None), F64);
        assert_eq!(AbstractType::math_result(F32, Some(Bool)), F32);
        assert_eq!(AbstractType::math_result(I64, Some(I32)), F64);
    }

    #[test]
    fn verifies_handwritten_math_and_unary_streams() {
        let ops = [
            Op::Const(Value::F64(4.0)),
            Op::Call1(MathFn::Sqrt),
            Op::Unary(UnOp::Neg),
        ];
        let judgment = verify_ops(&ops, 0, 0, None).unwrap();
        assert_eq!(judgment.result, AbstractType::F64);
        assert!(judgment.infallible);
    }
}
