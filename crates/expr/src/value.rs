//! Runtime values for evaluating stencil code segments.

// `add`/`sub`/`mul`/`div`/`neg`/`not` intentionally mirror the source-level
// operator names of the stencil language rather than implementing the std
// operator traits: `div` is fallible and the methods carry promotion
// semantics documented per method.
#![allow(clippy::should_implement_trait)]

use crate::error::{ExprError, Result};
use crate::types::DataType;
use std::fmt;

/// A runtime scalar value.
///
/// The evaluator and the functional mode of the spatial simulator operate on
/// these values. Arithmetic follows the usual promotion rules (see
/// [`DataType::promote`]); comparisons yield [`Value::Bool`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 32-bit float.
    F32(f32),
    /// 64-bit float.
    F64(f64),
    /// 32-bit signed integer.
    I32(i32),
    /// 64-bit signed integer.
    I64(i64),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The data type of this value.
    pub fn data_type(self) -> DataType {
        match self {
            Value::F32(_) => DataType::Float32,
            Value::F64(_) => DataType::Float64,
            Value::I32(_) => DataType::Int32,
            Value::I64(_) => DataType::Int64,
            Value::Bool(_) => DataType::Bool,
        }
    }

    /// Convert to `f64`, the widest representation (booleans become 0/1).
    pub fn as_f64(self) -> f64 {
        match self {
            Value::F32(v) => v as f64,
            Value::F64(v) => v,
            Value::I32(v) => v as f64,
            Value::I64(v) => v as f64,
            Value::Bool(v) => {
                if v {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Convert to `f32` (may lose precision).
    pub fn as_f32(self) -> f32 {
        self.as_f64() as f32
    }

    /// Interpret this value as a boolean (non-zero is true).
    pub fn as_bool(self) -> bool {
        match self {
            Value::Bool(v) => v,
            Value::F32(v) => v != 0.0,
            Value::F64(v) => v != 0.0,
            Value::I32(v) => v != 0,
            Value::I64(v) => v != 0,
        }
    }

    /// Construct a value of the given type from an `f64`.
    pub fn from_f64(value: f64, dtype: DataType) -> Value {
        match dtype {
            DataType::Float32 => Value::F32(value as f32),
            DataType::Float64 => Value::F64(value),
            DataType::Int32 => Value::I32(value as i32),
            DataType::Int64 => Value::I64(value as i64),
            DataType::Bool => Value::Bool(value != 0.0),
        }
    }

    /// Cast this value to a (possibly different) data type.
    pub fn cast(self, dtype: DataType) -> Value {
        Value::from_f64(self.as_f64(), dtype)
    }

    /// Zero of the given type.
    pub fn zero(dtype: DataType) -> Value {
        Value::from_f64(0.0, dtype)
    }

    fn promote_pair(self, other: Value) -> (f64, f64, DataType) {
        let dtype = self.data_type().promote(other.data_type());
        (self.as_f64(), other.as_f64(), dtype)
    }

    /// Add two values with type promotion.
    pub fn add(self, other: Value) -> Value {
        let (a, b, t) = self.promote_pair(other);
        Value::from_f64(a + b, t)
    }

    /// Subtract with type promotion.
    pub fn sub(self, other: Value) -> Value {
        let (a, b, t) = self.promote_pair(other);
        Value::from_f64(a - b, t)
    }

    /// Multiply with type promotion.
    pub fn mul(self, other: Value) -> Value {
        let (a, b, t) = self.promote_pair(other);
        Value::from_f64(a * b, t)
    }

    /// Divide with type promotion.
    ///
    /// # Errors
    ///
    /// Integer division by zero returns [`ExprError::Arithmetic`]. Float
    /// division by zero follows IEEE-754 (yields ±inf / NaN).
    pub fn div(self, other: Value) -> Result<Value> {
        let (a, b, t) = self.promote_pair(other);
        if t.is_integer() && b == 0.0 {
            return Err(ExprError::Arithmetic {
                message: "integer division by zero".into(),
            });
        }
        Ok(Value::from_f64(a / b, t))
    }

    /// Arithmetic negation.
    ///
    /// Booleans are promoted to integers first (C-style), so `-(a > b)`
    /// evaluates to `0` or `-1` rather than remaining a boolean.
    pub fn neg(self) -> Value {
        let dtype = if self.data_type() == DataType::Bool {
            DataType::Int64
        } else {
            self.data_type()
        };
        Value::from_f64(-self.as_f64(), dtype)
    }

    /// Logical negation.
    pub fn not(self) -> Value {
        Value::Bool(!self.as_bool())
    }

    /// Minimum with type promotion.
    pub fn min(self, other: Value) -> Value {
        let (a, b, t) = self.promote_pair(other);
        Value::from_f64(a.min(b), t)
    }

    /// Maximum with type promotion.
    pub fn max(self, other: Value) -> Value {
        let (a, b, t) = self.promote_pair(other);
        Value::from_f64(a.max(b), t)
    }

    /// Comparison producing a boolean value.
    pub fn compare(self, other: Value, op: CompareOp) -> Value {
        let a = self.as_f64();
        let b = other.as_f64();
        let result = match op {
            CompareOp::Lt => a < b,
            CompareOp::Gt => a > b,
            CompareOp::Le => a <= b,
            CompareOp::Ge => a >= b,
            CompareOp::Eq => a == b,
            CompareOp::Ne => a != b,
        };
        Value::Bool(result)
    }

    /// Whether the value is (numerically) close to another, with a relative
    /// tolerance suitable for comparing f32 pipelines against f64 references.
    pub fn approx_eq(self, other: Value, rel_tol: f64) -> bool {
        let a = self.as_f64();
        let b = other.as_f64();
        if a == b {
            return true;
        }
        if a.is_nan() && b.is_nan() {
            return true;
        }
        let scale = a.abs().max(b.abs()).max(1.0);
        (a - b).abs() <= rel_tol * scale
    }
}

/// Comparison operators used by [`Value::compare`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::F32(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::I32(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F32(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I32(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_promotes_types() {
        let a = Value::F32(1.5);
        let b = Value::I32(2);
        assert_eq!(a.add(b).data_type(), DataType::Float32);
        assert_eq!(a.add(b).as_f64(), 3.5);

        let c = Value::F64(1.0);
        assert_eq!(a.mul(c).data_type(), DataType::Float64);
    }

    #[test]
    fn integer_division_by_zero_is_an_error() {
        assert!(Value::I32(1).div(Value::I32(0)).is_err());
        // Float division by zero is IEEE.
        let inf = Value::F32(1.0).div(Value::F32(0.0)).unwrap();
        assert!(inf.as_f64().is_infinite());
    }

    #[test]
    fn comparisons_yield_bool() {
        let v = Value::F32(1.0).compare(Value::F32(2.0), CompareOp::Lt);
        assert_eq!(v, Value::Bool(true));
        assert!(v.as_bool());
    }

    #[test]
    fn min_max() {
        assert_eq!(Value::F32(1.0).min(Value::F32(2.0)).as_f64(), 1.0);
        assert_eq!(Value::F32(1.0).max(Value::F32(2.0)).as_f64(), 2.0);
    }

    #[test]
    fn approx_eq_tolerates_f32_rounding() {
        let a = Value::F64(1.0 / 3.0);
        let b = Value::F32(1.0 / 3.0);
        assert!(a.approx_eq(b, 1e-6));
        assert!(!a.approx_eq(Value::F64(0.4), 1e-6));
        assert!(Value::F64(f64::NAN).approx_eq(Value::F64(f64::NAN), 1e-6));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(1.0f32), Value::F32(1.0));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::zero(DataType::Float32), Value::F32(0.0));
        assert_eq!(Value::F64(3.7).cast(DataType::Int32), Value::I32(3));
    }
}
