//! Constant folding of stencil expressions.
//!
//! The paper relies on the downstream HLS compiler for common-subexpression
//! elimination after fusion (§V-B); the only expression-level simplification
//! the StencilFlow layer itself performs is folding constant sub-expressions,
//! which keeps latency estimates and operation counts honest for fused
//! programs with literal coefficients.

use crate::ast::{BinOp, Expr, MathFn, Program, Stmt, UnOp};
use crate::eval::eval_math_fn;
use crate::value::{CompareOp, Value};

/// Constant-fold every statement of a program.
///
/// Folding is conservative: it never changes evaluation results (including
/// IEEE behaviour for floats) and leaves anything involving a field access or
/// local variable untouched except where both operands are literals.
pub fn fold_program(program: &Program) -> Program {
    fold_program_impl(program, false)
}

/// Bit-exact constant folding: like [`fold_program`] but without the
/// identity simplifications (`x + 0`, `x * 1`, `x / 1`, ...).
///
/// Those rewrites are numerically exact but can change the *type* of an
/// intermediate: `x_f32 + 0.0_f64` promotes to `f64` in the evaluator, while
/// the simplified `x_f32` stays `f32` and is rounded on every subsequent
/// operation. The compiled-kernel path ([`crate::compile`]) must agree with
/// the tree-walking evaluator bit for bit, so it folds with this variant.
pub fn fold_program_exact(program: &Program) -> Program {
    fold_program_impl(program, true)
}

fn fold_program_impl(program: &Program, exact: bool) -> Program {
    Program {
        statements: program
            .statements
            .iter()
            .map(|stmt| Stmt {
                name: stmt.name.clone(),
                value: fold_expr_impl(&stmt.value, exact),
            })
            .collect(),
    }
}

/// Constant-fold a single expression.
pub fn fold_expr(expr: &Expr) -> Expr {
    fold_expr_impl(expr, false)
}

/// Bit-exact variant of [`fold_expr`]; see [`fold_program_exact`].
pub fn fold_expr_exact(expr: &Expr) -> Expr {
    fold_expr_impl(expr, true)
}

fn fold_expr_impl(expr: &Expr, exact: bool) -> Expr {
    match expr {
        Expr::IntLit(_) | Expr::FloatLit(_) | Expr::Var(_) | Expr::FieldAccess { .. } => {
            expr.clone()
        }
        Expr::Unary { op, operand } => {
            let operand = fold_expr_impl(operand, exact);
            match (&op, literal_value(&operand)) {
                (UnOp::Neg, Some(v)) => value_to_literal(v.neg()),
                // `!literal` evaluates to a Bool, which literals cannot
                // represent; folding it to 0/1 would change the result type,
                // so exact mode leaves it to the runtime.
                (UnOp::Not, Some(v)) if !exact => value_to_literal(v.not()),
                _ => Expr::Unary {
                    op: *op,
                    operand: Box::new(operand),
                },
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let lhs = fold_expr_impl(lhs, exact);
            let rhs = fold_expr_impl(rhs, exact);
            if let (Some(l), Some(r)) = (literal_value(&lhs), literal_value(&rhs)) {
                if let Some(v) = fold_binary(*op, l, r) {
                    // Comparisons and logic produce Bool, which literals
                    // cannot represent; exact mode must preserve the type.
                    if !(exact && v.data_type() == crate::types::DataType::Bool) {
                        return value_to_literal(v);
                    }
                }
            }
            // Identity simplifications that are numerically exact for floats
            // (x + 0, 0 + x, x - 0, x * 1, 1 * x, x / 1) but may change the
            // promoted type of the intermediate; skipped in exact mode.
            if !exact {
                match (op, literal_value(&lhs), literal_value(&rhs)) {
                    (BinOp::Add, Some(l), _)
                        if l.as_f64() == 0.0 && !l.as_f64().is_sign_negative() =>
                    {
                        return rhs
                    }
                    (BinOp::Add, _, Some(r))
                        if r.as_f64() == 0.0 && !r.as_f64().is_sign_negative() =>
                    {
                        return lhs
                    }
                    (BinOp::Sub, _, Some(r))
                        if r.as_f64() == 0.0 && !r.as_f64().is_sign_negative() =>
                    {
                        return lhs
                    }
                    (BinOp::Mul, Some(l), _) if l.as_f64() == 1.0 => return rhs,
                    (BinOp::Mul, _, Some(r)) if r.as_f64() == 1.0 => return lhs,
                    (BinOp::Div, _, Some(r)) if r.as_f64() == 1.0 => return lhs,
                    _ => {}
                }
            }
            Expr::Binary {
                op: *op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            }
        }
        Expr::Ternary {
            cond,
            then,
            otherwise,
        } => {
            let cond = fold_expr_impl(cond, exact);
            let then = fold_expr_impl(then, exact);
            let otherwise = fold_expr_impl(otherwise, exact);
            if let Some(c) = literal_value(&cond) {
                return if c.as_bool() { then } else { otherwise };
            }
            Expr::Ternary {
                cond: Box::new(cond),
                then: Box::new(then),
                otherwise: Box::new(otherwise),
            }
        }
        Expr::Call { func, args } => {
            let args: Vec<Expr> = args.iter().map(|a| fold_expr_impl(a, exact)).collect();
            let literals: Option<Vec<Value>> = args.iter().map(literal_value).collect();
            if let Some(values) = literals {
                // Only fold functions that are exact on the folded values to
                // avoid perturbing results (sqrt of a perfect square is still
                // folded via f64, which matches evaluation semantics).
                return value_to_literal(eval_math_fn(*func, &values));
            }
            Expr::Call { func: *func, args }
        }
    }
}

fn literal_value(expr: &Expr) -> Option<Value> {
    match expr {
        Expr::IntLit(v) => Some(Value::I64(*v)),
        Expr::FloatLit(v) => Some(Value::F64(*v)),
        _ => None,
    }
}

fn value_to_literal(value: Value) -> Expr {
    match value {
        Value::I32(v) => Expr::IntLit(v as i64),
        Value::I64(v) => Expr::IntLit(v),
        Value::Bool(b) => Expr::IntLit(if b { 1 } else { 0 }),
        Value::F32(v) => Expr::FloatLit(v as f64),
        Value::F64(v) => Expr::FloatLit(v),
    }
}

fn fold_binary(op: BinOp, l: Value, r: Value) -> Option<Value> {
    Some(match op {
        BinOp::Add => l.add(r),
        BinOp::Sub => l.sub(r),
        BinOp::Mul => l.mul(r),
        BinOp::Div => l.div(r).ok()?,
        BinOp::Lt => l.compare(r, CompareOp::Lt),
        BinOp::Gt => l.compare(r, CompareOp::Gt),
        BinOp::Le => l.compare(r, CompareOp::Le),
        BinOp::Ge => l.compare(r, CompareOp::Ge),
        BinOp::Eq => l.compare(r, CompareOp::Eq),
        BinOp::Ne => l.compare(r, CompareOp::Ne),
        BinOp::And => Value::Bool(l.as_bool() && r.as_bool()),
        BinOp::Or => Value::Bool(l.as_bool() || r.as_bool()),
    })
}

/// Returns `true` if the expression contains a call to `func`. Helper used by
/// op-count sanity checks and tests.
pub fn contains_call(expr: &Expr, func: MathFn) -> bool {
    let mut found = false;
    expr.visit(&mut |node| {
        if let Expr::Call { func: f, .. } = node {
            if *f == func {
                found = true;
            }
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    #[test]
    fn folds_constant_arithmetic() {
        let e = fold_expr(&parse_expr("2.0 * 3.0 + 1.0").unwrap());
        assert_eq!(e, Expr::FloatLit(7.0));
    }

    #[test]
    fn folds_constant_ternary() {
        let e = fold_expr(&parse_expr("1 > 0 ? a[i] : b[i]").unwrap());
        assert!(matches!(e, Expr::FieldAccess { ref field, .. } if field == "a"));
    }

    #[test]
    fn folds_constant_function_calls() {
        let e = fold_expr(&parse_expr("sqrt(16.0)").unwrap());
        assert_eq!(e, Expr::FloatLit(4.0));
        let e = fold_expr(&parse_expr("min(2.0, 3.0)").unwrap());
        assert_eq!(e, Expr::FloatLit(2.0));
    }

    #[test]
    fn identity_simplifications() {
        let e = fold_expr(&parse_expr("a[i] + 0.0").unwrap());
        assert!(matches!(e, Expr::FieldAccess { .. }));
        let e = fold_expr(&parse_expr("1.0 * a[i]").unwrap());
        assert!(matches!(e, Expr::FieldAccess { .. }));
        let e = fold_expr(&parse_expr("a[i] / 1.0").unwrap());
        assert!(matches!(e, Expr::FieldAccess { .. }));
    }

    #[test]
    fn does_not_fold_field_accesses() {
        let e = fold_expr(&parse_expr("a[i] + b[i]").unwrap());
        assert!(matches!(e, Expr::Binary { .. }));
    }

    #[test]
    fn folding_preserves_evaluation() {
        use crate::eval::{Evaluator, MapResolver};
        let mut r = MapResolver::new();
        r.insert_access("a", &[0], Value::F32(3.0));
        let prog = parse_program("x = 2.0 * 2.0; a[i] * x + (1.0 - 1.0)").unwrap();
        let folded = fold_program(&prog);
        let v1 = Evaluator::new(&r).eval_program(&prog).unwrap();
        let v2 = Evaluator::new(&r).eval_program(&folded).unwrap();
        assert_eq!(v1.as_f64(), v2.as_f64());
    }

    #[test]
    fn exact_mode_folds_constants_but_keeps_identities() {
        // Constant subexpressions still fold...
        let e = fold_expr_exact(&parse_expr("2.0 * 3.0 + 1.0").unwrap());
        assert_eq!(e, Expr::FloatLit(7.0));
        // ...but type-changing identity rewrites are kept verbatim.
        let e = fold_expr_exact(&parse_expr("a[i] + 0.0").unwrap());
        assert!(matches!(e, Expr::Binary { .. }));
        let e = fold_expr_exact(&parse_expr("1.0 * a[i]").unwrap());
        assert!(matches!(e, Expr::Binary { .. }));
    }

    #[test]
    fn contains_call_helper() {
        let e = parse_expr("sqrt(a[i]) + 1.0").unwrap();
        assert!(contains_call(&e, MathFn::Sqrt));
        assert!(!contains_call(&e, MathFn::Min));
    }
}
