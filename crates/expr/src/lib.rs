//! Stencil expression and statement language for StencilFlow.
//!
//! Stencil nodes in a StencilFlow program (see the `stencilflow-program`
//! crate) carry a small code segment describing the computation performed at
//! each point of the iteration space, e.g.
//!
//! ```text
//! 0.5 * (b0[i, j, k] + a2[i, k])
//! ```
//!
//! or, for more complex stencils such as the horizontal-diffusion components
//! of the COSMO weather model, a short sequence of assignments whose final
//! statement produces the output value:
//!
//! ```text
//! lap = -4.0 * u[i, j, k] + u[i-1, j, k] + u[i+1, j, k] + u[i, j-1, k] + u[i, j+1, k];
//! delta = lap - u[i, j, k];
//! out = (delta > 0.0) ? delta : 0.0
//! ```
//!
//! The paper (§II) restricts this language to an *analyzable* subset: field
//! accesses at constant offsets, arithmetic, standard math functions, and
//! ternary conditionals (including data-dependent branches). No external data
//! structures or functions are allowed. This crate implements exactly that
//! restriction:
//!
//! * [`lexer`] / [`parser`] — turn source text into an [`ast::Program`].
//! * [`ast`] — expression / statement tree, with pretty-printing that
//!   round-trips through the parser.
//! * [`types`] — the scalar data types supported by the stack and a simple
//!   type-inference pass.
//! * [`value`] — runtime values and arithmetic used by the evaluator and by
//!   the functional hardware simulator.
//! * [`eval`] — reference evaluation of a code segment given an access
//!   resolver (used by the load/store reference executor and by the
//!   functional mode of the spatial simulator).
//! * [`access`] — extraction of the field-access pattern (which fields are
//!   read, at which constant offsets), the information that drives the
//!   internal-buffer and delay-buffer analyses of the paper (§IV).
//! * [`latency`] — per-operation latency tables and critical-path analysis of
//!   the computation DAG (§IV-B: "the AST formed by computation of a stencil
//!   operation forms another DAG, whose critical path adds a delay").
//! * [`opcount`] — floating-point operation counting used for the arithmetic
//!   intensity / roofline analysis of §IX-A.
//! * [`fold`] — constant folding, the only expression-level optimization the
//!   stack needs before handing code to the (simulated) HLS backend.
//! * [`compile`] — lowering of code segments to slot-resolved bytecode
//!   ([`CompiledKernel`]), the allocation-free fast path used by the
//!   reference executor and the functional simulator (see
//!   `docs/evaluation.md` for the two-tier evaluation architecture).
//! * [`opt`] — the pass-based optimization pipeline over the bytecode
//!   (if-conversion of ternary diamonds to branch-free selects, CSE, and
//!   DCE), run by default inside [`compile`] and shared by every backend.
//! * [`verify`] — the bytecode verifier: abstract interpretation proving
//!   stack-depth safety, init-before-use, jump validity, and type-flow
//!   soundness of every compiled stream, with conservative
//!   infallibility/purity judgments. Runs after every optimizer pass in
//!   debug builds; see `docs/analysis.md`.
//!
//! # Example
//!
//! ```
//! use stencilflow_expr::{parse_program, AccessExtractor, count_ops};
//!
//! let prog = parse_program("0.5 * (b0[i, j, k] + a2[i, k])").unwrap();
//! let accesses = AccessExtractor::extract(&prog);
//! assert!(accesses.fields().any(|f| f == "b0"));
//! let ops = count_ops(&prog);
//! assert_eq!(ops.additions, 1);
//! assert_eq!(ops.multiplications, 1);
//! ```

#![forbid(unsafe_code)]

pub mod access;
pub mod ast;
pub mod compile;
pub mod error;
pub mod eval;
pub mod fold;
pub mod latency;
pub mod lexer;
pub mod opcount;
pub mod opt;
pub mod parser;
pub mod types;
pub mod value;
pub mod verify;

pub use access::{AccessExtractor, FieldAccesses};
pub use ast::{BinOp, Expr, MathFn, Program, Stmt, UnOp};
pub use compile::{
    AccessSlot, CompiledKernel, EvalScratch, LaneScratch, Op, TypedKernel, TypedOp, TypedScratch,
    KERNEL_LANES, KERNEL_LANES_WIDE,
};
pub use error::{ExprError, Result};
pub use eval::{AccessResolver, Evaluator, MapResolver};
pub use fold::{fold_program, fold_program_exact};
pub use latency::{critical_path_latency, kernel_critical_path, LatencyTable};
pub use lexer::{tokenize, Token};
pub use opcount::{count_kernel_ops, count_ops, OpCount};
pub use opt::{dump_ops, Cse, Dce, IfConversion, OptConfig, Pass, PassEffect, PassManager};
pub use parser::{parse_expr, parse_program};
pub use types::DataType;
pub use value::Value;
pub use verify::{
    verify_kernel, verify_ops, verify_typed, verify_typed_ops, AbstractType, KernelJudgment,
    TypedJudgment, VerifyError,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_parse_eval() {
        let prog = parse_program("a[i] + 2.0 * b[i-1]").unwrap();
        let mut resolver = MapResolver::new();
        resolver.insert_access("a", &[0], Value::F32(3.0));
        resolver.insert_access("b", &[-1], Value::F32(4.0));
        let value = Evaluator::new(&resolver).eval_program(&prog).unwrap();
        assert_eq!(value.as_f64(), 11.0);
    }

    #[test]
    fn paper_listing1_expressions_parse() {
        // All code segments from Lst. 1 of the paper.
        for code in [
            "a0[i,j,k] + a1[i,j,k]",
            "0.5*(b0[i,j,k] + a2[i,k])",
            "0.5*(b0[i,j,k] - a2[i,k])",
            "b1[i-1,j,k] + b1[i+1,j,k]",
            "b2[i,j,k] + b3[i,j,k]",
        ] {
            parse_program(code).unwrap();
        }
    }
}
