//! Extraction of field-access patterns from stencil code segments.
//!
//! The internal-buffer and delay-buffer analyses (paper §IV) are driven
//! entirely by *which fields* a stencil reads and *at which constant
//! offsets*. This module walks a parsed [`Program`] and collects that
//! information, distinguishing:
//!
//! * bracketed accesses, e.g. `u[i-1, j, k]` — an access into an input field
//!   at constant offsets along the listed iteration variables;
//! * bare identifiers that are not locals, e.g. `dt` — scalar ("0D") inputs.

use crate::ast::{Expr, Index, Program};
use std::collections::{BTreeMap, BTreeSet};

/// All accesses a code segment performs on one field.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FieldAccessInfo {
    /// Iteration variables used to index this field, in the order they appear
    /// in the access (e.g. `["i", "k"]` for `a2[i, k]`). Empty for scalar
    /// (0D) inputs.
    pub index_vars: Vec<String>,
    /// The set of distinct constant offset vectors, each of the same length
    /// as `index_vars`.
    pub offsets: BTreeSet<Vec<i64>>,
}

impl FieldAccessInfo {
    /// Number of distinct accesses to this field.
    pub fn access_count(&self) -> usize {
        self.offsets.len()
    }

    /// Whether this field is accessed as a scalar (no indices).
    pub fn is_scalar(&self) -> bool {
        self.index_vars.is_empty()
    }

    /// Per-dimension minimum and maximum offsets (the stencil "radius" along
    /// each accessed dimension). Returns an empty vector for scalar accesses.
    pub fn extent(&self) -> Vec<(i64, i64)> {
        let dims = self.index_vars.len();
        let mut extent = vec![(i64::MAX, i64::MIN); dims];
        for offsets in &self.offsets {
            for (d, &off) in offsets.iter().enumerate() {
                extent[d].0 = extent[d].0.min(off);
                extent[d].1 = extent[d].1.max(off);
            }
        }
        if self.offsets.is_empty() {
            vec![(0, 0); dims]
        } else {
            extent
        }
    }
}

/// The complete access pattern of a code segment: one entry per field read.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FieldAccesses {
    accesses: BTreeMap<String, FieldAccessInfo>,
}

impl FieldAccesses {
    /// Create an empty access pattern.
    pub fn new() -> Self {
        Self::default()
    }

    /// Iterate over the names of all accessed fields (sorted).
    pub fn fields(&self) -> impl Iterator<Item = &str> {
        self.accesses.keys().map(String::as_str)
    }

    /// Number of distinct fields accessed.
    pub fn field_count(&self) -> usize {
        self.accesses.len()
    }

    /// Total number of distinct (field, offset) access points.
    pub fn total_accesses(&self) -> usize {
        self.accesses
            .values()
            .map(|a| a.access_count().max(1))
            .sum()
    }

    /// Access information for one field, if it is accessed at all.
    pub fn get(&self, field: &str) -> Option<&FieldAccessInfo> {
        self.accesses.get(field)
    }

    /// Whether the given field is accessed.
    pub fn contains(&self, field: &str) -> bool {
        self.accesses.contains_key(field)
    }

    /// Iterate over `(field, info)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &FieldAccessInfo)> {
        self.accesses.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Record an access (used by the extractor and by tests that construct
    /// access patterns directly).
    pub fn record(&mut self, field: &str, index_vars: &[String], offsets: Vec<i64>) {
        let entry = self.accesses.entry(field.to_string()).or_default();
        if entry.index_vars.is_empty() && !index_vars.is_empty() {
            entry.index_vars = index_vars.to_vec();
        }
        entry.offsets.insert(offsets);
    }

    /// Record a scalar (0D) access.
    pub fn record_scalar(&mut self, field: &str) {
        let entry = self.accesses.entry(field.to_string()).or_default();
        entry.offsets.insert(Vec::new());
    }

    /// Remove a field from the pattern (used when a symbol turns out to be a
    /// named constant rather than a field).
    pub fn remove(&mut self, field: &str) -> Option<FieldAccessInfo> {
        self.accesses.remove(field)
    }
}

/// Walks a [`Program`] and extracts its [`FieldAccesses`].
#[derive(Debug, Default)]
pub struct AccessExtractor;

impl AccessExtractor {
    /// Extract the access pattern of a code segment.
    ///
    /// Local variables defined by earlier statements are *not* reported as
    /// field accesses; every other bare identifier is reported as a scalar
    /// access (the program-level analysis later decides whether it is a 0D
    /// field or an iteration variable misuse).
    ///
    /// # Example
    ///
    /// ```
    /// # use stencilflow_expr::{parse_program, AccessExtractor};
    /// let prog = parse_program("b1[i-1, j, k] + b1[i+1, j, k]").unwrap();
    /// let acc = AccessExtractor::extract(&prog);
    /// assert_eq!(acc.get("b1").unwrap().access_count(), 2);
    /// ```
    pub fn extract(program: &Program) -> FieldAccesses {
        let locals: BTreeSet<&str> = program.local_names().into_iter().collect();
        let mut accesses = FieldAccesses::new();
        for expr in program.exprs() {
            Self::walk(expr, &locals, &mut accesses);
        }
        accesses
    }

    fn walk(expr: &Expr, locals: &BTreeSet<&str>, accesses: &mut FieldAccesses) {
        expr.visit(&mut |node| match node {
            Expr::FieldAccess { field, indices } => {
                let vars: Vec<String> = indices.iter().map(|ix| ix.var.clone()).collect();
                let offsets: Vec<i64> = indices.iter().map(|ix| ix.offset).collect();
                accesses.record(field, &vars, offsets);
            }
            Expr::Var(name) if !locals.contains(name.as_str()) => {
                accesses.record_scalar(name);
            }
            _ => {}
        });
    }
}

/// Convenience: extract the index variables used by a list of [`Index`]
/// expressions.
pub fn index_vars(indices: &[Index]) -> Vec<String> {
    indices.iter().map(|ix| ix.var.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn extracts_multiple_offsets() {
        let prog = parse_program("u[i-1,j,k] + u[i+1,j,k] + u[i,j,k]").unwrap();
        let acc = AccessExtractor::extract(&prog);
        let info = acc.get("u").unwrap();
        assert_eq!(info.access_count(), 3);
        assert_eq!(info.index_vars, vec!["i", "j", "k"]);
        assert_eq!(info.extent(), vec![(-1, 1), (0, 0), (0, 0)]);
    }

    #[test]
    fn duplicate_accesses_are_deduplicated() {
        let prog = parse_program("u[i,j,k] * u[i,j,k]").unwrap();
        let acc = AccessExtractor::extract(&prog);
        assert_eq!(acc.get("u").unwrap().access_count(), 1);
    }

    #[test]
    fn locals_are_not_fields() {
        let prog = parse_program("t = a[i] + b[i]; t * t").unwrap();
        let acc = AccessExtractor::extract(&prog);
        assert!(acc.contains("a"));
        assert!(acc.contains("b"));
        assert!(!acc.contains("t"));
    }

    #[test]
    fn scalars_are_recorded() {
        let prog = parse_program("a[i,j,k] * dt + eps").unwrap();
        let acc = AccessExtractor::extract(&prog);
        assert!(acc.get("dt").unwrap().is_scalar());
        assert!(acc.get("eps").unwrap().is_scalar());
        assert_eq!(acc.field_count(), 3);
    }

    #[test]
    fn lower_dimensional_access_vars() {
        let prog = parse_program("b0[i,j,k] + a2[i,k]").unwrap();
        let acc = AccessExtractor::extract(&prog);
        assert_eq!(acc.get("a2").unwrap().index_vars, vec!["i", "k"]);
        assert_eq!(acc.get("b0").unwrap().index_vars, vec!["i", "j", "k"]);
    }

    #[test]
    fn total_accesses_counts_access_points() {
        let prog = parse_program("u[i-1,j,k] + u[i+1,j,k] + v[i,j,k] + dt").unwrap();
        let acc = AccessExtractor::extract(&prog);
        assert_eq!(acc.total_accesses(), 4);
    }

    #[test]
    fn extent_of_scalar_is_empty() {
        let prog = parse_program("dt + 1.0").unwrap();
        let acc = AccessExtractor::extract(&prog);
        assert!(acc.get("dt").unwrap().extent().is_empty());
    }
}
