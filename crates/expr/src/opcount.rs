//! Floating-point operation counting.
//!
//! The paper's §IX-A analysis of the horizontal diffusion program counts
//! "87 additions, 41 multiplications, and 2 square roots, in addition to 2
//! minimum and 2 maximum operations, and ternary operations resulting in 20
//! data-dependent branches". These counts feed the arithmetic-intensity and
//! roofline analysis (Eq. 2–4) and the Op/s throughput numbers of every
//! benchmark, so the whole evaluation depends on a consistent way of counting
//! operations. This module provides it.

use crate::ast::{BinOp, Expr, MathFn, Program, UnOp};
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Operation counts for one stencil evaluation at a single point of the
/// iteration space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCount {
    /// Additions and subtractions.
    pub additions: u64,
    /// Multiplications.
    pub multiplications: u64,
    /// Divisions.
    pub divisions: u64,
    /// Square roots.
    pub square_roots: u64,
    /// Minimum operations.
    pub minimums: u64,
    /// Maximum operations.
    pub maximums: u64,
    /// Other math functions (abs, exp, log, pow, trig, floor, ceil).
    pub other_math: u64,
    /// Comparisons.
    pub comparisons: u64,
    /// Ternary selections (data-dependent branches).
    pub branches: u64,
    /// Logical operations and negations.
    pub logical: u64,
}

impl OpCount {
    /// Total floating-point operations, using the paper's counting
    /// convention: additions + multiplications + divisions + square roots
    /// (each counted as one operation), as used for the "Op/s" throughput
    /// metric and the arithmetic-intensity analysis.
    pub fn flops(&self) -> u64 {
        self.additions + self.multiplications + self.divisions + self.square_roots
    }

    /// Total operations including selections, comparisons, and other math —
    /// a proxy for how much compute *logic* the stencil instantiates.
    pub fn total_logic_ops(&self) -> u64 {
        self.flops()
            + self.minimums
            + self.maximums
            + self.other_math
            + self.comparisons
            + self.branches
            + self.logical
    }

    /// Scale every count by a constant factor (e.g. iteration count or
    /// vectorization width).
    pub fn scaled(&self, factor: u64) -> OpCount {
        OpCount {
            additions: self.additions * factor,
            multiplications: self.multiplications * factor,
            divisions: self.divisions * factor,
            square_roots: self.square_roots * factor,
            minimums: self.minimums * factor,
            maximums: self.maximums * factor,
            other_math: self.other_math * factor,
            comparisons: self.comparisons * factor,
            branches: self.branches * factor,
            logical: self.logical * factor,
        }
    }
}

impl Add for OpCount {
    type Output = OpCount;

    fn add(self, rhs: OpCount) -> OpCount {
        OpCount {
            additions: self.additions + rhs.additions,
            multiplications: self.multiplications + rhs.multiplications,
            divisions: self.divisions + rhs.divisions,
            square_roots: self.square_roots + rhs.square_roots,
            minimums: self.minimums + rhs.minimums,
            maximums: self.maximums + rhs.maximums,
            other_math: self.other_math + rhs.other_math,
            comparisons: self.comparisons + rhs.comparisons,
            branches: self.branches + rhs.branches,
            logical: self.logical + rhs.logical,
        }
    }
}

impl AddAssign for OpCount {
    fn add_assign(&mut self, rhs: OpCount) {
        *self = *self + rhs;
    }
}

impl Sum for OpCount {
    fn sum<I: Iterator<Item = OpCount>>(iter: I) -> OpCount {
        iter.fold(OpCount::default(), |acc, x| acc + x)
    }
}

/// Count the operations performed by one evaluation of a code segment.
///
/// Both branches of a ternary are counted (the hardware instantiates both and
/// multiplexes the result), matching how HLS maps data-dependent branches to
/// logic and how the paper counts them.
///
/// # Example
///
/// ```
/// # use stencilflow_expr::{parse_program, count_ops};
/// let prog = parse_program("0.5 * (a[i-1] + a[i+1]) - a[i]").unwrap();
/// let ops = count_ops(&prog);
/// assert_eq!(ops.additions, 2); // one add, one subtract
/// assert_eq!(ops.multiplications, 1);
/// ```
pub fn count_ops(program: &Program) -> OpCount {
    let mut count = OpCount::default();
    for expr in program.exprs() {
        count += count_expr(expr);
    }
    count
}

/// Count the operations of a compiled kernel's instruction stream.
///
/// This is the bytecode-level counterpart of [`count_ops`]: it sees the
/// kernel *after* the optimization pipeline, so common-subexpression
/// elimination and dead-code elimination reduce these counts while the
/// AST-level counts (which drive the paper's hardware-cost model, where
/// both ternary arms are instantiated) are unchanged. If-converted
/// selects are counted as branches, exactly like the ternaries they came
/// from; control-flow instructions (jumps) and data movement (slot reads,
/// register traffic) count as nothing.
pub fn count_kernel_ops(kernel: &crate::compile::CompiledKernel) -> OpCount {
    use crate::compile::Op;
    let mut count = OpCount::default();
    for op in kernel.ops() {
        match op {
            Op::Binary(op) => match op {
                BinOp::Add | BinOp::Sub => count.additions += 1,
                BinOp::Mul => count.multiplications += 1,
                BinOp::Div => count.divisions += 1,
                BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                    count.comparisons += 1
                }
                BinOp::And | BinOp::Or => count.logical += 1,
            },
            Op::Unary(_) | Op::ToBool => count.logical += 1,
            Op::Select | Op::JumpIfFalse(_) => count.branches += 1,
            Op::AndShortCircuit(_) | Op::OrShortCircuit(_) => count.logical += 1,
            Op::Call1(func) | Op::Call2(func) => match func {
                MathFn::Sqrt => count.square_roots += 1,
                MathFn::Min => count.minimums += 1,
                MathFn::Max => count.maximums += 1,
                _ => count.other_math += 1,
            },
            Op::Const(_) | Op::Slot(_) | Op::Local(_) | Op::Store(_) | Op::Pop | Op::Jump(_) => {}
        }
    }
    count
}

/// Count the operations of a single expression.
pub fn count_expr(expr: &Expr) -> OpCount {
    let mut count = OpCount::default();
    expr.visit(&mut |node| match node {
        Expr::Binary { op, .. } => match op {
            BinOp::Add | BinOp::Sub => count.additions += 1,
            BinOp::Mul => count.multiplications += 1,
            BinOp::Div => count.divisions += 1,
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                count.comparisons += 1
            }
            BinOp::And | BinOp::Or => count.logical += 1,
        },
        Expr::Unary { op, .. } => match op {
            // Negation is folded into the consuming operation by the FP units;
            // counted as logic rather than an addition.
            UnOp::Neg => count.logical += 1,
            UnOp::Not => count.logical += 1,
        },
        Expr::Ternary { .. } => count.branches += 1,
        Expr::Call { func, .. } => match func {
            MathFn::Sqrt => count.square_roots += 1,
            MathFn::Min => count.minimums += 1,
            MathFn::Max => count.maximums += 1,
            _ => count.other_math += 1,
        },
        _ => {}
    });
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn counts_basic_arithmetic() {
        let ops = count_ops(&parse_program("a[i]*b[i] + c[i]/d[i] - e[i]").unwrap());
        assert_eq!(ops.additions, 2);
        assert_eq!(ops.multiplications, 1);
        assert_eq!(ops.divisions, 1);
        assert_eq!(ops.flops(), 4);
    }

    #[test]
    fn counts_functions_and_branches() {
        let ops = count_ops(
            &parse_program("x = sqrt(a[i]); y = min(x, b[i]); y > 0.0 ? max(y, c[i]) : 0.0")
                .unwrap(),
        );
        assert_eq!(ops.square_roots, 1);
        assert_eq!(ops.minimums, 1);
        assert_eq!(ops.maximums, 1);
        assert_eq!(ops.branches, 1);
        assert_eq!(ops.comparisons, 1);
    }

    #[test]
    fn paper_counting_convention_for_flops() {
        // Square root counts as one operation (§IX-A).
        let ops = count_ops(&parse_program("sqrt(a[i]) + b[i]").unwrap());
        assert_eq!(ops.flops(), 2);
    }

    #[test]
    fn jacobi_3d_has_expected_op_count() {
        // 7-point Jacobi: 6 adds + 1 mul ~ 7-8 ops as used in Fig. 14
        // ("8 Op/Stencil" includes the scaling multiply and one extra add in
        // the paper's kernel; our canonical kernel counts 7).
        let code = "0.125 * (a[i,j,k] + a[i-1,j,k] + a[i+1,j,k] + a[i,j-1,k] + a[i,j+1,k] \
                    + a[i,j,k-1] + a[i,j,k+1])";
        let ops = count_ops(&parse_program(code).unwrap());
        assert_eq!(ops.additions, 6);
        assert_eq!(ops.multiplications, 1);
        assert_eq!(ops.flops(), 7);
    }

    #[test]
    fn kernel_counts_reflect_optimization() {
        use crate::compile::CompiledKernel;
        // The AST counts both adds; the optimized bytecode shares one.
        let program = parse_program("(a[i-1] + a[i+1]) * (a[i-1] + a[i+1])").unwrap();
        assert_eq!(count_ops(&program).additions, 2);
        let optimized = CompiledKernel::compile(&program).unwrap();
        let counts = count_kernel_ops(&optimized);
        assert_eq!(counts.additions, 1);
        assert_eq!(counts.multiplications, 1);
        // An if-converted ternary still counts as one branch.
        let program = parse_program("a[i] > 0.0 ? a[i] : -a[i]").unwrap();
        let optimized = CompiledKernel::compile(&program).unwrap();
        let counts = count_kernel_ops(&optimized);
        assert_eq!(counts.branches, 1);
        assert_eq!(counts.comparisons, 1);
    }

    #[test]
    fn opcount_addition_and_scaling() {
        let a = count_ops(&parse_program("a[i] + b[i]").unwrap());
        let b = count_ops(&parse_program("a[i] * b[i]").unwrap());
        let sum = a + b;
        assert_eq!(sum.additions, 1);
        assert_eq!(sum.multiplications, 1);
        let scaled = sum.scaled(10);
        assert_eq!(scaled.additions, 10);
        assert_eq!(scaled.flops(), 20);

        let total: OpCount = vec![a, b, a].into_iter().sum();
        assert_eq!(total.additions, 2);
    }
}
