//! Pass-based optimization pipeline over the slot-resolved bytecode.
//!
//! The paper defers common-subexpression elimination and branch flattening
//! to the downstream HLS compiler after fusion (§V-B). In this reproduction
//! nobody sits downstream: the reference executor, the cycle simulator, and
//! the C/OpenCL emitters all consume the compiled bytecode directly, so
//! these optimizations have to happen here — once, in a shared pipeline —
//! or not at all. The pipeline runs inside [`CompiledKernel::compile`](crate::CompiledKernel::compile), so
//! every consumer automatically evaluates (and emits code for) the
//! optimized form.
//!
//! Three passes are provided, orchestrated by a [`PassManager`] with
//! per-pass enable flags ([`OptConfig`]) and optional bytecode dumps:
//!
//! * [`IfConversion`] — rewrites the jump diamonds produced by ternaries
//!   (and the conditional skips produced by short-circuit `&&`/`||`) into
//!   the branch-free [`Op::Select`] opcode, evaluating both arms
//!   unconditionally and selecting one result. This is what lets
//!   [`TypedKernel::supports_lanes`](crate::TypedKernel::supports_lanes) admit formerly-branchy kernels into
//!   the lane-batched (SIMD) tier.
//! * [`Cse`] — common-subexpression elimination over pure operations
//!   (taps, arithmetic, math functions): the bytecode is value-numbered
//!   into a DAG and re-emitted with shared subcomputations held in local
//!   registers.
//! * [`Dce`] — dead-code elimination of unreferenced locals and discarded
//!   statement results (the same DAG machinery without value numbering).
//!
//! # Legality and bit-identity
//!
//! Every pass preserves the observable semantics of the kernel **bit for
//! bit**, including error outcomes, which the equivalence suites check
//! against the tree-walking interpreter:
//!
//! * If-conversion fires only when both arms are provably side-effect-free
//!   and infallible under unconditional evaluation: no stores, no control
//!   flow, and — crucially — no division, whose integer variant can raise
//!   an error that lazy evaluation would have skipped (the language's one
//!   runtime error). Math functions evaluate unconditionally without harm:
//!   domain misses (e.g. `sqrt` of a negative) produce quiet NaNs that the
//!   select discards, never errors. The per-operation `f32`-rounding flags
//!   are untouched — the arms' instructions are kept verbatim, only the
//!   jumps around them are replaced — so the typed specialization of the
//!   select form rounds exactly like the jump form did.
//! * CSE merges only pure operations; two occurrences of the same
//!   operation on the same operands produce identical bits (and identical
//!   errors — division deduplicates against itself). Re-emission preserves
//!   per-operand evaluation order inside every expression.
//! * DCE never drops a computation that could fail: discarded results
//!   whose subtrees contain a division are kept alive as explicit
//!   evaluate-and-pop statements, so `x = 1 / 0; a[i]` still errors
//!   exactly like the interpreter.
//!
//! Kernels that still carry jumps after if-conversion (an arm with a
//! division keeps its diamond) skip CSE/DCE entirely — the passes return
//! the stream unchanged, which is always legal.

use crate::ast::BinOp;
use crate::compile::{local_count_of, Op, TypedOp};
use crate::types::DataType;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Per-pass enable flags (and debug dumping) for the standard pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptConfig {
    /// Lower ternary / short-circuit jump diamonds to [`Op::Select`].
    pub if_conversion: bool,
    /// Value-number pure operations and share them through registers.
    pub cse: bool,
    /// Drop unreferenced locals and discarded pure computations.
    pub dce: bool,
    /// Capture a bytecode dump after every pass that changed the kernel
    /// (returned in [`PassEffect::dump`]).
    pub debug: bool,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            if_conversion: true,
            cse: true,
            dce: true,
            debug: false,
        }
    }
}

impl OptConfig {
    /// Every pass disabled: [`CompiledKernel::compile_with`](crate::CompiledKernel::compile_with) yields the raw
    /// jump-based lowering.
    pub fn disabled() -> Self {
        OptConfig {
            if_conversion: false,
            cse: false,
            dce: false,
            debug: false,
        }
    }
}

/// One transformation over the compiled instruction stream. Implementations
/// must preserve kernel semantics bit for bit (see the module docs for the
/// legality obligations this entails).
pub trait Pass {
    /// Stable pass name used in reports and dumps.
    fn name(&self) -> &'static str;
    /// Transform `ops` in place; return whether anything changed.
    fn run(&self, ops: &mut Vec<Op>) -> bool;
}

/// What one pass did to the kernel, as reported by [`PassManager::run`].
#[derive(Debug, Clone)]
pub struct PassEffect {
    /// Name of the pass.
    pub name: &'static str,
    /// Whether the pass changed the instruction stream.
    pub changed: bool,
    /// Instruction count before the pass.
    pub ops_before: usize,
    /// Instruction count after the pass.
    pub ops_after: usize,
    /// Bytecode dump after the pass, when debug dumping is enabled and the
    /// pass changed something.
    pub dump: Option<String>,
}

/// Ordered pipeline of [`Pass`]es over a kernel's instruction stream.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    debug: bool,
}

impl PassManager {
    /// An empty pipeline; add passes with [`PassManager::with_pass`].
    pub fn new(debug: bool) -> Self {
        PassManager {
            passes: Vec::new(),
            debug,
        }
    }

    /// The standard pipeline in its canonical order — if-conversion first
    /// (selects expose the arms to value numbering), then CSE, then DCE
    /// (cleaning up what CSE left dead) — honoring the per-pass flags.
    pub fn standard(config: &OptConfig) -> Self {
        let mut manager = PassManager::new(config.debug);
        if config.if_conversion {
            manager = manager.with_pass(Box::new(IfConversion));
        }
        if config.cse {
            manager = manager.with_pass(Box::new(Cse));
        }
        if config.dce {
            manager = manager.with_pass(Box::new(Dce));
        }
        manager
    }

    /// Append a pass to the pipeline.
    pub fn with_pass(mut self, pass: Box<dyn Pass>) -> Self {
        self.passes.push(pass);
        self
    }

    /// Run every pass in order, returning one [`PassEffect`] per pass.
    ///
    /// In debug builds every pass that changed the stream is immediately
    /// re-verified by the bytecode verifier ([`crate::verify`]): a pass
    /// that breaks stack discipline, jump targets, or init-before-use
    /// panics here, at the pass that produced the bad stream, instead of
    /// corrupting evaluation later.
    pub fn run(&self, ops: &mut Vec<Op>) -> Vec<PassEffect> {
        let mut effects = Vec::with_capacity(self.passes.len());
        for pass in &self.passes {
            let ops_before = ops.len();
            let changed = pass.run(ops);
            #[cfg(debug_assertions)]
            if changed {
                if let Err(e) = crate::verify::verify_ops(
                    ops,
                    crate::verify::slot_count_of(ops),
                    local_count_of(ops),
                    None,
                ) {
                    panic!("pass `{}` produced an invalid stream: {e}", pass.name());
                }
            }
            effects.push(PassEffect {
                name: pass.name(),
                changed,
                ops_before,
                ops_after: ops.len(),
                dump: (self.debug && changed).then(|| dump_ops(ops)),
            });
        }
        effects
    }
}

/// Render an instruction stream for debugging (one indexed line per op).
pub fn dump_ops(ops: &[Op]) -> String {
    let mut out = String::new();
    for (ix, op) in ops.iter().enumerate() {
        let _ = writeln!(out, "{ix:>4}: {op:?}");
    }
    out
}

/// Whether an instruction is pure and infallible — safe to evaluate
/// speculatively (if-conversion) and to merge or drop (CSE/DCE). Division
/// is excluded: its integer variant raises the language's only runtime
/// error, which speculation or elimination would make appear or vanish.
fn pure_infallible(op: &Op) -> bool {
    match op {
        Op::Const(_)
        | Op::Slot(_)
        | Op::Local(_)
        | Op::Unary(_)
        | Op::Call1(_)
        | Op::Call2(_)
        | Op::ToBool
        | Op::Select => true,
        Op::Binary(BinOp::Div) => false,
        Op::Binary(_) => true,
        Op::Store(_)
        | Op::Pop
        | Op::Jump(_)
        | Op::JumpIfFalse(_)
        | Op::AndShortCircuit(_)
        | Op::OrShortCircuit(_) => false,
    }
}

/// Operand/result arity of a pure instruction (`None` for impure ops).
fn pure_arity(op: &Op) -> Option<(usize, usize)> {
    if !pure_infallible(op) {
        return None;
    }
    Some(match op {
        Op::Const(_) | Op::Slot(_) | Op::Local(_) => (0, 1),
        Op::Unary(_) | Op::Call1(_) | Op::ToBool => (1, 1),
        Op::Binary(_) | Op::Call2(_) => (2, 1),
        Op::Select => (3, 1),
        _ => unreachable!("pure ops only"),
    })
}

/// Whether `ops` is a pure, infallible region that consumes nothing below
/// its own stack frame and leaves exactly one value — the shape of a
/// ternary arm or a short-circuit right-hand side.
fn produces_one_pure_value(ops: &[Op]) -> bool {
    let mut depth = 0i64;
    for op in ops {
        let Some((pops, pushes)) = pure_arity(op) else {
            return false;
        };
        depth -= pops as i64;
        if depth < 0 {
            return false;
        }
        depth += pushes as i64;
    }
    depth == 1
}

/// If-conversion: rewrite jump diamonds into the branch-free
/// [`Op::Select`].
///
/// Two shapes are recognized, both produced by the lowering in
/// [`crate::compile`]:
///
/// * **Ternary diamonds** `cond; JumpIfFalse(E); then…; Jump(end); else…`
///   become `cond; then…; else…; Select` — both arms evaluate
///   unconditionally and the select picks one result.
/// * **Short-circuit skips** `lhs; AndShortCircuit(t); rhs…; ToBool`
///   become `lhs; rhs…; ToBool; Const(false); Select` (dually with
///   `Const(true)` pushed before the right-hand side for `||`), preserving
///   the `Bool` result type of the logical operators.
///
/// A diamond converts only when its speculated region is pure and
/// infallible (`pure_infallible`); nested diamonds convert innermost
/// first, so an outer ternary whose arm contains an inner ternary becomes
/// convertible once the inner one has been flattened. Kernels whose
/// diamonds all resist conversion (e.g. a division in an arm) keep their
/// jumps — and with them the scalar evaluation path.
pub struct IfConversion;

/// One applicable rewrite found by the candidate scan.
enum Rewrite {
    /// `JumpIfFalse` at `jif` (targeting `jump + 1`), `Jump` at `jump`
    /// targeting `end`.
    Ternary { jif: usize, jump: usize, end: usize },
    /// `AndShortCircuit` / `OrShortCircuit` at `sc` targeting `end`.
    And { sc: usize, end: usize },
    /// See [`Rewrite::And`].
    Or { sc: usize, end: usize },
}

impl Pass for IfConversion {
    fn name(&self) -> &'static str {
        "if-conversion"
    }

    fn run(&self, ops: &mut Vec<Op>) -> bool {
        let mut changed = false;
        while let Some(rewrite) = find_rewrite(ops) {
            apply_rewrite(ops, rewrite);
            changed = true;
        }
        changed
    }
}

/// Jump target of a control-flow op, if any.
fn jump_target(op: &Op) -> Option<usize> {
    match op {
        Op::Jump(t) | Op::JumpIfFalse(t) | Op::AndShortCircuit(t) | Op::OrShortCircuit(t) => {
            Some(*t as usize)
        }
        _ => None,
    }
}

/// No jump outside the candidate's own (to-be-removed) control ops may
/// target the interior of the rewritten span: the lowering never produces
/// such jumps, but bail rather than miscompile if one appears.
fn region_is_isolated(ops: &[Op], removed: &[usize], lo: usize, hi: usize) -> bool {
    ops.iter().enumerate().all(|(ix, op)| {
        removed.contains(&ix) || jump_target(op).is_none_or(|target| target <= lo || target >= hi)
    })
}

/// Find the first applicable rewrite, scanning left to right. Inner
/// diamonds are found before the outer diamonds that contain them, because
/// an outer arm still holding jumps fails the purity check until its inner
/// diamond has been converted.
fn find_rewrite(ops: &[Op]) -> Option<Rewrite> {
    for (ix, op) in ops.iter().enumerate() {
        match op {
            Op::JumpIfFalse(else_target) => {
                let else_start = *else_target as usize;
                if else_start < ix + 2 || else_start > ops.len() {
                    continue;
                }
                let Op::Jump(end) = ops[else_start - 1] else {
                    continue;
                };
                let end = end as usize;
                if end < else_start || end > ops.len() {
                    continue;
                }
                let then_arm = &ops[ix + 1..else_start - 1];
                let else_arm = &ops[else_start..end];
                if produces_one_pure_value(then_arm)
                    && produces_one_pure_value(else_arm)
                    && region_is_isolated(ops, &[ix, else_start - 1], ix, end)
                {
                    return Some(Rewrite::Ternary {
                        jif: ix,
                        jump: else_start - 1,
                        end,
                    });
                }
            }
            Op::AndShortCircuit(target) | Op::OrShortCircuit(target) => {
                let end = *target as usize;
                if end <= ix + 1 || end > ops.len() {
                    continue;
                }
                let rhs = &ops[ix + 1..end];
                if produces_one_pure_value(rhs) && region_is_isolated(ops, &[ix], ix, end) {
                    return Some(match op {
                        Op::AndShortCircuit(_) => Rewrite::And { sc: ix, end },
                        _ => Rewrite::Or { sc: ix, end },
                    });
                }
            }
            _ => {}
        }
    }
    None
}

/// Splice one rewrite into the stream and remap every remaining jump
/// target through the old-position → new-position mapping.
fn apply_rewrite(ops: &mut Vec<Op>, rewrite: Rewrite) {
    let old = std::mem::take(ops);
    // `shift(pos)` gives the new index of old position `pos` for positions
    // outside the rewritten span (targets inside it were verified not to
    // exist; the span boundaries map onto the replacement code, which
    // consumes the same stack shape).
    let (new, lo, hi, shift): (Vec<Op>, usize, usize, i64) = match rewrite {
        Rewrite::Ternary { jif, jump, end } => {
            let mut new = Vec::with_capacity(old.len() - 1);
            new.extend_from_slice(&old[..jif]);
            new.extend_from_slice(&old[jif + 1..jump]);
            new.extend_from_slice(&old[jump + 1..end]);
            new.push(Op::Select);
            new.extend_from_slice(&old[end..]);
            // Removed two jumps, added one select: suffix shifts by -1.
            (new, jif, end, -1)
        }
        Rewrite::And { sc, end } => {
            let mut new = Vec::with_capacity(old.len() + 1);
            new.extend_from_slice(&old[..sc]);
            new.extend_from_slice(&old[sc + 1..end]);
            new.push(Op::Const(Value::Bool(false)));
            new.push(Op::Select);
            new.extend_from_slice(&old[end..]);
            (new, sc, end, 1)
        }
        Rewrite::Or { sc, end } => {
            let mut new = Vec::with_capacity(old.len() + 1);
            new.extend_from_slice(&old[..sc]);
            new.push(Op::Const(Value::Bool(true)));
            new.extend_from_slice(&old[sc + 1..end]);
            new.push(Op::Select);
            new.extend_from_slice(&old[end..]);
            (new, sc, end, 1)
        }
    };
    *ops = new;
    for op in ops.iter_mut() {
        let remap = |target: u32| -> u32 {
            let t = target as usize;
            if t <= lo {
                target
            } else {
                debug_assert!(t >= hi, "jump into a converted region");
                (t as i64 + shift) as u32
            }
        };
        match op {
            Op::Jump(t) | Op::JumpIfFalse(t) | Op::AndShortCircuit(t) | Op::OrShortCircuit(t) => {
                *t = remap(*t);
            }
            _ => {}
        }
    }
}

/// Common-subexpression elimination over pure operations.
///
/// Branch-free streams (which is what if-conversion leaves behind for
/// eligible kernels) are value-numbered into a DAG — every operation keyed
/// by its opcode and operand value numbers, constants by their exact bit
/// pattern — and re-emitted with multiply-used interior nodes held in
/// local registers. Streams still containing jumps are left untouched.
pub struct Cse;

impl Pass for Cse {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&self, ops: &mut Vec<Op>) -> bool {
        rebuild_through_dag(ops, true)
    }
}

/// Dead-code elimination: unreferenced locals and discarded statement
/// results vanish, except for computations that could fail (division),
/// which are kept as explicit evaluate-and-discard statements. Same DAG
/// machinery as [`Cse`], without the value numbering; jump-carrying
/// streams are left untouched.
pub struct Dce;

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, ops: &mut Vec<Op>) -> bool {
        rebuild_through_dag(ops, false)
    }
}

/// Value-numbering key of one DAG node. Constants key on their type and
/// the exact bit pattern of their **native** payload ([`const_payload`]):
/// float bits keep `0.0` and `-0.0` (equal under `PartialEq`, distinct
/// under division) apart, and integer constants use their own 64-bit
/// value — keying them through `as_f64` would merge distinct integers
/// above 2^53.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum NodeKey {
    Const(DataType, u64),
    Slot(u16),
    Unary(crate::ast::UnOp, usize),
    Binary(BinOp, usize, usize),
    Call1(crate::ast::MathFn, usize),
    Call2(crate::ast::MathFn, usize, usize),
    ToBool(usize),
    Select(usize, usize, usize),
}

/// Exact 64-bit payload of a constant for value numbering: float bits for
/// floats (f32 widens losslessly), the two's-complement value for
/// integers, 0/1 for booleans. Paired with the constant's [`DataType`] in
/// [`NodeKey::Const`], two constants get one key iff they are the same
/// value of the same type.
fn const_payload(v: Value) -> u64 {
    match v {
        Value::F32(x) => (x as f64).to_bits(),
        Value::F64(x) => x.to_bits(),
        Value::I32(x) => x as i64 as u64,
        Value::I64(x) => x as u64,
        Value::Bool(b) => b as u64,
    }
}

/// One node of the expression DAG: the original instruction (re-emitted
/// verbatim), its operand nodes, and whether its subtree can fail.
struct Node {
    op: Op,
    args: Vec<usize>,
    fallible: bool,
}

/// Rebuild a branch-free stream through the expression DAG: dead code
/// drops out, and with `dedup` set, identical pure subcomputations merge.
/// Returns whether the stream changed; jump-carrying streams are returned
/// unchanged.
fn rebuild_through_dag(ops: &mut Vec<Op>, dedup: bool) -> bool {
    let Some(rebuilt) = dag_rebuild(ops, dedup) else {
        return false;
    };
    if rebuilt == *ops {
        return false;
    }
    *ops = rebuilt;
    true
}

fn dag_rebuild(ops: &[Op], dedup: bool) -> Option<Vec<Op>> {
    let mut nodes: Vec<Node> = Vec::new();
    let mut memo: HashMap<NodeKey, usize> = HashMap::new();
    let mut stack: Vec<usize> = Vec::new();
    let mut locals: Vec<Option<usize>> = vec![None; local_count_of(ops)];
    // Values the original program computed and then discarded (anonymous
    // statements, dead or overwritten stores): candidates for elimination,
    // kept alive below when their subtree can fail.
    let mut discarded: Vec<usize> = Vec::new();

    let mut intern = |nodes: &mut Vec<Node>, op: &Op, args: Vec<usize>| -> usize {
        let key = match (op, args.as_slice()) {
            (Op::Const(v), []) => NodeKey::Const(v.data_type(), const_payload(*v)),
            (Op::Slot(ix), []) => NodeKey::Slot(*ix),
            (Op::Unary(f), &[a]) => NodeKey::Unary(*f, a),
            (Op::Binary(f), &[a, b]) => NodeKey::Binary(*f, a, b),
            (Op::Call1(f), &[a]) => NodeKey::Call1(*f, a),
            (Op::Call2(f), &[a, b]) => NodeKey::Call2(*f, a, b),
            (Op::ToBool, &[a]) => NodeKey::ToBool(a),
            (Op::Select, &[c, t, e]) => NodeKey::Select(c, t, e),
            _ => unreachable!("interned ops are pure"),
        };
        if dedup {
            if let Some(&hit) = memo.get(&key) {
                return hit;
            }
        }
        let fallible =
            matches!(op, Op::Binary(BinOp::Div)) || args.iter().any(|&a| nodes[a].fallible);
        let id = nodes.len();
        nodes.push(Node {
            op: *op,
            args,
            fallible,
        });
        if dedup {
            memo.insert(key, id);
        }
        id
    };

    for op in ops {
        match op {
            Op::Const(_) | Op::Slot(_) => {
                let id = intern(&mut nodes, op, Vec::new());
                stack.push(id);
            }
            Op::Local(ix) => stack.push(locals[*ix as usize]?),
            Op::Store(ix) => {
                let value = stack.pop()?;
                if let Some(previous) = locals[*ix as usize].replace(value) {
                    discarded.push(previous);
                }
            }
            Op::Pop => discarded.push(stack.pop()?),
            Op::Unary(_) | Op::Call1(_) | Op::ToBool => {
                let a = stack.pop()?;
                let id = intern(&mut nodes, op, vec![a]);
                stack.push(id);
            }
            Op::Binary(_) | Op::Call2(_) => {
                let b = stack.pop()?;
                let a = stack.pop()?;
                let id = intern(&mut nodes, op, vec![a, b]);
                stack.push(id);
            }
            Op::Select => {
                let otherwise = stack.pop()?;
                let then = stack.pop()?;
                let cond = stack.pop()?;
                let id = intern(&mut nodes, op, vec![cond, then, otherwise]);
                stack.push(id);
            }
            // Control flow: the DAG form cannot represent it; skip the
            // kernel (if-conversion left these jumps behind on purpose).
            Op::Jump(_) | Op::JumpIfFalse(_) | Op::AndShortCircuit(_) | Op::OrShortCircuit(_) => {
                return None;
            }
        }
    }
    let result = stack.pop()?;
    if !stack.is_empty() {
        return None;
    }
    // Stored-but-never-overwritten locals are discard candidates too.
    discarded.extend(locals.iter().flatten().copied());

    // Keep-alive side statements: discarded subtrees that can fail and are
    // not already executed as part of the result. Order follows discovery
    // order; the language's only error is uniform ("integer division by
    // zero"), so relative error order cannot be observed.
    let mut reachable = vec![false; nodes.len()];
    mark_reachable(&nodes, result, &mut reachable);
    let mut side_roots: Vec<usize> = Vec::new();
    for &node in &discarded {
        if nodes[node].fallible && !reachable[node] && !side_roots.contains(&node) {
            mark_reachable(&nodes, node, &mut reachable);
            side_roots.push(node);
        }
    }

    // Use counts over everything emitted decide which interior nodes get a
    // register (leaves re-emit: a register round-trip costs more than a
    // constant or slot push).
    let mut uses = vec![0usize; nodes.len()];
    for &root in side_roots.iter().chain(std::iter::once(&result)) {
        uses[root] += 1;
        count_uses(&nodes, root, &mut uses);
    }

    let mut out = Vec::with_capacity(ops.len());
    let mut registers: Vec<Option<u16>> = vec![None; nodes.len()];
    let mut next_register: u16 = 0;
    for &root in &side_roots {
        emit_node(
            &nodes,
            &uses,
            root,
            &mut out,
            &mut registers,
            &mut next_register,
        );
        out.push(Op::Pop);
    }
    emit_node(
        &nodes,
        &uses,
        result,
        &mut out,
        &mut registers,
        &mut next_register,
    );
    Some(out)
}

fn mark_reachable(nodes: &[Node], root: usize, reachable: &mut [bool]) {
    if reachable[root] {
        return;
    }
    reachable[root] = true;
    for &arg in &nodes[root].args {
        mark_reachable(nodes, arg, reachable);
    }
}

fn count_uses(nodes: &[Node], root: usize, uses: &mut [usize]) {
    for &arg in &nodes[root].args {
        uses[arg] += 1;
        // Count through an argument only on its first use: later uses read
        // the shared register (or re-push the leaf) without re-evaluating.
        if uses[arg] == 1 {
            count_uses(nodes, arg, uses);
        }
    }
}

fn emit_node(
    nodes: &[Node],
    uses: &[usize],
    node: usize,
    out: &mut Vec<Op>,
    registers: &mut Vec<Option<u16>>,
    next_register: &mut u16,
) {
    if let Some(register) = registers[node] {
        out.push(Op::Local(register));
        return;
    }
    for &arg in &nodes[node].args {
        emit_node(nodes, uses, arg, out, registers, next_register);
    }
    out.push(nodes[node].op);
    let is_leaf = nodes[node].args.is_empty();
    if uses[node] > 1 && !is_leaf {
        let register = *next_register;
        *next_register += 1;
        out.push(Op::Store(register));
        out.push(Op::Local(register));
        registers[node] = Some(register);
    }
}

/// Whether a typed instruction is pure and infallible — safe to evaluate
/// speculatively during typed if-conversion. Unlike the untyped pass
/// ([`pure_infallible`]), **division speculates freely**: a [`TypedOp`]
/// stream exists only for statically float-typed kernels, and float
/// division is IEEE-total (a zero divisor yields ±inf/NaN, never an
/// error), so the one obstacle that forces the untyped pass to keep a
/// diamond — a possibly-integer division in a lazily-skipped arm —
/// cannot occur here.
fn typed_pure_infallible(op: &TypedOp) -> bool {
    match op {
        TypedOp::Const(_)
        | TypedOp::Slot(_)
        | TypedOp::Local(_)
        | TypedOp::Neg { .. }
        | TypedOp::Not
        | TypedOp::Add { .. }
        | TypedOp::Sub { .. }
        | TypedOp::Mul { .. }
        | TypedOp::Div { .. }
        | TypedOp::Compare(_)
        | TypedOp::Call1(..)
        | TypedOp::Call2(..)
        | TypedOp::ToBool
        | TypedOp::Select => true,
        TypedOp::Store(_)
        | TypedOp::Pop
        | TypedOp::Jump(_)
        | TypedOp::JumpIfFalse(_)
        | TypedOp::AndFalse(_)
        | TypedOp::OrTrue(_) => false,
    }
}

/// Operand/result arity of a pure typed instruction (`None` for impure
/// ops); the typed counterpart of [`pure_arity`].
fn typed_pure_arity(op: &TypedOp) -> Option<(usize, usize)> {
    if !typed_pure_infallible(op) {
        return None;
    }
    Some(match op {
        TypedOp::Const(_) | TypedOp::Slot(_) | TypedOp::Local(_) => (0, 1),
        TypedOp::Neg { .. } | TypedOp::Not | TypedOp::Call1(..) | TypedOp::ToBool => (1, 1),
        TypedOp::Add { .. }
        | TypedOp::Sub { .. }
        | TypedOp::Mul { .. }
        | TypedOp::Div { .. }
        | TypedOp::Compare(_)
        | TypedOp::Call2(..) => (2, 1),
        TypedOp::Select => (3, 1),
        _ => unreachable!("pure ops only"),
    })
}

/// Typed analogue of [`produces_one_pure_value`]: a pure, infallible typed
/// region that consumes nothing below its own stack frame and leaves
/// exactly one value.
fn typed_produces_one_pure_value(ops: &[TypedOp]) -> bool {
    let mut depth = 0i64;
    for op in ops {
        let Some((pops, pushes)) = typed_pure_arity(op) else {
            return false;
        };
        depth -= pops as i64;
        if depth < 0 {
            return false;
        }
        depth += pushes as i64;
    }
    depth == 1
}

/// Jump target of a typed control-flow op, if any.
fn typed_jump_target(op: &TypedOp) -> Option<usize> {
    match op {
        TypedOp::Jump(t) | TypedOp::JumpIfFalse(t) | TypedOp::AndFalse(t) | TypedOp::OrTrue(t) => {
            Some(*t as usize)
        }
        _ => None,
    }
}

/// See [`region_is_isolated`]; same rule over the typed stream.
fn typed_region_is_isolated(ops: &[TypedOp], removed: &[usize], lo: usize, hi: usize) -> bool {
    ops.iter().enumerate().all(|(ix, op)| {
        removed.contains(&ix)
            || typed_jump_target(op).is_none_or(|target| target <= lo || target >= hi)
    })
}

/// Find the first typed rewrite, scanning left to right (innermost
/// diamonds first, exactly like [`find_rewrite`]).
fn typed_find_rewrite(ops: &[TypedOp]) -> Option<Rewrite> {
    for (ix, op) in ops.iter().enumerate() {
        match op {
            TypedOp::JumpIfFalse(else_target) => {
                let else_start = *else_target as usize;
                if else_start < ix + 2 || else_start > ops.len() {
                    continue;
                }
                let TypedOp::Jump(end) = ops[else_start - 1] else {
                    continue;
                };
                let end = end as usize;
                if end < else_start || end > ops.len() {
                    continue;
                }
                let then_arm = &ops[ix + 1..else_start - 1];
                let else_arm = &ops[else_start..end];
                if typed_produces_one_pure_value(then_arm)
                    && typed_produces_one_pure_value(else_arm)
                    && typed_region_is_isolated(ops, &[ix, else_start - 1], ix, end)
                {
                    return Some(Rewrite::Ternary {
                        jif: ix,
                        jump: else_start - 1,
                        end,
                    });
                }
            }
            TypedOp::AndFalse(target) | TypedOp::OrTrue(target) => {
                let end = *target as usize;
                if end <= ix + 1 || end > ops.len() {
                    continue;
                }
                let rhs = &ops[ix + 1..end];
                if typed_produces_one_pure_value(rhs)
                    && typed_region_is_isolated(ops, &[ix], ix, end)
                {
                    return Some(match op {
                        TypedOp::AndFalse(_) => Rewrite::And { sc: ix, end },
                        _ => Rewrite::Or { sc: ix, end },
                    });
                }
            }
            _ => {}
        }
    }
    None
}

/// Splice one typed rewrite into the stream and remap remaining jump
/// targets; mirrors [`apply_rewrite`] with `0.0` / `1.0` standing in for
/// the boolean constants (exactly [`crate::Value::as_f64`] of them).
fn typed_apply_rewrite(ops: &mut Vec<TypedOp>, rewrite: Rewrite) {
    let old = std::mem::take(ops);
    let (new, lo, hi, shift): (Vec<TypedOp>, usize, usize, i64) = match rewrite {
        Rewrite::Ternary { jif, jump, end } => {
            let mut new = Vec::with_capacity(old.len() - 1);
            new.extend_from_slice(&old[..jif]);
            new.extend_from_slice(&old[jif + 1..jump]);
            new.extend_from_slice(&old[jump + 1..end]);
            new.push(TypedOp::Select);
            new.extend_from_slice(&old[end..]);
            (new, jif, end, -1)
        }
        Rewrite::And { sc, end } => {
            let mut new = Vec::with_capacity(old.len() + 1);
            new.extend_from_slice(&old[..sc]);
            new.extend_from_slice(&old[sc + 1..end]);
            new.push(TypedOp::Const(0.0));
            new.push(TypedOp::Select);
            new.extend_from_slice(&old[end..]);
            (new, sc, end, 1)
        }
        Rewrite::Or { sc, end } => {
            let mut new = Vec::with_capacity(old.len() + 1);
            new.extend_from_slice(&old[..sc]);
            new.push(TypedOp::Const(1.0));
            new.extend_from_slice(&old[sc + 1..end]);
            new.push(TypedOp::Select);
            new.extend_from_slice(&old[end..]);
            (new, sc, end, 1)
        }
    };
    *ops = new;
    for op in ops.iter_mut() {
        let remap = |target: u32| -> u32 {
            let t = target as usize;
            if t <= lo {
                target
            } else {
                debug_assert!(t >= hi, "jump into a converted region");
                (t as i64 + shift) as u32
            }
        };
        match op {
            TypedOp::Jump(t)
            | TypedOp::JumpIfFalse(t)
            | TypedOp::AndFalse(t)
            | TypedOp::OrTrue(t) => {
                *t = remap(*t);
            }
            _ => {}
        }
    }
}

/// Statically-typed if-conversion: rewrite the jump diamonds of a
/// specialized ([`TypedOp`]) instruction stream into branch-free
/// [`TypedOp::Select`]s, to a fixpoint.
///
/// The untyped [`IfConversion`] pass must keep any diamond whose arm
/// contains a division: on untyped bytecode a division may be the integer
/// variant, whose division-by-zero error lazy evaluation would have
/// skipped. After [`CompiledKernel::specialize`](crate::CompiledKernel::specialize)
/// has proven every instruction float-typed, that obstacle is gone —
/// float division is IEEE-total — so this pass converts the diamonds the
/// untyped pass left behind, unlocking lane batching
/// ([`TypedKernel::supports_lanes`](crate::TypedKernel::supports_lanes))
/// for division-heavy ternaries.
///
/// Bit-identity argument: the arms' instructions are kept verbatim (their
/// static `f32`-rounding flags included), only the jumps around them are
/// removed; both arms evaluate unconditionally — every typed op is total,
/// so the discarded arm can only produce an unobserved value (quiet
/// NaNs/infs included), never an error — and the select returns exactly
/// the value the taken branch computes. Returns whether anything changed.
pub(crate) fn typed_if_convert(ops: &mut Vec<TypedOp>) -> bool {
    let mut changed = false;
    while let Some(rewrite) = typed_find_rewrite(ops) {
        typed_apply_rewrite(ops, rewrite);
        changed = true;
    }
    changed
}

/// Upper bound of the operand-stack depth of a typed instruction stream
/// (linear scan; jumps only ever skip pushes, as in
/// [`crate::compile::max_stack_of`]). Recomputed after typed
/// if-conversion, which deepens the stack by evaluating both arms.
pub(crate) fn typed_max_stack_of(ops: &[TypedOp]) -> usize {
    let mut depth = 0i64;
    let mut max = 0i64;
    for op in ops {
        depth += match op {
            TypedOp::Const(_) | TypedOp::Slot(_) | TypedOp::Local(_) => 1,
            TypedOp::Store(_)
            | TypedOp::Pop
            | TypedOp::Add { .. }
            | TypedOp::Sub { .. }
            | TypedOp::Mul { .. }
            | TypedOp::Div { .. }
            | TypedOp::Compare(_)
            | TypedOp::Call2(..)
            | TypedOp::JumpIfFalse(_) => -1,
            TypedOp::Neg { .. }
            | TypedOp::Not
            | TypedOp::Call1(..)
            | TypedOp::Jump(_)
            | TypedOp::ToBool
            | TypedOp::AndFalse(_)
            | TypedOp::OrTrue(_) => 0,
            TypedOp::Select => -2,
        };
        max = max.max(depth);
    }
    max.max(1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{CompiledKernel, EvalScratch};
    use crate::eval::{Evaluator, MapResolver};
    use crate::parser::parse_program;

    fn optimized(code: &str) -> CompiledKernel {
        CompiledKernel::compile(&parse_program(code).unwrap()).unwrap()
    }

    fn unoptimized(code: &str) -> CompiledKernel {
        CompiledKernel::compile_unoptimized(&parse_program(code).unwrap()).unwrap()
    }

    fn resolver() -> MapResolver {
        let mut r = MapResolver::new();
        r.insert_access("a", &[0], Value::F32(3.5));
        r.insert_access("a", &[-1], Value::F32(1.25));
        r.insert_access("a", &[1], Value::F32(-2.0));
        r.insert_access("b", &[0], Value::F32(0.0));
        r.insert_scalar("dt", Value::F32(0.25));
        r
    }

    fn has_jumps(kernel: &CompiledKernel) -> bool {
        kernel.ops().iter().any(|op| jump_target(op).is_some())
    }

    /// Both compilation modes must agree with the interpreter exactly —
    /// value bits, result type, and error outcomes.
    fn check_all_paths_agree(code: &str) {
        let program = parse_program(code).unwrap();
        let r = resolver();
        let interpreted = Evaluator::new(&r).eval_program(&program);
        for kernel in [
            CompiledKernel::compile(&program).unwrap(),
            CompiledKernel::compile_unoptimized(&program).unwrap(),
        ] {
            let compiled = kernel.eval(&r);
            match (&interpreted, &compiled) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.data_type(), b.data_type(), "type mismatch for `{code}`");
                    assert!(
                        a.as_f64().to_bits() == b.as_f64().to_bits()
                            || (a.as_f64().is_nan() && b.as_f64().is_nan()),
                        "value mismatch for `{code}`: {a:?} vs {b:?}"
                    );
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "error mismatch for `{code}`"),
                (a, b) => panic!("outcome mismatch for `{code}`: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn ternaries_if_convert_to_selects() {
        let kernel = optimized("a[i] > 0.0 ? a[i] : -a[i]");
        assert!(!has_jumps(&kernel));
        assert!(kernel.ops().contains(&Op::Select));
        // The unoptimized lowering keeps the diamond.
        let raw = unoptimized("a[i] > 0.0 ? a[i] : -a[i]");
        assert!(has_jumps(&raw));
        check_all_paths_agree("a[i] > 0.0 ? a[i] : -a[i]");
    }

    #[test]
    fn nested_ternaries_convert_innermost_first() {
        // Three diamonds: one in the condition, one in the then-arm, and
        // the outer ternary itself.
        let code = "(a[i] > 0.0 ? a[i] : -a[i]) > 1.0 ? (b[i] > 0.0 ? 1.5 : 2.5) : dt";
        let kernel = optimized(code);
        assert!(!has_jumps(&kernel));
        assert_eq!(
            kernel.ops().iter().filter(|op| **op == Op::Select).count(),
            3
        );
        check_all_paths_agree(code);
    }

    #[test]
    fn short_circuit_logic_converts_when_rhs_is_pure() {
        for code in [
            "(a[i] > 0.0 && b[i] > 0.0) ? 1.0 : 2.0",
            "(a[i] > 0.0 || b[i] > 0.0) ? 1.0 : 2.0",
            "!(a[i] > 0.0 && a[i-1] > 0.0) + dt",
        ] {
            let kernel = optimized(code);
            assert!(!has_jumps(&kernel), "`{code}` should be branch-free");
            check_all_paths_agree(code);
        }
    }

    #[test]
    fn fallible_arms_keep_their_jumps() {
        // Integer division in the lazily-skipped region must stay lazy:
        // speculating it would turn a clean run into an error.
        for code in [
            "b[i] != 0.0 && 1 / 0 > 0 ? 1.0 : 2.0",
            "a[i] > 0.0 ? a[i] : 1 / 0",
            "a[i] > 0.0 || 1 / 0 > 0 ? 1.0 : 2.0",
        ] {
            let kernel = optimized(code);
            assert!(has_jumps(&kernel), "`{code}` must not speculate");
            check_all_paths_agree(code);
        }
    }

    #[test]
    fn float_division_in_arms_is_not_speculated_either() {
        // Statically we cannot distinguish float from integer division on
        // the untyped bytecode, so any division blocks conversion.
        let kernel = optimized("a[i] > 0.0 ? a[i] / b[i] : a[i]");
        assert!(has_jumps(&kernel));
        check_all_paths_agree("a[i] > 0.0 ? a[i] / b[i] : a[i]");
    }

    #[test]
    fn cse_merges_repeated_subexpressions() {
        let redundant = "(a[i-1] + a[i+1]) * (a[i-1] + a[i+1])";
        let kernel = optimized(redundant);
        // One shared add: slot, slot, add, store, local, local, mul.
        let adds = kernel
            .ops()
            .iter()
            .filter(|op| matches!(op, Op::Binary(BinOp::Add)))
            .count();
        assert_eq!(
            adds,
            1,
            "CSE should share the repeated add:\n{}",
            dump_ops(kernel.ops())
        );
        check_all_paths_agree(redundant);
        // Disabling CSE keeps both adds.
        let config = OptConfig {
            cse: false,
            dce: false,
            ..OptConfig::default()
        };
        let raw =
            CompiledKernel::compile_with(&parse_program(redundant).unwrap(), &config).unwrap();
        let raw_adds = raw
            .ops()
            .iter()
            .filter(|op| matches!(op, Op::Binary(BinOp::Add)))
            .count();
        assert_eq!(raw_adds, 2);
    }

    #[test]
    fn cse_shares_taps_across_select_arms() {
        // After if-conversion both arms are visible to value numbering: the
        // `a[i]` tap appears once even though three sites reference it.
        let code = "a[i] > 0.0 ? a[i] * dt : a[i] * 2.0";
        let kernel = optimized(code);
        assert!(!has_jumps(&kernel));
        check_all_paths_agree(code);
    }

    #[test]
    fn cse_does_not_merge_distinct_constant_bit_patterns() {
        // 0.0 and -0.0 compare equal but divide differently; bit-keyed
        // constants must keep them apart.
        let code = "x = 1.0 / 0.0; y = 1.0 / -0.0; x + y";
        let r = MapResolver::new();
        let program = parse_program(code).unwrap();
        let value = CompiledKernel::compile(&program).unwrap().eval(&r).unwrap();
        // inf + -inf = NaN; merging the constants would give inf + inf.
        assert!(value.as_f64().is_nan());
    }

    #[test]
    fn cse_does_not_merge_large_integer_constants() {
        // 2^53 and 2^53 + 1 are distinct i64 values that collapse to the
        // same f64; keying constants through `as_f64` bits would merge
        // them and collapse the select's arms.
        let code = "a[i] > 0.0 ? 9007199254740993 : 9007199254740992";
        let program = parse_program(code).unwrap();
        let mut r = MapResolver::new();
        r.insert_access("a", &[0], Value::F64(-1.0));
        let interpreted = Evaluator::new(&r).eval_program(&program).unwrap();
        let optimized = CompiledKernel::compile(&program).unwrap().eval(&r).unwrap();
        assert_eq!(interpreted, Value::I64(9007199254740992));
        assert_eq!(optimized, interpreted);
    }

    #[test]
    fn dce_drops_dead_locals_but_keeps_fallible_ones() {
        // A dead pure local vanishes entirely.
        let kernel = optimized("x = a[i-1] + a[i+1]; a[i] * 2.0");
        assert!(!kernel.ops().iter().any(|op| matches!(op, Op::Store(_))));
        assert!(!kernel
            .ops()
            .iter()
            .any(|op| matches!(op, Op::Binary(BinOp::Add))));
        // A dead local that can fail still executes (and still errors).
        check_all_paths_agree("x = 1 / 0; a[i]");
        let kernel = optimized("x = 1 / 0; a[i]");
        assert!(kernel
            .ops()
            .iter()
            .any(|op| matches!(op, Op::Binary(BinOp::Div))));
    }

    #[test]
    fn dce_preserves_live_locals() {
        let code = "x = a[i-1] + a[i+1]; y = x * dt; y - a[i]";
        let kernel = optimized(code);
        assert!(kernel
            .ops()
            .iter()
            .any(|op| matches!(op, Op::Binary(BinOp::Add))));
        check_all_paths_agree(code);
    }

    #[test]
    fn pass_manager_reports_effects_and_dumps() {
        let program = parse_program("a[i] > 0.0 ? a[i] + dt : a[i] - dt").unwrap();
        let config = OptConfig {
            debug: true,
            ..OptConfig::default()
        };
        let (kernel, report) = CompiledKernel::compile_traced(&program, &config).unwrap();
        assert!(!has_jumps(&kernel));
        assert_eq!(report.len(), 3);
        assert_eq!(report[0].name, "if-conversion");
        assert!(report[0].changed);
        assert!(report[0].dump.as_deref().unwrap().contains("Select"));
        // DCE after CSE finds nothing on an already-clean kernel.
        assert_eq!(report[2].name, "dce");
        assert!(!report[2].changed);
    }

    #[test]
    fn disabled_config_is_the_raw_lowering() {
        let program = parse_program("a[i] > 0.0 ? a[i] : -a[i]").unwrap();
        let raw = CompiledKernel::compile_with(&program, &OptConfig::disabled()).unwrap();
        let reference = CompiledKernel::compile_unoptimized(&program).unwrap();
        assert_eq!(raw.ops(), reference.ops());
        assert!(has_jumps(&raw));
    }

    #[test]
    fn optimizer_is_idempotent() {
        for code in [
            "a[i] > 0.0 ? a[i] : -a[i]",
            "(a[i-1] + a[i+1]) * (a[i-1] + a[i+1])",
            "x = a[i] * dt; x + x",
        ] {
            let kernel = optimized(code);
            let mut ops = kernel.ops().to_vec();
            let report = PassManager::standard(&OptConfig::default()).run(&mut ops);
            assert!(
                report.iter().all(|effect| !effect.changed),
                "second pipeline run changed `{code}`"
            );
        }
    }

    #[test]
    fn optimized_kernels_reuse_scratch_without_allocation() {
        let kernel = optimized("t = a[i-1] + a[i+1]; a[i] > 0.0 ? t : -t");
        let r = resolver();
        let mut values = Vec::new();
        for slot in kernel.slots() {
            values.push(
                crate::eval::AccessResolver::resolve(&r, &slot.field, &slot.offsets).unwrap(),
            );
        }
        let mut scratch = EvalScratch::default();
        let first = kernel.eval_slots(&values, &mut scratch).unwrap();
        for _ in 0..50 {
            assert_eq!(kernel.eval_slots(&values, &mut scratch).unwrap(), first);
        }
    }
}
