//! Abstract syntax tree of the stencil code-segment language.

use std::fmt;

/// A parsed code segment: a sequence of assignment statements where the last
/// statement defines the stencil output.
///
/// Single-expression programs (e.g. `"a[i,j,k] + b[i,j,k]"`, the common case
/// in the paper's Lst. 1) are represented as a program with one anonymous
/// output statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Statements in execution order. The final statement's expression is the
    /// output of the stencil.
    pub statements: Vec<Stmt>,
}

impl Program {
    /// The expression producing the stencil output (the last statement).
    pub fn output_expr(&self) -> &Expr {
        &self
            .statements
            .last()
            .expect("a Program always contains at least one statement")
            .value
    }

    /// Names of all local variables assigned before the output statement.
    pub fn local_names(&self) -> Vec<&str> {
        self.statements
            .iter()
            .filter_map(|s| s.name.as_deref())
            .collect()
    }

    /// Visit every expression (statement right-hand sides), in order.
    pub fn exprs(&self) -> impl Iterator<Item = &Expr> {
        self.statements.iter().map(|s| &s.value)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (idx, stmt) in self.statements.iter().enumerate() {
            if idx > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{stmt}")?;
        }
        Ok(())
    }
}

/// A single statement: an optional local-variable binding and an expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Name the value is bound to, or `None` for an anonymous (output)
    /// expression statement.
    pub name: Option<String>,
    /// Right-hand side.
    pub value: Expr,
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.name {
            Some(name) => write!(f, "{name} = {}", self.value),
            None => write!(f, "{}", self.value),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// Whether the operator produces a boolean result.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// Whether the operator is a logical connective (`&&`, `||`).
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// Whether the operator is an arithmetic operation.
    pub fn is_arithmetic(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
    }

    /// Source-level symbol of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::Le => "<=",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation, `-x`.
    Neg,
    /// Logical negation, `!x`.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => f.write_str("-"),
            UnOp::Not => f.write_str("!"),
        }
    }
}

/// Built-in math functions permitted by the restricted language (§II:
/// "standard math functions" are the only external functions allowed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MathFn {
    /// Square root.
    Sqrt,
    /// Absolute value.
    Abs,
    /// Minimum of two values.
    Min,
    /// Maximum of two values.
    Max,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Power, `pow(base, exponent)`.
    Pow,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Tangent.
    Tan,
    /// Round towards negative infinity.
    Floor,
    /// Round towards positive infinity.
    Ceil,
}

impl MathFn {
    /// Number of arguments the function takes.
    pub fn arity(self) -> usize {
        match self {
            MathFn::Min | MathFn::Max | MathFn::Pow => 2,
            _ => 1,
        }
    }

    /// Look up a function by its source-level name.
    pub fn from_name(name: &str) -> Option<MathFn> {
        Some(match name {
            "sqrt" | "sqrtf" => MathFn::Sqrt,
            "abs" | "fabs" | "fabsf" => MathFn::Abs,
            "min" | "fmin" | "fminf" => MathFn::Min,
            "max" | "fmax" | "fmaxf" => MathFn::Max,
            "exp" | "expf" => MathFn::Exp,
            "log" | "logf" => MathFn::Log,
            "pow" | "powf" => MathFn::Pow,
            "sin" | "sinf" => MathFn::Sin,
            "cos" | "cosf" => MathFn::Cos,
            "tan" | "tanf" => MathFn::Tan,
            "floor" | "floorf" => MathFn::Floor,
            "ceil" | "ceilf" => MathFn::Ceil,
            _ => return None,
        })
    }

    /// Canonical source-level name.
    pub fn name(self) -> &'static str {
        match self {
            MathFn::Sqrt => "sqrt",
            MathFn::Abs => "abs",
            MathFn::Min => "min",
            MathFn::Max => "max",
            MathFn::Exp => "exp",
            MathFn::Log => "log",
            MathFn::Pow => "pow",
            MathFn::Sin => "sin",
            MathFn::Cos => "cos",
            MathFn::Tan => "tan",
            MathFn::Floor => "floor",
            MathFn::Ceil => "ceil",
        }
    }
}

impl fmt::Display for MathFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single index expression inside a field access: an iteration variable
/// plus a constant offset (e.g. `i-1` has variable `i` and offset `-1`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Index {
    /// Iteration-space variable name (`i`, `j`, `k`, ...).
    pub var: String,
    /// Constant offset relative to the center.
    pub offset: i64,
}

impl fmt::Display for Index {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset.cmp(&0) {
            std::cmp::Ordering::Equal => write!(f, "{}", self.var),
            std::cmp::Ordering::Greater => write!(f, "{}+{}", self.var, self.offset),
            std::cmp::Ordering::Less => write!(f, "{}{}", self.var, self.offset),
        }
    }
}

/// Expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64),
    /// Floating-point literal.
    FloatLit(f64),
    /// Reference to a local variable defined by an earlier statement, or a
    /// scalar ("0D") input field / named constant.
    Var(String),
    /// Access into an input field at constant offsets, e.g. `u[i-1, j, k]`.
    /// Lower-dimensional fields list only the iteration variables they use
    /// (e.g. `a2[i, k]` inside a 3D iteration space).
    FieldAccess {
        /// Field name.
        field: String,
        /// One index expression per field dimension.
        indices: Vec<Index>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Ternary conditional `cond ? then : otherwise` (data-dependent branches
    /// are explicitly allowed by the paper).
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value if the condition is true.
        then: Box<Expr>,
        /// Value if the condition is false.
        otherwise: Box<Expr>,
    },
    /// Call to one of the built-in math functions.
    Call {
        /// The function being called.
        func: MathFn,
        /// Argument expressions.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Construct a binary expression.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Construct a unary expression.
    pub fn unary(op: UnOp, operand: Expr) -> Expr {
        Expr::Unary {
            op,
            operand: Box::new(operand),
        }
    }

    /// Construct a ternary conditional.
    pub fn ternary(cond: Expr, then: Expr, otherwise: Expr) -> Expr {
        Expr::Ternary {
            cond: Box::new(cond),
            then: Box::new(then),
            otherwise: Box::new(otherwise),
        }
    }

    /// Whether the expression is a literal constant.
    pub fn is_literal(&self) -> bool {
        matches!(self, Expr::IntLit(_) | Expr::FloatLit(_))
    }

    /// Recursively visit this expression and all sub-expressions (pre-order).
    pub fn visit<'a>(&'a self, visitor: &mut impl FnMut(&'a Expr)) {
        visitor(self);
        match self {
            Expr::IntLit(_) | Expr::FloatLit(_) | Expr::Var(_) | Expr::FieldAccess { .. } => {}
            Expr::Unary { operand, .. } => operand.visit(visitor),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit(visitor);
                rhs.visit(visitor);
            }
            Expr::Ternary {
                cond,
                then,
                otherwise,
            } => {
                cond.visit(visitor);
                then.visit(visitor);
                otherwise.visit(visitor);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.visit(visitor);
                }
            }
        }
    }

    /// Count the total number of nodes in the expression tree.
    pub fn node_count(&self) -> usize {
        let mut count = 0;
        self.visit(&mut |_| count += 1);
        count
    }

    fn precedence(&self) -> u8 {
        match self {
            Expr::Ternary { .. } => 1,
            Expr::Binary { op, .. } => match op {
                BinOp::Or => 2,
                BinOp::And => 3,
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge => 4,
                BinOp::Add | BinOp::Sub => 5,
                BinOp::Mul | BinOp::Div => 6,
            },
            Expr::Unary { .. } => 7,
            _ => 8,
        }
    }

    fn fmt_with_parens(&self, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
        let prec = self.precedence();
        if prec < parent_prec {
            write!(f, "(")?;
            self.fmt_inner(f)?;
            write!(f, ")")
        } else {
            self.fmt_inner(f)
        }
    }

    fn fmt_inner(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::IntLit(v) => write!(f, "{v}"),
            Expr::FloatLit(v) => {
                if v.fract() == 0.0 && v.abs() < 1e16 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Expr::Var(name) => write!(f, "{name}"),
            Expr::FieldAccess { field, indices } => {
                write!(f, "{field}[")?;
                for (idx, index) in indices.iter().enumerate() {
                    if idx > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{index}")?;
                }
                write!(f, "]")
            }
            Expr::Unary { op, operand } => {
                write!(f, "{op}")?;
                operand.fmt_with_parens(f, self.precedence() + 1)
            }
            Expr::Binary { op, lhs, rhs } => {
                let prec = self.precedence();
                lhs.fmt_with_parens(f, prec)?;
                write!(f, " {op} ")?;
                // Right operand needs strictly higher precedence to avoid
                // reassociation of subtraction/division on re-parse.
                rhs.fmt_with_parens(f, prec + 1)
            }
            Expr::Ternary {
                cond,
                then,
                otherwise,
            } => {
                let prec = self.precedence();
                cond.fmt_with_parens(f, prec + 1)?;
                write!(f, " ? ")?;
                then.fmt_with_parens(f, prec + 1)?;
                write!(f, " : ")?;
                otherwise.fmt_with_parens(f, prec)
            }
            Expr::Call { func, args } => {
                write!(f, "{func}(")?;
                for (idx, arg) in args.iter().enumerate() {
                    if idx > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{arg}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_with_parens(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(field: &str, vars: &[(&str, i64)]) -> Expr {
        Expr::FieldAccess {
            field: field.into(),
            indices: vars
                .iter()
                .map(|(v, o)| Index {
                    var: (*v).into(),
                    offset: *o,
                })
                .collect(),
        }
    }

    #[test]
    fn display_field_access() {
        let e = access("u", &[("i", -1), ("j", 0), ("k", 2)]);
        assert_eq!(e.to_string(), "u[i-1, j, k+2]");
    }

    #[test]
    fn display_respects_precedence() {
        // (a + b) * c must keep its parentheses.
        let e = Expr::binary(
            BinOp::Mul,
            Expr::binary(BinOp::Add, Expr::Var("a".into()), Expr::Var("b".into())),
            Expr::Var("c".into()),
        );
        assert_eq!(e.to_string(), "(a + b) * c");

        // a + b * c must not add parentheses.
        let e = Expr::binary(
            BinOp::Add,
            Expr::Var("a".into()),
            Expr::binary(BinOp::Mul, Expr::Var("b".into()), Expr::Var("c".into())),
        );
        assert_eq!(e.to_string(), "a + b * c");
    }

    #[test]
    fn display_subtraction_is_not_reassociated() {
        // a - (b - c) needs parentheses to survive a round-trip.
        let e = Expr::binary(
            BinOp::Sub,
            Expr::Var("a".into()),
            Expr::binary(BinOp::Sub, Expr::Var("b".into()), Expr::Var("c".into())),
        );
        assert_eq!(e.to_string(), "a - (b - c)");
    }

    #[test]
    fn node_count_counts_all_nodes() {
        let e = Expr::binary(BinOp::Add, Expr::IntLit(1), Expr::IntLit(2));
        assert_eq!(e.node_count(), 3);
    }

    #[test]
    fn mathfn_lookup() {
        assert_eq!(MathFn::from_name("sqrt"), Some(MathFn::Sqrt));
        assert_eq!(MathFn::from_name("fmaxf"), Some(MathFn::Max));
        assert_eq!(MathFn::from_name("bogus"), None);
        assert_eq!(MathFn::Min.arity(), 2);
        assert_eq!(MathFn::Sqrt.arity(), 1);
    }

    #[test]
    fn program_output_expr_is_last() {
        let prog = Program {
            statements: vec![
                Stmt {
                    name: Some("t".into()),
                    value: Expr::IntLit(1),
                },
                Stmt {
                    name: None,
                    value: Expr::Var("t".into()),
                },
            ],
        };
        assert_eq!(prog.output_expr(), &Expr::Var("t".into()));
        assert_eq!(prog.local_names(), vec!["t"]);
    }
}
