//! The `Stencil` library node and its expansion (Fig. 12).

use stencilflow_program::{BoundarySpec, StencilNode};

/// A domain-specific library node wrapping one stencil operation.
///
/// Library nodes "function similarly to computational nodes, but encode
/// domain-specific information and contain multiple implementation targets,
/// which translate into different subgraphs upon expansion" (§V-A). Here the
/// node carries the parsed stencil and expands into the shift / update /
/// compute structure the paper's Intel-FPGA backend emits.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilLibraryNode {
    /// Node (and produced field) name.
    pub name: String,
    /// The wrapped stencil operation.
    pub stencil: StencilNode,
    /// Boundary specification (duplicated from the stencil for convenience).
    pub boundary: BoundarySpec,
    /// Vectorization width the expansion will use.
    pub vector_width: usize,
}

impl StencilLibraryNode {
    /// Wrap a stencil node.
    pub fn new(stencil: &StencilNode, vector_width: usize) -> Self {
        StencilLibraryNode {
            name: stencil.name.clone(),
            stencil: stencil.clone(),
            boundary: stencil.boundary.clone(),
            vector_width,
        }
    }

    /// Expand the library node into its per-iteration structure.
    pub fn expand(&self, buffer_sizes: &[(String, u64)]) -> ExpandedStencil {
        let mut shift_phases = Vec::new();
        let mut update_phases = Vec::new();
        for (field, size) in buffer_sizes {
            if *size > 0 {
                shift_phases.push(ShiftPhase {
                    field: field.clone(),
                    buffer_elements: *size,
                    shift_by: self.vector_width as u64,
                });
            }
            update_phases.push(UpdatePhase {
                field: field.clone(),
                from_channel: format!("{}_in", field),
            });
        }
        ExpandedStencil {
            name: self.name.clone(),
            shift_phases,
            update_phases,
            compute: ComputePhase {
                code: self.stencil.code.clone(),
                vector_unroll: self.vector_width,
                conditional_write: true,
            },
        }
    }
}

/// The shift phase of an expanded stencil: move every element of a shift
/// register forward by the vector width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShiftPhase {
    /// Buffered field.
    pub field: String,
    /// Shift-register length in elements.
    pub buffer_elements: u64,
    /// Elements shifted per cycle (the vector width).
    pub shift_by: u64,
}

/// The update phase: read new values from the input channel into the front
/// of the shift register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdatePhase {
    /// Buffered field.
    pub field: String,
    /// Channel the new values are read from.
    pub from_channel: String,
}

/// The compute phase: evaluate the stencil expression on all tap points,
/// unrolled over the vector lanes, and conditionally write the output stream
/// (suppressed during the initialization phase).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComputePhase {
    /// Stencil source code.
    pub code: String,
    /// Vector lanes unrolled in the compute phase.
    pub vector_unroll: usize,
    /// Whether the output write is predicated on not being in the
    /// initialization phase.
    pub conditional_write: bool,
}

/// A fully expanded stencil library node: the three phases executed each
/// pipeline iteration (Fig. 12).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpandedStencil {
    /// Stencil name.
    pub name: String,
    /// Shift phases (one per buffered field).
    pub shift_phases: Vec<ShiftPhase>,
    /// Update phases (one per input field).
    pub update_phases: Vec<UpdatePhase>,
    /// The compute phase.
    pub compute: ComputePhase,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> StencilLibraryNode {
        let stencil = StencilNode::parse("lap", "a[i-1,j] + a[i+1,j] + b[i,j]").unwrap();
        StencilLibraryNode::new(&stencil, 4)
    }

    #[test]
    fn expansion_has_three_phase_structure() {
        let lib = node();
        let expanded = lib.expand(&[("a".to_string(), 130), ("b".to_string(), 0)]);
        // Only the buffered field gets a shift phase.
        assert_eq!(expanded.shift_phases.len(), 1);
        assert_eq!(expanded.shift_phases[0].buffer_elements, 130);
        assert_eq!(expanded.shift_phases[0].shift_by, 4);
        // Every field gets an update phase reading its channel.
        assert_eq!(expanded.update_phases.len(), 2);
        assert!(expanded
            .update_phases
            .iter()
            .any(|u| u.from_channel == "a_in"));
        // The compute phase is vector-unrolled and conditionally writes.
        assert_eq!(expanded.compute.vector_unroll, 4);
        assert!(expanded.compute.conditional_write);
        assert!(expanded.compute.code.contains("a[i-1,j]"));
    }

    #[test]
    fn library_node_mirrors_stencil_metadata() {
        let lib = node();
        assert_eq!(lib.name, "lap");
        assert_eq!(lib.vector_width, 4);
        assert!(lib.stencil.reads("a"));
    }
}
