//! A minimal Stateful DataFlow multiGraph (SDFG) representation.
//!
//! Only the features StencilFlow relies on are modelled: a state machine of
//! dataflow states, each holding access nodes (data containers), tasklets
//! (code), streams (FIFO containers), and library nodes, connected by memlets
//! that record the data volume they move. This is deliberately a substrate,
//! not a reimplementation of DaCe.

use crate::library::StencilLibraryNode;
use std::collections::BTreeMap;
use std::fmt;

/// A node inside an SDFG state.
#[derive(Debug, Clone, PartialEq)]
pub enum SdfgNode {
    /// An access node referring to a named data container (array or scalar).
    Access {
        /// Container name.
        data: String,
    },
    /// A stream (FIFO) container access node.
    Stream {
        /// Stream name.
        data: String,
        /// Buffer depth in elements.
        depth: u64,
    },
    /// A tasklet: a unit of computation with explicit inputs and outputs.
    Tasklet {
        /// Tasklet name.
        name: String,
        /// Source code of the tasklet.
        code: String,
        /// Input connector names.
        inputs: Vec<String>,
        /// Output connector names.
        outputs: Vec<String>,
    },
    /// A domain-specific library node (here: always a stencil).
    Library(StencilLibraryNode),
    /// A parametric map/pipeline scope over an iteration domain, marking a
    /// region executed for every point of the domain. The paper's pipeline
    /// scopes additionally carry initialization and draining phases.
    PipelineScope {
        /// Scope name.
        name: String,
        /// Iteration domain, e.g. `[("i", 128), ("j", 128), ("k", 80)]`.
        domain: Vec<(String, usize)>,
        /// Cycles of initialization phase (buffers filling).
        init_phase: u64,
        /// Cycles of draining phase (results still flowing out).
        drain_phase: u64,
    },
}

impl SdfgNode {
    /// A short label for display and tests.
    pub fn label(&self) -> String {
        match self {
            SdfgNode::Access { data } => data.clone(),
            SdfgNode::Stream { data, .. } => format!("stream:{data}"),
            SdfgNode::Tasklet { name, .. } => format!("tasklet:{name}"),
            SdfgNode::Library(lib) => format!("stencil:{}", lib.name),
            SdfgNode::PipelineScope { name, .. } => format!("pipeline:{name}"),
        }
    }
}

/// A memlet: an edge carrying data between two nodes, annotated with the
/// number of elements moved over the whole execution (the data-centric
/// "volume").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memlet {
    /// Source node index.
    pub from: usize,
    /// Destination node index.
    pub to: usize,
    /// Data container the memlet refers to.
    pub data: String,
    /// Total number of elements moved.
    pub volume: u64,
}

/// One dataflow state of an SDFG.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SdfgState {
    /// State name.
    pub name: String,
    /// Nodes of the state.
    pub nodes: Vec<SdfgNode>,
    /// Memlets of the state.
    pub memlets: Vec<Memlet>,
}

impl SdfgState {
    /// Create an empty state.
    pub fn new(name: &str) -> Self {
        SdfgState {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Add a node, returning its index.
    pub fn add_node(&mut self, node: SdfgNode) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Add a memlet between two existing nodes.
    pub fn add_memlet(&mut self, from: usize, to: usize, data: &str, volume: u64) {
        assert!(
            from < self.nodes.len() && to < self.nodes.len(),
            "memlet endpoints must exist"
        );
        self.memlets.push(Memlet {
            from,
            to,
            data: data.to_string(),
            volume,
        });
    }

    /// Find the index of the access node for a container, if present.
    pub fn access_node(&self, data: &str) -> Option<usize> {
        self.nodes
            .iter()
            .position(|n| matches!(n, SdfgNode::Access { data: d } if d == data))
    }

    /// Total data volume moved in this state.
    pub fn total_volume(&self) -> u64 {
        self.memlets.iter().map(|m| m.volume).sum()
    }

    /// Degree (in + out memlets) of a node.
    pub fn degree(&self, node: usize) -> usize {
        self.memlets
            .iter()
            .filter(|m| m.from == node || m.to == node)
            .count()
    }
}

/// A stateful dataflow multigraph: data containers plus a sequence of states.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Sdfg {
    /// Graph name.
    pub name: String,
    /// Declared data containers and their element counts.
    pub containers: BTreeMap<String, u64>,
    /// Dataflow states in control-flow order.
    pub states: Vec<SdfgState>,
}

impl Sdfg {
    /// Create an empty SDFG.
    pub fn new(name: &str) -> Self {
        Sdfg {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Declare a data container with the given number of elements.
    pub fn add_container(&mut self, name: &str, elements: u64) {
        self.containers.insert(name.to_string(), elements);
    }

    /// Add a state and return a mutable reference to it.
    pub fn add_state(&mut self, name: &str) -> &mut SdfgState {
        self.states.push(SdfgState::new(name));
        self.states.last_mut().expect("just pushed")
    }

    /// Iterate over all stencil library nodes in all states.
    pub fn library_nodes(&self) -> impl Iterator<Item = &StencilLibraryNode> {
        self.states.iter().flat_map(|s| {
            s.nodes.iter().filter_map(|n| match n {
                SdfgNode::Library(lib) => Some(lib),
                _ => None,
            })
        })
    }

    /// Total number of nodes across all states.
    pub fn node_count(&self) -> usize {
        self.states.iter().map(|s| s.nodes.len()).sum()
    }

    /// How many states reference a container (used by the fusion legality
    /// check: a container that appears in more than one state cannot be
    /// removed without changing off-chip traffic).
    pub fn container_state_uses(&self, data: &str) -> usize {
        self.states
            .iter()
            .filter(|s| {
                s.nodes
                    .iter()
                    .any(|n| matches!(n, SdfgNode::Access { data: d } if d == data))
            })
            .count()
    }
}

impl fmt::Display for Sdfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sdfg {} ({} containers)",
            self.name,
            self.containers.len()
        )?;
        for state in &self.states {
            writeln!(
                f,
                "  state {}: {} nodes, {} memlets, volume {}",
                state.name,
                state.nodes.len(),
                state.memlets.len(),
                state.total_volume()
            )?;
            for node in &state.nodes {
                writeln!(f, "    {}", node.label())?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_a_small_state() {
        let mut sdfg = Sdfg::new("test");
        sdfg.add_container("A", 100);
        sdfg.add_container("B", 100);
        let state = sdfg.add_state("main");
        let a = state.add_node(SdfgNode::Access { data: "A".into() });
        let t = state.add_node(SdfgNode::Tasklet {
            name: "double".into(),
            code: "b = a * 2".into(),
            inputs: vec!["a".into()],
            outputs: vec!["b".into()],
        });
        let b = state.add_node(SdfgNode::Access { data: "B".into() });
        state.add_memlet(a, t, "A", 100);
        state.add_memlet(t, b, "B", 100);
        assert_eq!(sdfg.node_count(), 3);
        assert_eq!(sdfg.states[0].total_volume(), 200);
        assert_eq!(sdfg.states[0].access_node("A"), Some(0));
        assert_eq!(sdfg.states[0].degree(t), 2);
        assert_eq!(sdfg.container_state_uses("A"), 1);
        assert!(sdfg.to_string().contains("tasklet:double"));
    }

    #[test]
    #[should_panic(expected = "memlet endpoints must exist")]
    fn memlets_require_existing_nodes() {
        let mut state = SdfgState::new("s");
        state.add_memlet(0, 1, "x", 1);
    }
}
