//! Lowering stencil programs to SDFGs and extracting them back
//! ("stencil extraction", Fig. 13).

use crate::library::StencilLibraryNode;
use crate::sdfg::{Sdfg, SdfgNode};
use stencilflow_expr::DataType;
use stencilflow_program::{ProgramError, Result, StencilProgram, StencilProgramBuilder};

/// Lower a stencil program to an SDFG with one `Stencil` library node per DAG
/// node, access nodes for off-chip containers, and a pipeline scope recording
/// the shared iteration domain.
pub fn lower_to_sdfg(program: &StencilProgram) -> Sdfg {
    let space = program.space();
    let cells = space.num_cells() as u64;
    let mut sdfg = Sdfg::new(program.name());
    for (name, decl) in program.inputs() {
        let elements: u64 = decl
            .dims
            .iter()
            .map(|d| {
                space
                    .dim_index(d)
                    .map(|ix| space.shape[ix] as u64)
                    .unwrap_or(1)
            })
            .product::<u64>()
            .max(1);
        sdfg.add_container(name, elements);
    }
    for stencil in program.stencils() {
        sdfg.add_container(&stencil.name, cells);
    }

    let width = program.vectorization();
    let state = sdfg.add_state("dataflow");
    // The global pipeline scope over the iteration domain.
    state.add_node(SdfgNode::PipelineScope {
        name: "iteration_space".to_string(),
        domain: space
            .dims
            .iter()
            .zip(space.shape.iter())
            .map(|(d, &s)| (d.clone(), s))
            .collect(),
        init_phase: 0,
        drain_phase: 0,
    });

    // Access nodes for inputs.
    for (name, _) in program.inputs() {
        state.add_node(SdfgNode::Access {
            data: name.to_string(),
        });
    }
    // Library nodes for stencils.
    for stencil in program.stencils() {
        state.add_node(SdfgNode::Library(StencilLibraryNode::new(stencil, width)));
    }
    // Access nodes for outputs, plus memlets.
    for output in program.outputs() {
        state.add_node(SdfgNode::Access {
            data: output.to_string(),
        });
    }
    // Memlets: producer (access or library) -> consuming library node.
    let node_index = |state: &crate::sdfg::SdfgState, label: &str| {
        state.nodes.iter().position(|n| n.label() == label)
    };
    let state = sdfg.states.last_mut().expect("state added above");
    let mut memlets = Vec::new();
    for stencil in program.stencils() {
        let to = node_index(state, &format!("stencil:{}", stencil.name)).expect("library node");
        for (field, info) in stencil.accesses.iter() {
            let from = if program.is_input(field) {
                node_index(state, field)
            } else {
                node_index(state, &format!("stencil:{field}"))
            };
            if let Some(from) = from {
                memlets.push((
                    from,
                    to,
                    field.to_string(),
                    cells * info.access_count() as u64,
                ));
            }
        }
    }
    for output in program.outputs() {
        let from = node_index(state, &format!("stencil:{output}")).expect("library node");
        let to = node_index(state, output).expect("output access node");
        memlets.push((from, to, output.clone(), cells));
    }
    for (from, to, data, volume) in memlets {
        state.add_memlet(from, to, &data, volume);
    }
    sdfg
}

/// Extract a stencil program from an SDFG containing stencil library nodes
/// (the canonicalization pass used to ingest external programs, §VII).
///
/// # Errors
///
/// Returns an error if the SDFG has no pipeline scope describing the
/// iteration domain, or if the reconstructed program fails validation.
pub fn extract_program(sdfg: &Sdfg) -> Result<StencilProgram> {
    // Find the iteration domain.
    let domain = sdfg
        .states
        .iter()
        .flat_map(|s| s.nodes.iter())
        .find_map(|n| match n {
            SdfgNode::PipelineScope { domain, .. } => Some(domain.clone()),
            _ => None,
        })
        .ok_or_else(|| ProgramError::Invalid {
            message: "SDFG has no pipeline scope describing the iteration domain".into(),
        })?;
    let shape: Vec<usize> = domain.iter().map(|(_, s)| *s).collect();
    let dims: Vec<&str> = domain.iter().map(|(d, _)| d.as_str()).collect();

    let libraries: Vec<&StencilLibraryNode> = sdfg.library_nodes().collect();
    let stencil_names: std::collections::BTreeSet<&str> =
        libraries.iter().map(|l| l.name.as_str()).collect();

    let mut builder = StencilProgramBuilder::new(&sdfg.name, &shape).dims(&dims);
    if let Some(first) = libraries.first() {
        builder = builder.vectorization(first.vector_width.max(1));
    }

    // Inputs: every field accessed by a library node that is not itself
    // produced by a library node. Dimensions are recovered from the access
    // index variables.
    let mut declared: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for lib in &libraries {
        for (field, info) in lib.stencil.accesses.iter() {
            if stencil_names.contains(field) || declared.contains(field) {
                continue;
            }
            let field_dims: Vec<&str> = info.index_vars.iter().map(String::as_str).collect();
            builder = builder.input(field, DataType::Float32, &field_dims);
            declared.insert(field.to_string());
        }
    }

    // Stencils with their boundary conditions.
    for lib in &libraries {
        builder = builder.stencil(&lib.name, &lib.stencil.code);
        for (field, condition) in &lib.boundary.per_field {
            builder = builder.boundary(&lib.name, field, *condition);
        }
        if lib.boundary.shrink {
            builder = builder.shrink(&lib.name);
        }
        builder = builder.output_type(&lib.name, lib.stencil.output_type);
    }

    // Outputs: access nodes that receive data from a library node.
    for state in &sdfg.states {
        for memlet in &state.memlets {
            let from_is_library = matches!(state.nodes[memlet.from], SdfgNode::Library(_));
            if let SdfgNode::Access { data } = &state.nodes[memlet.to] {
                if from_is_library {
                    builder = builder.output(data);
                }
            }
        }
    }

    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilflow_workloads::{horizontal_diffusion, listing1, HorizontalDiffusionSpec};

    #[test]
    fn lowering_produces_expected_node_counts() {
        let program = listing1();
        let sdfg = lower_to_sdfg(&program);
        // 1 pipeline scope + 3 inputs + 5 stencils + 1 output access node.
        assert_eq!(sdfg.node_count(), 10);
        assert_eq!(sdfg.library_nodes().count(), 5);
        // Memlet volumes are per-access: b3 reads b1 twice.
        let cells = program.space().num_cells() as u64;
        let state = &sdfg.states[0];
        let b1 = state
            .nodes
            .iter()
            .position(|n| n.label() == "stencil:b1")
            .unwrap();
        let b3 = state
            .nodes
            .iter()
            .position(|n| n.label() == "stencil:b3")
            .unwrap();
        let volume = state
            .memlets
            .iter()
            .find(|m| m.from == b1 && m.to == b3)
            .unwrap()
            .volume;
        assert_eq!(volume, 2 * cells);
    }

    #[test]
    fn extraction_round_trips_metadata() {
        let program = horizontal_diffusion(&HorizontalDiffusionSpec::small());
        let sdfg = lower_to_sdfg(&program);
        let extracted = extract_program(&sdfg).unwrap();
        assert_eq!(extracted.stencil_count(), program.stencil_count());
        assert_eq!(extracted.space().shape, program.space().shape);
        assert_eq!(extracted.inputs().count(), program.inputs().count());
        let mut expected: Vec<_> = program.outputs().to_vec();
        let mut actual: Vec<_> = extracted.outputs().to_vec();
        expected.sort();
        actual.sort();
        assert_eq!(expected, actual);
    }

    #[test]
    fn extraction_fails_without_pipeline_scope() {
        let sdfg = Sdfg::new("empty");
        assert!(extract_program(&sdfg).is_err());
    }
}
