//! Program and SDFG transformations (§V-A/B, Fig. 10).
//!
//! * `StencilFusion` (domain-specific): schedule two dependent stencils as
//!   one stencil with multiple statements. On spatial architectures this does
//!   not change the (already fully parallel) schedule; it shortens the
//!   critical path by merging initialization phases, merges internal buffers,
//!   coarsens stencil nodes (improving the useful-logic ratio), and exposes
//!   common subexpressions (§V-B).
//! * `NestDim` (domain-specific): subsume an outer parametric dimension into
//!   the stencil nodes.
//! * `MapFission` (general-purpose): split a parallel subgraph scope into
//!   multiple scopes with temporary storage in between.

use crate::sdfg::{Sdfg, SdfgNode};
use stencilflow_expr::ast::{Expr, Program, Stmt};
use stencilflow_program::{Result, StencilNode, StencilProgram};

/// Result of the aggressive fusion pass.
#[derive(Debug, Clone)]
pub struct FusionOutcome {
    /// The fused program.
    pub program: StencilProgram,
    /// `(producer, consumer)` pairs fused, in application order.
    pub fused: Vec<(String, String)>,
}

/// Check the fusion legality conditions of §V-B for fusing `producer` into
/// `consumer` and return the fused program if they hold:
///
/// 1. both stencils operate on the same iteration space (always true within
///    one program);
/// 2. they have the same boundary-condition behaviour;
/// 3. they are connected by one data container with degree 2, i.e. the
///    producer's output is consumed *only* by this consumer;
/// 4. the container is not used elsewhere (not a program output), so removing
///    it adds no off-chip traffic;
/// 5. (implementation restriction) the consumer reads the producer only at
///    the center offset, so no recomputation is introduced.
///
/// # Errors
///
/// Returns an error only if re-validation of the fused program fails, which
/// would indicate a bug in the rewriting.
pub fn try_fuse(
    program: &StencilProgram,
    producer: &str,
    consumer: &str,
) -> Result<Option<StencilProgram>> {
    let Some(prod) = program.stencil(producer) else {
        return Ok(None);
    };
    let Some(cons) = program.stencil(consumer) else {
        return Ok(None);
    };
    // Condition 4: producer must not be a program output.
    if program.outputs().iter().any(|o| o == producer) {
        return Ok(None);
    }
    // Condition 3: the producer's output is consumed only by `consumer`.
    let consumers: Vec<&StencilNode> = program.stencils().filter(|s| s.reads(producer)).collect();
    if consumers.len() != 1 || consumers[0].name != consumer {
        return Ok(None);
    }
    // Condition 2: identical boundary behaviour.
    if !prod.boundary.behaviour_eq(&cons.boundary) {
        return Ok(None);
    }
    // Condition 5: center-only accesses to the producer.
    let Some(info) = cons.accesses.get(producer) else {
        return Ok(None);
    };
    if !info.offsets.iter().all(|o| o.iter().all(|&x| x == 0)) {
        return Ok(None);
    }

    // Build the fused code: producer statements (locals renamed), a binding
    // for the producer's output value, then the consumer statements with
    // center accesses to the producer replaced by that binding.
    let bound_name = format!("__fused_{producer}");
    let mut statements: Vec<Stmt> = Vec::new();
    let prefix = |name: &str| format!("__{producer}_{name}");
    for (idx, stmt) in prod.program.statements.iter().enumerate() {
        let value = rename_locals(&stmt.value, &prod.program, &prefix);
        let name = if idx + 1 == prod.program.statements.len() {
            Some(bound_name.clone())
        } else {
            stmt.name.as_ref().map(|n| prefix(n))
        };
        statements.push(Stmt { name, value });
    }
    for stmt in cons.program.statements.iter() {
        let replaced = replace_center_access(&stmt.value, producer, &bound_name);
        statements.push(Stmt {
            name: stmt.name.clone(),
            value: replaced,
        });
    }
    let fused_ast = Program { statements };
    let fused_code = fused_ast.to_string();

    // Assemble the new program.
    let mut fused = program.clone();
    fused.remove_stencil(producer);
    let mut node = StencilNode::parse(consumer, &fused_code)?;
    // Merge boundary specifications (identical by condition 2, minus the now
    // internal producer field).
    let mut boundary = cons.boundary.clone();
    for (field, condition) in &prod.boundary.per_field {
        boundary
            .per_field
            .entry(field.clone())
            .or_insert(*condition);
    }
    boundary.per_field.remove(producer);
    node.boundary = boundary;
    node.output_type = cons.output_type;
    fused.insert_stencil(node);
    fused.validate()?;
    Ok(Some(fused))
}

fn rename_locals(expr: &Expr, program: &Program, prefix: &impl Fn(&str) -> String) -> Expr {
    let locals: std::collections::BTreeSet<&str> = program.local_names().into_iter().collect();
    map_expr(expr, &|e| match e {
        Expr::Var(name) if locals.contains(name.as_str()) => Some(Expr::Var(prefix(name))),
        _ => None,
    })
}

fn replace_center_access(expr: &Expr, field: &str, with_var: &str) -> Expr {
    map_expr(expr, &|e| match e {
        Expr::FieldAccess { field: f, indices }
            if f == field && indices.iter().all(|ix| ix.offset == 0) =>
        {
            Some(Expr::Var(with_var.to_string()))
        }
        _ => None,
    })
}

/// Structurally rewrite an expression bottom-up: `f` returns `Some` to
/// replace a node, `None` to keep it (children already rewritten).
fn map_expr(expr: &Expr, f: &impl Fn(&Expr) -> Option<Expr>) -> Expr {
    let rebuilt = match expr {
        Expr::IntLit(_) | Expr::FloatLit(_) | Expr::Var(_) | Expr::FieldAccess { .. } => {
            expr.clone()
        }
        Expr::Unary { op, operand } => Expr::Unary {
            op: *op,
            operand: Box::new(map_expr(operand, f)),
        },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(map_expr(lhs, f)),
            rhs: Box::new(map_expr(rhs, f)),
        },
        Expr::Ternary {
            cond,
            then,
            otherwise,
        } => Expr::Ternary {
            cond: Box::new(map_expr(cond, f)),
            then: Box::new(map_expr(then, f)),
            otherwise: Box::new(map_expr(otherwise, f)),
        },
        Expr::Call { func, args } => Expr::Call {
            func: *func,
            args: args.iter().map(|a| map_expr(a, f)).collect(),
        },
    };
    f(&rebuilt).unwrap_or(rebuilt)
}

/// Apply stencil fusion greedily until no more pairs can be fused (the
/// "aggressive stencil fusion" the paper applies to its input programs).
///
/// # Errors
///
/// Propagates re-validation errors from [`try_fuse`].
pub fn fuse_all(program: &StencilProgram) -> Result<StencilProgram> {
    Ok(fuse_all_with_report(program)?.program)
}

/// Like [`fuse_all`], additionally reporting which pairs were fused.
///
/// # Errors
///
/// Propagates re-validation errors from [`try_fuse`].
pub fn fuse_all_with_report(program: &StencilProgram) -> Result<FusionOutcome> {
    let mut current = program.clone();
    let mut fused_pairs = Vec::new();
    loop {
        let mut fused_this_round = None;
        let order = current.topological_stencils()?;
        'search: for producer in &order {
            for consumer in &order {
                if producer == consumer {
                    continue;
                }
                if current
                    .stencil(consumer)
                    .map(|c| c.reads(producer))
                    .unwrap_or(false)
                {
                    if let Some(next) = try_fuse(&current, producer, consumer)? {
                        fused_pairs.push((producer.clone(), consumer.clone()));
                        fused_this_round = Some(next);
                        break 'search;
                    }
                }
            }
        }
        match fused_this_round {
            Some(next) => current = next,
            None => break,
        }
    }
    Ok(FusionOutcome {
        program: current,
        fused: fused_pairs,
    })
}

/// `NestDim`: subsume the named outer dimension into every stencil library
/// node of the SDFG (removing it from the pipeline scope). Returns the number
/// of library nodes affected.
pub fn nest_dim(sdfg: &mut Sdfg, dim: &str) -> usize {
    let mut affected = 0;
    for state in &mut sdfg.states {
        for node in &mut state.nodes {
            match node {
                SdfgNode::PipelineScope { domain, .. } => {
                    domain.retain(|(d, _)| d != dim);
                }
                SdfgNode::Library(_) => affected += 1,
                _ => {}
            }
        }
    }
    affected
}

/// `MapFission`: split a state containing several library nodes into one
/// state per library node, introducing the producing container as temporary
/// storage between them. Returns the number of states after fission.
pub fn map_fission(sdfg: &mut Sdfg, state_index: usize) -> usize {
    if state_index >= sdfg.states.len() {
        return sdfg.states.len();
    }
    let original = sdfg.states[state_index].clone();
    let libraries: Vec<SdfgNode> = original
        .nodes
        .iter()
        .filter(|n| matches!(n, SdfgNode::Library(_)))
        .cloned()
        .collect();
    if libraries.len() <= 1 {
        return sdfg.states.len();
    }
    let scope = original
        .nodes
        .iter()
        .find(|n| matches!(n, SdfgNode::PipelineScope { .. }))
        .cloned();
    let mut new_states = Vec::new();
    for (idx, library) in libraries.into_iter().enumerate() {
        let mut state = crate::sdfg::SdfgState::new(&format!("{}_{idx}", original.name));
        if let Some(scope) = &scope {
            state.add_node(scope.clone());
        }
        if let SdfgNode::Library(lib) = &library {
            // Temporary containers: one access node per consumed field and
            // one for the produced field.
            let mut producers = Vec::new();
            for (field, info) in lib.stencil.accesses.iter() {
                let node = state.add_node(SdfgNode::Access {
                    data: field.to_string(),
                });
                producers.push((node, field.to_string(), info.access_count() as u64));
            }
            let library_index = state.add_node(library.clone());
            for (node, field, accesses) in producers {
                state.add_memlet(node, library_index, &field, accesses);
            }
            let out = state.add_node(SdfgNode::Access {
                data: lib.name.clone(),
            });
            state.add_memlet(library_index, out, &lib.name, 1);
        }
        new_states.push(state);
    }
    sdfg.states.splice(state_index..=state_index, new_states);
    sdfg.states.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_to_sdfg;
    use stencilflow_expr::DataType;
    use stencilflow_program::{BoundaryCondition, StencilProgramBuilder};
    use stencilflow_reference::{generate_inputs, ReferenceExecutor};

    fn chainable() -> StencilProgram {
        StencilProgramBuilder::new("p", &[8, 8])
            .input("a", DataType::Float32, &["i", "j"])
            .stencil("double", "a[i,j] * 2.0")
            .stencil("plus1", "double[i,j] + 1.0")
            .output("plus1")
            .build()
            .unwrap()
    }

    #[test]
    fn fuses_center_only_chains() {
        let program = chainable();
        let fused = try_fuse(&program, "double", "plus1").unwrap().unwrap();
        assert_eq!(fused.stencil_count(), 1);
        let node = fused.stencil("plus1").unwrap();
        assert!(node.reads("a"));
        assert!(!node.reads("double"));
        // Semantics preserved.
        let inputs = generate_inputs(&program, 4);
        let before = ReferenceExecutor::new().run(&program, &inputs).unwrap();
        let after = ReferenceExecutor::new().run(&fused, &inputs).unwrap();
        assert!(before
            .field("plus1")
            .unwrap()
            .approx_eq(after.field("plus1").unwrap(), 1e-6));
    }

    #[test]
    fn refuses_fusion_when_producer_has_multiple_consumers() {
        let program = StencilProgramBuilder::new("p", &[8, 8])
            .input("a", DataType::Float32, &["i", "j"])
            .stencil("shared", "a[i,j] * 2.0")
            .stencil("c1", "shared[i,j] + 1.0")
            .stencil("c2", "shared[i,j] - 1.0")
            .stencil("out", "c1[i,j] + c2[i,j]")
            .output("out")
            .build()
            .unwrap();
        assert!(try_fuse(&program, "shared", "c1").unwrap().is_none());
    }

    #[test]
    fn refuses_fusion_across_offsets_or_outputs_or_boundaries() {
        // Offset access.
        let offset = StencilProgramBuilder::new("p", &[8, 8])
            .input("a", DataType::Float32, &["i", "j"])
            .stencil("b", "a[i,j] * 2.0")
            .stencil("c", "b[i-1,j] + b[i+1,j]")
            .output("c")
            .build()
            .unwrap();
        assert!(try_fuse(&offset, "b", "c").unwrap().is_none());
        // Producer is a program output.
        let output = StencilProgramBuilder::new("p", &[8, 8])
            .input("a", DataType::Float32, &["i", "j"])
            .stencil("b", "a[i,j] * 2.0")
            .stencil("c", "b[i,j] + 1.0")
            .output("b")
            .output("c")
            .build()
            .unwrap();
        assert!(try_fuse(&output, "b", "c").unwrap().is_none());
        // Mismatched boundary behaviour.
        let boundary = StencilProgramBuilder::new("p", &[8, 8])
            .input("a", DataType::Float32, &["i", "j"])
            .stencil("b", "a[i-1,j] + a[i+1,j]")
            .boundary("b", "a", BoundaryCondition::Copy)
            .stencil("c", "b[i,j] + 1.0")
            .output("c")
            .build()
            .unwrap();
        assert!(try_fuse(&boundary, "b", "c").unwrap().is_none());
    }

    #[test]
    fn fuse_all_reports_pairs_and_reduces_latency_proxy() {
        let program = chainable();
        let outcome = fuse_all_with_report(&program).unwrap();
        assert_eq!(outcome.fused.len(), 1);
        assert_eq!(outcome.program.stencil_count(), 1);
    }

    #[test]
    fn nest_dim_removes_dimension_from_scope() {
        let program = chainable();
        let mut sdfg = lower_to_sdfg(&program);
        let affected = nest_dim(&mut sdfg, "j");
        assert_eq!(affected, 2);
        let scope_dims: Vec<String> = sdfg
            .states
            .iter()
            .flat_map(|s| s.nodes.iter())
            .find_map(|n| match n {
                SdfgNode::PipelineScope { domain, .. } => {
                    Some(domain.iter().map(|(d, _)| d.clone()).collect())
                }
                _ => None,
            })
            .unwrap();
        assert_eq!(scope_dims, vec!["i".to_string()]);
    }

    #[test]
    fn map_fission_splits_states() {
        let program = chainable();
        let mut sdfg = lower_to_sdfg(&program);
        assert_eq!(sdfg.states.len(), 1);
        let states = map_fission(&mut sdfg, 0);
        assert_eq!(states, 2);
        assert_eq!(sdfg.states.len(), 2);
        // Each new state holds exactly one library node.
        for state in &sdfg.states {
            let libs = state
                .nodes
                .iter()
                .filter(|n| matches!(n, SdfgNode::Library(_)))
                .count();
            assert_eq!(libs, 1);
        }
    }
}
