//! Data-centric dataflow IR substrate and program transformations.
//!
//! The paper lowers stencil programs onto the DaCe framework's Stateful
//! DataFlow multiGraph (SDFG) representation and extends it with a `Stencil`
//! library node, pipeline scopes, and three transformations (§V). DaCe itself
//! is a large Python framework that is not available here, so this crate
//! provides the subset of that substrate the StencilFlow stack actually
//! needs:
//!
//! * [`sdfg`] — a small SDFG-like IR: states containing access nodes,
//!   tasklets, streams, and library nodes, connected by memlets that carry
//!   explicit data-movement volumes (the data-centric property).
//! * [`library`] — the `Stencil` library node and its expansion into the
//!   shift / update / compute structure of Fig. 12.
//! * [`lower`] — lowering a `StencilProgram` into an SDFG with one stencil
//!   library node per DAG node, and extracting a `StencilProgram` back out of
//!   such an SDFG (the "stencil extraction" canonicalization of Fig. 13).
//! * [`transforms`] — `StencilFusion` (§V-B, with the paper's legality
//!   heuristics), `NestDim`, and `MapFission`.

#![forbid(unsafe_code)]

pub mod library;
pub mod lower;
pub mod sdfg;
pub mod transforms;

pub use library::{ExpandedStencil, StencilLibraryNode};
pub use lower::{extract_program, lower_to_sdfg};
pub use sdfg::{Memlet, Sdfg, SdfgNode, SdfgState};
pub use transforms::{fuse_all, map_fission, nest_dim, try_fuse, FusionOutcome};

#[cfg(test)]
mod tests {
    use super::*;
    use stencilflow_reference::{generate_inputs, ReferenceExecutor};
    use stencilflow_workloads::{horizontal_diffusion, HorizontalDiffusionSpec};

    #[test]
    fn lower_and_extract_round_trip() {
        let program = stencilflow_workloads::listing1();
        let sdfg = lower_to_sdfg(&program);
        assert_eq!(sdfg.library_nodes().count(), program.stencil_count());
        let extracted = extract_program(&sdfg).unwrap();
        assert_eq!(extracted.stencil_count(), program.stencil_count());
        assert_eq!(extracted.outputs(), program.outputs());
    }

    #[test]
    fn aggressive_fusion_preserves_horizontal_diffusion_semantics() {
        let program = horizontal_diffusion(&HorizontalDiffusionSpec::small());
        let fused = fuse_all(&program).unwrap();
        assert!(fused.stencil_count() < program.stencil_count());
        // Functional equivalence on the program outputs.
        let inputs = generate_inputs(&program, 9);
        let reference = ReferenceExecutor::new().run(&program, &inputs).unwrap();
        let fused_result = ReferenceExecutor::new().run(&fused, &inputs).unwrap();
        for output in program.outputs() {
            let a = reference.field(output).unwrap();
            let b = fused_result.field(output).unwrap();
            assert!(
                a.approx_eq(b, 1e-4),
                "output {output} diverges after fusion"
            );
        }
    }
}
