//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a small, dependency-free implementation of the subset of the proptest API
//! its test suites use: composable random-value [`Strategy`]s (`prop_map`,
//! `prop_recursive`, `prop_oneof!`, tuples, ranges, `collection::vec`), the
//! [`proptest!`] test macro with `#![proptest_config(...)]`, and the
//! `prop_assert*` macros. Test cases are generated from a deterministic
//! per-test seed, so failures are reproducible; there is **no shrinking** —
//! a failing case is reported with its case number as-is.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;
use std::rc::Rc;

/// Deterministic split-mix-64 random number generator used for test-case
/// generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// RNG seeded for case `case` of the test named `name` (deterministic
    /// across runs and platforms).
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let mut seed = 0xcbf29ce484222325u64; // FNV offset basis
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100000001b3);
        }
        TestRng(seed ^ ((case as u64) << 32 | 0x9e3779b97f4a7c15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Error carried by a failing property (`prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Construct a failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration, settable with `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `recurse` wraps the strategy for depth
    /// `d` into the strategy for depth `d + 1`; generation picks a random
    /// depth up to `depth`. (`desired_size` and `expected_branch_size` are
    /// accepted for API compatibility and ignored.)
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        Recursive {
            base: self.boxed(),
            depth,
            recurse: Rc::new(move |inner| recurse(inner).boxed()),
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    depth: u32,
    // The nested boxed-closure type is inherent to a self-applying
    // strategy transformer; an alias would only move the nesting.
    #[allow(clippy::type_complexity)]
    recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let levels = rng.below(self.depth as u64 + 1) as u32;
        let mut strategy = self.base.clone();
        for _ in 0..levels {
            strategy = (self.recurse)(strategy);
        }
        strategy.generate(rng)
    }
}

/// Uniform choice between same-valued strategies (the `prop_oneof!` macro).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// A strategy that always produces a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                // The macro reuses its type parameters (`A`, `B`, ...) as
                // binding names, which is the standard tuple-impl idiom.
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{BoxedStrategy, Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with random length in `len` and elements drawn
    /// from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::generate(&self.len, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector strategy: length uniform in `len`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Boxed variant used when storing heterogeneous strategies.
    pub fn vec_boxed<T: 'static>(
        element: BoxedStrategy<T>,
        len: Range<usize>,
    ) -> VecStrategy<BoxedStrategy<T>> {
        VecStrategy { element, len }
    }
}

/// The proptest prelude: everything the test files need.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

/// Choose uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert a condition inside a property, failing the case (not panicking
/// directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
}

/// Define property tests: each `#[test] fn name(binding in strategy, ...)`
/// runs the body for a number of deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            Ok(())
                        })();
                    if let Err(error) = outcome {
                        panic!(
                            "property `{}` failed on case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            error
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let a: Vec<u64> = {
            let mut rng = TestRng::for_case("t", 1);
            (0..4).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::for_case("t", 1);
            (0..4).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut rng = TestRng::for_case("t", 2);
        assert_ne!(a[0], rng.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(-3i64..7), &mut rng);
            assert!((-3..7).contains(&v));
            let u = Strategy::generate(&(2usize..5), &mut rng);
            assert!((2..5).contains(&u));
        }
    }

    #[test]
    fn maps_unions_and_vecs_compose() {
        let strategy = prop_oneof![
            (0i64..10).prop_map(|v| v * 2),
            (0i64..10).prop_map(|v| v * 2 + 1),
        ];
        let mut rng = TestRng::for_case("compose", 0);
        let values = collection::vec(strategy, 5..6).generate(&mut rng);
        assert_eq!(values.len(), 5);
        for v in values {
            assert!((0..20).contains(&v));
        }
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Debug)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn count(t: &Tree) -> usize {
            match t {
                Tree::Leaf(v) => usize::from(*v >= 0),
                Tree::Node(children) => 1 + children.iter().map(count).sum::<usize>(),
            }
        }
        let strategy = (0i64..5)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = TestRng::for_case("recursion", 0);
        for _ in 0..100 {
            assert!(count(&strategy.generate(&mut rng)) < 10_000);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn proptest_macro_runs_cases(v in 0i64..100) {
            prop_assert!(v >= 0);
            prop_assert!((0..100).contains(&v), "out of range: {v}");
            prop_assert_eq!(v, v);
            prop_assert_ne!(v, v + 1);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failing_property_panics_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn always_fails(v in 0i64..10) {
                prop_assert!(v > 100);
            }
        }
        always_fails();
    }
}
