//! Shard-link sizing diagnostics: the fig04 deadlock-freedom argument
//! applied to a concrete [`ShardLinkSpec`], reported as diagnostics.
//!
//! * **SF0301** (error) — the configured link capacity cannot hold one
//!   halo frame: the exchange deadlocks (the runtime watchdog would trip
//!   and degrade; this predicts it before anything runs).
//! * **SF0302** (error) — no feasible slab partition exists at all for
//!   the requested geometry.
//! * **SF0303** (info) — the planner had to shrink the requested window
//!   or shard count to make the slab partition feasible.

use crate::diag::{Diagnostic, Severity};
use stencilflow_core::{analyze_shard_links, CoreError, ShardLinkRequirement, ShardLinkSpec};
use stencilflow_program::StencilProgram;

/// Statically size the halo links of `spec` and report findings. Returns
/// the requirement alongside the diagnostics so callers (and tests) can
/// compare the predicted numbers against the runtime watchdog's report.
pub fn analyze_sharding(
    program: &StencilProgram,
    spec: &ShardLinkSpec,
) -> (Option<ShardLinkRequirement>, Vec<Diagnostic>) {
    let mut diagnostics = Vec::new();
    let requirement = match analyze_shard_links(program, spec) {
        Ok(requirement) => requirement,
        Err(CoreError::Partition { message }) => {
            diagnostics.push(Diagnostic::new(
                Severity::Error,
                "SF0302",
                program.name().to_string(),
                format!("no feasible slab partition: {message}"),
            ));
            return (None, diagnostics);
        }
        Err(e) => {
            diagnostics.push(Diagnostic::new(
                Severity::Error,
                "SF0302",
                program.name().to_string(),
                format!("shard-link analysis failed: {e}"),
            ));
            return (None, diagnostics);
        }
    };
    if requirement.deadlock_predicted {
        diagnostics.push(Diagnostic::new(
            Severity::Error,
            "SF0301",
            format!("{}/halo-links", program.name()),
            format!(
                "undersized halo link: configured capacity {} words cannot hold one \
                 frame of {} words ({} header + {} payload = radius {} x window {} x \
                 {} row words); the exchange deadlocks",
                requirement.configured_capacity_words,
                requirement.required_frame_words,
                stencilflow_core::FRAME_HEADER_WORDS,
                requirement.payload_words,
                requirement.radius,
                requirement.window,
                requirement.row_words,
            ),
        ));
    }
    if requirement.shards < spec.shards.max(1) || requirement.window < spec.window.max(1) {
        diagnostics.push(Diagnostic::new(
            Severity::Info,
            "SF0303",
            format!("{}/halo-links", program.name()),
            format!(
                "requested geometry is infeasible; planner shrinks to {} shard(s) \
                 with window {}",
                requirement.shards, requirement.window
            ),
        ));
    }
    (Some(requirement), diagnostics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilflow_expr::DataType;
    use stencilflow_program::StencilProgramBuilder;

    fn chain(extent: usize) -> StencilProgram {
        StencilProgramBuilder::new("chain", &[extent, 4])
            .dims(&["i", "j"])
            .input("a", DataType::Float64, &["i", "j"])
            .stencil("b", "0.5 * (a[i-1,j] + a[i+1,j])")
            .output_type("b", DataType::Float64)
            .output("b")
            .build()
            .unwrap()
    }

    #[test]
    fn default_capacity_is_clean() {
        let (req, diags) = analyze_sharding(&chain(32), &ShardLinkSpec::new(4, 1, 4));
        assert!(diags.is_empty(), "{diags:?}");
        assert!(!req.unwrap().deadlock_predicted);
    }

    #[test]
    fn undersized_capacity_reports_sf0301() {
        let spec = ShardLinkSpec::new(4, 1, 4).with_link_capacity_words(4);
        let (req, diags) = analyze_sharding(&chain(32), &spec);
        assert!(req.unwrap().deadlock_predicted);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "SF0301");
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn shrunk_geometry_reports_sf0303_info() {
        let (req, diags) = analyze_sharding(&chain(8), &ShardLinkSpec::new(4, 4, 8));
        let req = req.unwrap();
        assert!(req.window < 4 || req.shards < 4);
        assert!(diags.iter().any(|d| d.code == "SF0303"));
        assert!(diags.iter().all(|d| d.severity < Severity::Error));
    }
}
