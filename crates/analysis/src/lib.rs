//! Static verification layer for the StencilFlow reproduction.
//!
//! The paper's central promise is that a stencil program's behavior is
//! decidable *before* it runs: buffer sizes, deadlock freedom, and
//! performance all fall out of static analysis (§III–IV). This crate
//! extends that discipline from the dataflow graph down to the expression
//! bytecode and up to the sharded runtime:
//!
//! * [`analyze_program`] — structural, type, and kernel checks over a
//!   [`StencilProgram`](stencilflow_program::StencilProgram): cycle
//!   detection with a named path, dead-stencil and unused-input liveness,
//!   narrowing-edge and footprint-vs-extent checks, and per-stencil
//!   bytecode verification (via `stencilflow_expr::verify`) including the
//!   error-reachability judgment.
//! * [`analyze_sharding`] — the fig04 buffer-sizing argument applied to
//!   halo-exchange links: predicts the undersized-link deadlock the
//!   runtime watchdog can only detect live.
//! * [`Diagnostic`]/[`AnalysisReport`] — the structured findings both
//!   emit: severity, stable `SFxxxx` code, location, rendered text, JSON.
//!
//! The `analyze` binary (in `stencilflow-bench`) sweeps every workload
//! through both analyzers and gates CI on error-severity findings. See
//! `docs/analysis.md` for the diagnostic code registry.

#![forbid(unsafe_code)]

mod diag;
mod program;
mod shard;

pub use diag::{AnalysisReport, Diagnostic, Severity};
pub use program::analyze_program;
pub use shard::analyze_sharding;
