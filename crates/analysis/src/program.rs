//! The program/DAG analyzer: structural and type checks over a
//! [`StencilProgram`] that predict runtime misbehavior before anything
//! executes.
//!
//! Checks and their codes:
//!
//! * **SF0201** (error) — the stencil graph is cyclic; the message names
//!   the cycle path.
//! * **SF0202** (warning) — a stencil computes values no output depends
//!   on (dead compute that still costs area/time in a mapped design).
//! * **SF0203** (warning) — a declared input no live stencil reads.
//! * **SF0204** (warning) — an edge silently narrows: a stencil's
//!   declared output type is narrower than the promoted type of the
//!   fields it reads, so every value crossing the edge is rounded.
//! * **SF0205** (error) — an access footprint reaches at least as far as
//!   the iteration-space extent in some dimension, so every cell of the
//!   sweep reads out of domain.
//! * **SF0206** (warning) — a runtime error (integer division by zero,
//!   the language's only one) is reachable in a stencil kernel, judged by
//!   the bytecode verifier with the stencil's real slot types.
//! * **SF0207** (error) — a stencil expression fails to compile to
//!   bytecode at all.
//! * **SF0208** (info) — a stencil is not eligible for Tier-4 native
//!   (JIT) execution and will run on the fused tier instead: its kernel
//!   does not specialize to a typed stream, the typed stream keeps
//!   control flow after optimization, or its output type is not a float
//!   type. Informational: the fallback is transparent and bit-identical.
//! * **SF0101–SF0109** (error) — the compiled kernel fails bytecode
//!   verification; the code is the verifier's own.

use crate::diag::{AnalysisReport, Diagnostic, Severity};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use stencilflow_expr::{verify_kernel, CompiledKernel, DataType};
use stencilflow_program::{AccessFootprints, StencilProgram};

/// Run every program-level check on `program`.
pub fn analyze_program(program: &StencilProgram) -> AnalysisReport {
    let mut report = AnalysisReport {
        program: program.name().to_string(),
        diagnostics: Vec::new(),
    };
    check_cycles(program, &mut report);
    check_liveness(program, &mut report);
    check_edge_types(program, &mut report);
    check_footprints(program, &mut report);
    check_kernels(program, &mut report);
    report
}

fn location(program: &StencilProgram, node: &str) -> String {
    format!("{}/{}", program.name(), node)
}

/// Stencil-to-stencil adjacency: `reads[s]` is every *stencil* field `s`
/// reads (inputs are excluded — they cannot take part in a cycle).
fn stencil_reads(program: &StencilProgram) -> BTreeMap<String, Vec<String>> {
    program
        .stencils()
        .map(|stencil| {
            let reads = stencil
                .read_fields()
                .into_iter()
                .filter(|f| program.is_stencil(f))
                .map(str::to_string)
                .collect();
            (stencil.name.clone(), reads)
        })
        .collect()
}

/// SF0201: cycle detection with a named path, by iterative DFS with an
/// explicit color map (white/gray/black). Only the first cycle found is
/// reported — one is enough to make every downstream analysis undefined.
fn check_cycles(program: &StencilProgram, report: &mut AnalysisReport) {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let reads = stencil_reads(program);
    let mut color: BTreeMap<&str, Color> =
        reads.keys().map(|k| (k.as_str(), Color::White)).collect();

    for start in reads.keys() {
        if color[start.as_str()] != Color::White {
            continue;
        }
        // Stack of (node, next-neighbor-index); `path` mirrors the gray
        // chain so a back edge can name the whole cycle.
        let mut stack: Vec<(&str, usize)> = vec![(start.as_str(), 0)];
        color.insert(start.as_str(), Color::Gray);
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let neighbors = &reads[node];
            if *next >= neighbors.len() {
                color.insert(node, Color::Black);
                stack.pop();
                continue;
            }
            let neighbor = neighbors[*next].as_str();
            *next += 1;
            match color[neighbor] {
                Color::White => {
                    color.insert(neighbor, Color::Gray);
                    stack.push((neighbor, 0));
                }
                Color::Gray => {
                    let from = stack.iter().position(|&(n, _)| n == neighbor).unwrap_or(0);
                    let mut path: Vec<&str> = stack[from..].iter().map(|&(n, _)| n).collect();
                    path.push(neighbor);
                    report.diagnostics.push(Diagnostic::new(
                        Severity::Error,
                        "SF0201",
                        location(program, neighbor),
                        format!("stencil graph is cyclic: {}", path.join(" -> ")),
                    ));
                    return;
                }
                Color::Black => {}
            }
        }
    }
}

/// SF0202 + SF0203: reverse reachability from the outputs. A stencil no
/// output depends on is dead; an input no live stencil reads is unused.
fn check_liveness(program: &StencilProgram, report: &mut AnalysisReport) {
    let reads = stencil_reads(program);
    let mut live: BTreeSet<&str> = BTreeSet::new();
    let mut queue: VecDeque<&str> = program
        .outputs()
        .iter()
        .map(String::as_str)
        .filter(|o| reads.contains_key(*o))
        .collect();
    while let Some(node) = queue.pop_front() {
        if !live.insert(node) {
            continue;
        }
        for upstream in &reads[node] {
            if !live.contains(upstream.as_str()) {
                queue.push_back(upstream);
            }
        }
    }
    for stencil in program.stencils() {
        if !live.contains(stencil.name.as_str()) {
            report.diagnostics.push(Diagnostic::new(
                Severity::Warning,
                "SF0202",
                location(program, &stencil.name),
                "dead stencil: no output depends on it".to_string(),
            ));
        }
    }
    for (input, _) in program.inputs() {
        let read_by_live = program
            .stencils()
            .any(|s| live.contains(s.name.as_str()) && s.reads(input));
        if !read_by_live {
            report.diagnostics.push(Diagnostic::new(
                Severity::Warning,
                "SF0203",
                location(program, input),
                "unused input: no live stencil reads it".to_string(),
            ));
        }
    }
}

/// SF0204: an edge narrows when a stencil's declared output type cannot
/// represent the promoted type of what it reads — every value leaving the
/// stencil is rounded. The natural type is the promotion over the *field*
/// types read (never over literals, which are always parsed wide).
fn check_edge_types(program: &StencilProgram, report: &mut AnalysisReport) {
    for stencil in program.stencils() {
        let natural = stencil
            .read_fields()
            .into_iter()
            .filter_map(|f| program.field_type(f))
            .reduce(DataType::promote);
        let Some(natural) = natural else { continue };
        let declared = stencil.output_type;
        if natural.promote(declared) != declared {
            report.diagnostics.push(Diagnostic::new(
                Severity::Warning,
                "SF0204",
                location(program, &stencil.name),
                format!(
                    "narrowing edge: reads promote to {natural:?} but the output is \
                     declared {declared:?}, so every value is rounded"
                ),
            ));
        }
    }
}

/// SF0205: a footprint that reaches at least the iteration-space extent
/// in some dimension makes *every* access in that dimension touch a
/// boundary cell — the stencil computes from boundary padding alone.
fn check_footprints(program: &StencilProgram, report: &mut AnalysisReport) {
    let footprints = AccessFootprints::of_program(program);
    let shape = &program.space().shape;
    for (consumer, field, extents) in footprints.edges() {
        for (dim, &(lo, hi)) in extents.iter().enumerate() {
            let reach = lo.unsigned_abs().max(hi.unsigned_abs()) as usize;
            if reach >= shape[dim] {
                report.diagnostics.push(Diagnostic::new(
                    Severity::Error,
                    "SF0205",
                    format!("{}/{} -> {}", program.name(), field, consumer),
                    format!(
                        "footprint [{lo}, {hi}] exceeds the extent {} of dimension \
                         {dim}: every access is out of domain",
                        shape[dim]
                    ),
                ));
            }
        }
    }
}

/// SF0206/SF0207/SF0208 + SF01xx: compile every stencil kernel and run the
/// bytecode verifier over it with the stencil's real slot types — the
/// same judgment the runtime makes at bind time, but across the whole
/// program at once.
fn check_kernels(program: &StencilProgram, report: &mut AnalysisReport) {
    for stencil in program.stencils() {
        let kernel = match CompiledKernel::compile(&stencil.program) {
            Ok(kernel) => kernel,
            Err(e) => {
                report.diagnostics.push(Diagnostic::new(
                    Severity::Error,
                    "SF0207",
                    location(program, &stencil.name),
                    format!("stencil expression does not compile: {e}"),
                ));
                continue;
            }
        };
        let slot_types: Option<Vec<DataType>> = kernel
            .slots()
            .iter()
            .map(|slot| program.field_type(&slot.field))
            .collect();
        match verify_kernel(&kernel, slot_types.as_deref()) {
            Err(e) => {
                report.diagnostics.push(Diagnostic::new(
                    Severity::Error,
                    e.code(),
                    location(program, &stencil.name),
                    format!("kernel fails bytecode verification: {e}"),
                ));
            }
            Ok(judgment) if !judgment.infallible => {
                report.diagnostics.push(Diagnostic::new(
                    Severity::Warning,
                    "SF0206",
                    location(program, &stencil.name),
                    "a runtime error is reachable: integer division whose divisor \
                     may be zero"
                        .to_string(),
                ));
            }
            Ok(_) => {}
        }
        check_native_eligibility(
            program,
            &stencil.name,
            &kernel,
            slot_types.as_deref(),
            report,
        );
    }
}

/// SF0208: Tier-4 (native JIT) eligibility, judged the way the runtime
/// judges it — the kernel must specialize with the stencil's real slot
/// types to a typed stream that the typed verifier proves branch-free
/// ([`TypedJudgment::supports_native`]), and the stencil's output type
/// must be a float type (the native sweep stores raw doubles; only float
/// outputs round-trip losslessly). Ineligible stencils run on the fused
/// tier, transparently and bit-identically, so this is informational.
///
/// [`TypedJudgment::supports_native`]: stencilflow_expr::TypedJudgment::supports_native
fn check_native_eligibility(
    program: &StencilProgram,
    stencil: &str,
    kernel: &CompiledKernel,
    slot_types: Option<&[DataType]>,
    report: &mut AnalysisReport,
) {
    let reason = native_ineligibility(program, stencil, kernel, slot_types);
    if let Some(reason) = reason {
        report.diagnostics.push(Diagnostic::new(
            Severity::Info,
            "SF0208",
            location(program, stencil),
            format!("not eligible for Tier-4 native execution: {reason}"),
        ));
    }
}

/// The reason a stencil kernel cannot take the Tier-4 native path, if any.
fn native_ineligibility(
    program: &StencilProgram,
    stencil: &str,
    kernel: &CompiledKernel,
    slot_types: Option<&[DataType]>,
) -> Option<String> {
    let Some(types) = slot_types else {
        return Some("a read field has no resolvable element type".to_string());
    };
    let Some(typed) = kernel.specialize(types) else {
        return Some(
            "the kernel does not specialize to a typed stream with the \
             stencil's slot types"
                .to_string(),
        );
    };
    match stencilflow_expr::verify_typed(&typed) {
        Err(e) => return Some(format!("typed verification fails: {e}")),
        Ok(judgment) if !judgment.supports_native() => {
            return Some("the typed stream keeps control flow after optimization".to_string());
        }
        Ok(_) => {}
    }
    match program.field_type(stencil) {
        Some(DataType::Float32 | DataType::Float64) => None,
        Some(other) => Some(format!("output type {other} is not a float type")),
        None => Some("the stencil has no resolvable output type".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilflow_program::StencilProgramBuilder;

    fn clean_program() -> StencilProgram {
        StencilProgramBuilder::new("clean", &[16, 16])
            .dims(&["i", "j"])
            .input("a", DataType::Float32, &["i", "j"])
            .stencil("b", "0.25 * (a[i-1,j] + a[i+1,j] + a[i,j-1] + a[i,j+1])")
            .output("b")
            .build()
            .unwrap()
    }

    #[test]
    fn clean_program_is_clean() {
        let report = analyze_program(&clean_program());
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn liveness_flags_dead_stencil_and_unused_input() {
        let program = StencilProgramBuilder::new("deadwood", &[16, 16])
            .dims(&["i", "j"])
            .input("a", DataType::Float32, &["i", "j"])
            .input("ghost", DataType::Float32, &["i", "j"])
            .stencil("b", "a[i,j] + 1.0")
            .stencil("orphan", "ghost[i,j] * 2.0")
            .output("b")
            .build()
            .unwrap();
        let report = analyze_program(&program);
        assert_eq!(report.with_code("SF0202").len(), 1);
        assert_eq!(report.with_code("SF0203").len(), 1);
        assert!(report.is_clean(), "liveness findings are warnings");
    }

    #[test]
    fn narrowing_edge_is_flagged() {
        let program = StencilProgramBuilder::new("narrow", &[16, 16])
            .dims(&["i", "j"])
            .input("a", DataType::Float64, &["i", "j"])
            .stencil("b", "a[i,j] + 1.0") // defaults to Float32 output
            .output("b")
            .build()
            .unwrap();
        let report = analyze_program(&program);
        assert_eq!(report.with_code("SF0204").len(), 1);
    }

    #[test]
    fn integer_division_is_error_reachable() {
        let program = StencilProgramBuilder::new("intdiv", &[16, 16])
            .dims(&["i", "j"])
            .input("a", DataType::Int32, &["i", "j"])
            .input("b", DataType::Int32, &["i", "j"])
            .stencil("q", "a[i,j] / b[i,j]")
            .output_type("q", DataType::Int32)
            .output("q")
            .build()
            .unwrap();
        let report = analyze_program(&program);
        assert_eq!(report.with_code("SF0206").len(), 1);
    }
}
