//! Structured diagnostics: severity, stable code, location, message.
//!
//! Every check in this crate reports through [`Diagnostic`] so tooling can
//! gate on severity and pin exact codes in golden tests. Codes are stable
//! identifiers, never reused:
//!
//! * `SF01xx` — bytecode verifier (`stencilflow_expr::verify`), surfaced
//!   here when a stencil kernel fails verification;
//! * `SF02xx` — program/DAG analyzer ([`crate::analyze_program`]);
//! * `SF03xx` — shard-link sizing ([`crate::analyze_sharding`]).

use stencilflow_json::Json;

/// How bad a diagnostic is. `Error` means the program (or configuration)
/// is wrong and will misbehave at runtime; `Warning` flags something
/// legal but suspicious; `Info` records a judgment worth surfacing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Info,
    Warning,
    Error,
}

impl Severity {
    /// Lowercase label used in rendered text and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding of a static check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub severity: Severity,
    /// Stable code (`SF0201`, ...) golden tests pin against.
    pub code: &'static str,
    /// Where in the program the finding anchors: a stencil, input, edge
    /// (`a -> b`), or the program itself.
    pub location: String,
    pub message: String,
}

impl Diagnostic {
    pub fn new(
        severity: Severity,
        code: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity,
            code,
            location: location.into(),
            message: message.into(),
        }
    }

    /// Render as a single compiler-style line:
    /// `error[SF0201] listing1/b0: ...`.
    pub fn render(&self) -> String {
        format!(
            "{}[{}] {}: {}",
            self.severity.label(),
            self.code,
            self.location,
            self.message
        )
    }

    /// JSON form used by the `analyze` binary's artifact.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            (
                "severity".into(),
                Json::String(self.severity.label().into()),
            ),
            ("code".into(), Json::String(self.code.into())),
            ("location".into(), Json::String(self.location.clone())),
            ("message".into(), Json::String(self.message.clone())),
        ])
    }
}

/// Everything the analyzer found about one program (plus, optionally, one
/// shard configuration of it).
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// Name of the analyzed program.
    pub program: String,
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Worst severity present, or `None` for a clean report.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// True when no diagnostic reaches `Error` severity (warnings and
    /// infos do not gate).
    pub fn is_clean(&self) -> bool {
        self.max_severity() < Some(Severity::Error)
    }

    /// All diagnostics carrying `code`.
    pub fn with_code(&self, code: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// JSON form used by the `analyze` binary's artifact.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("program".into(), Json::String(self.program.clone())),
            ("clean".into(), Json::Bool(self.is_clean())),
            (
                "diagnostics".into(),
                Json::Array(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_renders() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        let d = Diagnostic::new(Severity::Error, "SF0201", "p/b", "cycle");
        assert_eq!(d.render(), "error[SF0201] p/b: cycle");
    }

    #[test]
    fn report_gates_on_errors_only() {
        let mut report = AnalysisReport {
            program: "p".into(),
            diagnostics: vec![Diagnostic::new(
                Severity::Warning,
                "SF0204",
                "p/b",
                "narrow",
            )],
        };
        assert!(report.is_clean());
        report
            .diagnostics
            .push(Diagnostic::new(Severity::Error, "SF0205", "p/b", "oob"));
        assert!(!report.is_clean());
        assert_eq!(report.with_code("SF0205").len(), 1);
        let json = report.to_json();
        assert_eq!(json.get("clean").and_then(Json::as_bool), Some(false));
    }
}
