//! Analyzer goldens: broken programs must produce exactly the pinned
//! diagnostic codes, so the registry in `docs/analysis.md` stays an API.
//!
//! The builder's own validation rejects cyclic programs, so the cyclic
//! golden is built valid and then broken through the program-transform
//! mutators — the same route a buggy optimization pass would take.

use stencilflow_analysis::{analyze_program, analyze_sharding, Severity};
use stencilflow_core::ShardLinkSpec;
use stencilflow_expr::DataType;
use stencilflow_program::{StencilNode, StencilProgram, StencilProgramBuilder};

fn codes(report: &stencilflow_analysis::AnalysisReport) -> Vec<&'static str> {
    report.diagnostics.iter().map(|d| d.code).collect()
}

#[test]
fn cyclic_dag_reports_sf0201_with_named_path() {
    let mut program = StencilProgramBuilder::new("cyclic", &[16, 16])
        .dims(&["i", "j"])
        .input("a", DataType::Float32, &["i", "j"])
        .stencil("b", "a[i,j] + 1.0")
        .stencil("c", "b[i,j] * 2.0")
        .output("c")
        .build()
        .unwrap();
    // Break it the way a buggy transform would: rewrite `b` to read its
    // own consumer.
    program.insert_stencil(StencilNode::parse("b", "a[i,j] + c[i,j]").unwrap());
    let report = analyze_program(&program);
    let cycles = report.with_code("SF0201");
    assert_eq!(cycles.len(), 1);
    assert_eq!(cycles[0].severity, Severity::Error);
    assert!(!report.is_clean());
    // The message names the actual cycle, not just its existence.
    let message = &cycles[0].message;
    assert!(
        message.contains("b -> c -> b") || message.contains("c -> b -> c"),
        "cycle path missing from: {message}"
    );
}

#[test]
fn type_mismatched_edge_reports_sf0204() {
    let program = StencilProgramBuilder::new("narrowing", &[16, 16])
        .dims(&["i", "j"])
        .input("wide", DataType::Float64, &["i", "j"])
        .stencil("out", "wide[i,j] * 0.5")
        .output("out") // output_type defaults to Float32: narrower than Float64
        .build()
        .unwrap();
    let report = analyze_program(&program);
    assert_eq!(codes(&report), vec!["SF0204"]);
    assert_eq!(report.diagnostics[0].severity, Severity::Warning);
    assert_eq!(report.diagnostics[0].location, "narrowing/out");
    assert!(report.is_clean(), "narrowing is a warning, not an error");
}

#[test]
fn dead_stencil_and_unused_input_report_sf0202_sf0203() {
    let program = StencilProgramBuilder::new("deadwood", &[16, 16])
        .dims(&["i", "j"])
        .input("a", DataType::Float32, &["i", "j"])
        .input("ghost", DataType::Float32, &["i", "j"])
        .stencil("live", "a[i,j] + 1.0")
        .stencil("orphan", "ghost[i,j] * 2.0")
        .output("live")
        .build()
        .unwrap();
    let report = analyze_program(&program);
    let mut found = codes(&report);
    found.sort_unstable();
    assert_eq!(found, vec!["SF0202", "SF0203"]);
    assert_eq!(report.with_code("SF0202")[0].location, "deadwood/orphan");
    assert_eq!(report.with_code("SF0203")[0].location, "deadwood/ghost");
}

#[test]
fn oversized_footprint_reports_sf0205() {
    let program = StencilProgramBuilder::new("oob", &[4, 4])
        .dims(&["i", "j"])
        .input("a", DataType::Float32, &["i", "j"])
        .stencil("b", "a[i-5,j] + a[i,j]")
        .output("b")
        .build()
        .unwrap();
    let report = analyze_program(&program);
    let oob = report.with_code("SF0205");
    assert_eq!(oob.len(), 1);
    assert_eq!(oob[0].severity, Severity::Error);
    assert!(!report.is_clean());
}

#[test]
fn reachable_integer_division_reports_sf0206() {
    let program = StencilProgramBuilder::new("intdiv", &[8, 8])
        .dims(&["i", "j"])
        .input("n", DataType::Int64, &["i", "j"])
        .input("d", DataType::Int64, &["i", "j"])
        .stencil("q", "n[i,j] / d[i,j]")
        .output_type("q", DataType::Int64)
        .output("q")
        .build()
        .unwrap();
    let report = analyze_program(&program);
    // Integer kernels also never specialize to a typed stream, so the
    // Tier-4 eligibility check reports alongside the division warning.
    assert_eq!(codes(&report), vec!["SF0206", "SF0208"]);
    // Float division cannot fail, so the same shape in f64 is clean.
    let float_program = StencilProgramBuilder::new("floatdiv", &[8, 8])
        .dims(&["i", "j"])
        .input("n", DataType::Float64, &["i", "j"])
        .input("d", DataType::Float64, &["i", "j"])
        .stencil("q", "n[i,j] / d[i,j]")
        .output_type("q", DataType::Float64)
        .output("q")
        .build()
        .unwrap();
    assert!(analyze_program(&float_program).diagnostics.is_empty());
}

#[test]
fn native_ineligible_stencils_report_sf0208() {
    // An int32 output on a float kernel: fused-tier eligible, but Tier-4
    // stays off (the native sweep stores raw doubles).
    let program = StencilProgramBuilder::new("intout", &[8, 8])
        .dims(&["i", "j"])
        .input("a", DataType::Float32, &["i", "j"])
        .stencil("s", "a[i-1,j] + a[i+1,j]")
        .output_type("s", DataType::Int32)
        .output("s")
        .build()
        .unwrap();
    let report = analyze_program(&program);
    let native = report.with_code("SF0208");
    assert_eq!(native.len(), 1);
    assert_eq!(native[0].severity, Severity::Info);
    assert_eq!(native[0].location, "intout/s");
    assert!(native[0].message.contains("not a float type"));
    assert!(report.is_clean(), "SF0208 is informational");

    // A select mixing an f32 slot with the f64 literal never specializes:
    // no typed stream, so neither the typed tiers nor Tier-4 apply.
    let unspecializable = StencilProgramBuilder::new("mixsel", &[8, 8])
        .dims(&["i", "j"])
        .input("a", DataType::Float32, &["i", "j"])
        .stencil("s", "a[i,j] < 0.5 ? a[i,j] : 0.5")
        .output("s")
        .build()
        .unwrap();
    let report = analyze_program(&unspecializable);
    let native = report.with_code("SF0208");
    assert_eq!(native.len(), 1);
    assert!(native[0].message.contains("does not specialize"));

    // Every Tier-4-eligible kernel stays silent.
    let clean = StencilProgramBuilder::new("clean", &[8, 8])
        .dims(&["i", "j"])
        .input("a", DataType::Float32, &["i", "j"])
        .stencil("s", "a[i-1,j] + a[i+1,j] * 0.5")
        .output("s")
        .build()
        .unwrap();
    assert!(analyze_program(&clean).with_code("SF0208").is_empty());
}

fn halo_chain() -> StencilProgram {
    StencilProgramBuilder::new("halo-chain", &[24, 10, 8])
        .input("f0", DataType::Float64, &["i", "j", "k"])
        .stencil("f1", "(f0[i-1,j,k] + f0[i+1,j,k] + f0[i,j,k]) * 0.333333")
        .output_type("f1", DataType::Float64)
        .output("f1")
        .build()
        .unwrap()
}

#[test]
fn undersized_shard_link_reports_sf0301() {
    let spec = ShardLinkSpec::new(4, 1, 4)
        .with_link_capacity_words(4)
        .with_feedback_pairs(1);
    let (requirement, diags) = analyze_sharding(&halo_chain(), &spec);
    let requirement = requirement.unwrap();
    assert!(requirement.deadlock_predicted);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, "SF0301");
    assert_eq!(diags[0].severity, Severity::Error);
    // The message carries the sizing math, not just the verdict.
    assert!(diags[0]
        .message
        .contains(&requirement.required_frame_words.to_string()));

    // The same geometry with default capacity is deadlock free.
    let default_spec = ShardLinkSpec::new(4, 1, 4).with_feedback_pairs(1);
    let (req, diags) = analyze_sharding(&halo_chain(), &default_spec);
    assert!(!req.unwrap().deadlock_predicted);
    assert!(diags.is_empty());
}
