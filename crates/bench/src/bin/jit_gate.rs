//! Tier-4 native-JIT CI gate: sweep the whole workload suite through the
//! compiled `.so` backend and diff every run **bitwise** against the
//! tree-walking interpreter — values and shrink masks. Ineligible
//! programs must fall back transparently and still match, so the gate
//! covers the full ladder: native, fused fallback, materializing
//! fallback.
//!
//! With `--assert-cached`, additionally requires that the sweep spawned
//! the C compiler **zero** times — run from a second process against a
//! warmed `SF_JIT_CACHE_DIR` this proves the disk cache serves every
//! module (`verify.sh` runs the gate twice for exactly this reason; a
//! fresh process is the only honest way to measure it, since an
//! in-process rerun would hit the module cache anyway).
//!
//! With `--artifacts DIR`, writes the emitted C translation units, the
//! persisted compiler stderr logs, and a JSON summary of eligibility and
//! cache statistics — the bundle CI uploads next to `BENCH_eval.json`.
//!
//! Usage: `jit_gate [--assert-cached] [--artifacts DIR]`

use stencilflow_expr::DataType;
use stencilflow_json::Json;
use stencilflow_program::StencilProgram;
use stencilflow_reference::{generate_inputs, ReferenceExecutor};
use stencilflow_workloads::{
    chain_program, diffusion2d, diffusion3d, horizontal_diffusion, jacobi2d, jacobi3d,
    jacobi3d_typed, listing1, membench_program, upwind3d, ChainSpec, HorizontalDiffusionSpec,
    MembenchSpec,
};

/// The canonical ten-workload suite (the same list the static-analysis
/// gate sweeps), at execution-sized shapes: the gate runs every program
/// through the interpreter too, so the domains stay small.
fn workloads() -> Vec<StencilProgram> {
    vec![
        listing1::listing1_with_shape(&[8, 8, 8]),
        jacobi2d(1, &[32, 32], 1),
        jacobi3d(1, &[16, 16, 8], 1),
        jacobi3d_typed(1, &[16, 16, 8], 1, DataType::Float64),
        diffusion2d(1, &[32, 32], 1),
        diffusion3d(1, &[16, 16, 8], 1),
        chain_program(&ChainSpec::new(8, 8).with_shape(&[32, 16, 16])),
        membench_program(&MembenchSpec::new(8, 1).with_shape(&[16, 8, 8])),
        horizontal_diffusion(&HorizontalDiffusionSpec::small()),
        upwind3d(2, &[8, 8, 8], 1),
    ]
}

/// Bitwise comparison of the program outputs of two execution results,
/// shrink masks included. Returns a description of the first mismatch.
fn diff_outputs(
    program: &StencilProgram,
    jit: &stencilflow_reference::ExecutionResult,
    baseline: &stencilflow_reference::ExecutionResult,
) -> Result<(), String> {
    for output in program.outputs() {
        let j = jit
            .field(output)
            .ok_or_else(|| format!("jit result misses output `{output}`"))?;
        let b = baseline
            .field(output)
            .ok_or_else(|| format!("baseline result misses output `{output}`"))?;
        if j.shape() != b.shape() {
            return Err(format!(
                "output `{output}`: shape {:?} != {:?}",
                j.shape(),
                b.shape()
            ));
        }
        for (cell, (x, y)) in j.as_slice().iter().zip(b.as_slice().iter()).enumerate() {
            if x.to_bits() != y.to_bits() {
                return Err(format!(
                    "output `{output}`, cell {cell}: jit {x:?} (0x{:016x}) != interpreter {y:?} (0x{:016x})",
                    x.to_bits(),
                    y.to_bits()
                ));
            }
        }
        if jit.valid_mask(output) != baseline.valid_mask(output) {
            return Err(format!("output `{output}`: shrink masks differ"));
        }
    }
    Ok(())
}

struct WorkloadOutcome {
    name: String,
    native: bool,
    fallback_reason: Option<String>,
    cells: usize,
}

fn main() {
    let mut assert_cached = false;
    let mut artifacts: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--assert-cached" => assert_cached = true,
            "--artifacts" => {
                let Some(dir) = args.next() else {
                    eprintln!("--artifacts requires a directory");
                    std::process::exit(2);
                };
                artifacts = Some(dir);
            }
            other => {
                eprintln!(
                    "unknown argument `{other}` (usage: jit_gate [--assert-cached] [--artifacts DIR])"
                );
                std::process::exit(2);
            }
        }
    }

    // The gate is only meaningful with a working compiler; `verify.sh`
    // probes up front and decides whether a missing `cc` skips or fails.
    if let Err(probe) = stencilflow_reference::jit_available() {
        eprintln!("jit gate: no usable C compiler: {probe}");
        std::process::exit(1);
    }

    let executor = ReferenceExecutor::new();
    let mut outcomes: Vec<WorkloadOutcome> = Vec::new();
    let mut sources: Vec<(String, String)> = Vec::new();
    let mut failures = 0usize;
    for (ix, program) in workloads().into_iter().enumerate() {
        let inputs = generate_inputs(&program, 17);
        let compiled = match executor.prepare(&program) {
            Ok(compiled) => compiled,
            Err(e) => {
                eprintln!("FAIL {}: does not compile: {e}", program.name());
                failures += 1;
                continue;
            }
        };
        // Index-prefixed so same-named variants (jacobi3d f32/f64) keep
        // distinct artifact files.
        if let Some(source) = compiled.jit_source() {
            sources.push((format!("{ix:02}-{}", program.name()), source.to_string()));
        }
        let baseline = executor.run_interpreted(&program, &inputs).unwrap();
        let jit = match executor.run_jit(&program, &inputs) {
            Ok(result) => result,
            Err(e) => {
                eprintln!("FAIL {}: run_jit errored: {e}", program.name());
                failures += 1;
                continue;
            }
        };
        let cells = program.space().num_cells() * program.stencil_count();
        match diff_outputs(&program, &jit, &baseline) {
            Ok(()) => {
                let tier = if compiled.jit_supported() {
                    "native".to_string()
                } else {
                    format!(
                        "fallback ({})",
                        compiled.jit_fallback_reason().unwrap_or("unknown")
                    )
                };
                println!(
                    "ok: {:<24} {tier}, bitwise identical over {cells} cells",
                    program.name()
                );
            }
            Err(mismatch) => {
                eprintln!("FAIL {}: {mismatch}", program.name());
                failures += 1;
            }
        }
        outcomes.push(WorkloadOutcome {
            name: program.name().to_string(),
            native: compiled.jit_supported(),
            fallback_reason: compiled.jit_fallback_reason().map(str::to_string),
            cells,
        });
    }

    // Time stepping goes through the same compiled kernels but a
    // different driver loop; pin it on the flagship iterative workload.
    let stepped = jacobi3d(1, &[16, 16, 8], 1);
    let inputs = generate_inputs(&stepped, 23);
    let baseline = executor.run_steps(&stepped, &inputs, 4).unwrap();
    match executor.run_steps_jit(&stepped, &inputs, 4) {
        Ok(jit) => match diff_outputs(&stepped, &jit, &baseline) {
            Ok(()) => println!(
                "ok: {:<24} native x4 steps, bitwise identical",
                stepped.name()
            ),
            Err(mismatch) => {
                eprintln!("FAIL {} x4 steps: {mismatch}", stepped.name());
                failures += 1;
            }
        },
        Err(e) => {
            eprintln!(
                "FAIL {} x4 steps: run_steps_jit errored: {e}",
                stepped.name()
            );
            failures += 1;
        }
    }

    let native = outcomes.iter().filter(|o| o.native).count();
    println!(
        "jit gate: {} workloads swept, {} native, {} fallback",
        outcomes.len(),
        native,
        outcomes.len() - native
    );
    if native == 0 {
        eprintln!("jit gate failed: no workload took the native path (vacuous gate)");
        failures += 1;
    }

    let stats = stencilflow_reference::jit_cache_stats();
    if let Some(stats) = &stats {
        println!(
            "jit cache: {} hits, {} misses, {} cc invocation(s), {} eviction(s), {} bytes",
            stats.hits, stats.misses, stats.cc_invocations, stats.evictions, stats.cache_bytes
        );
        if assert_cached && stats.cc_invocations != 0 {
            eprintln!(
                "jit gate failed: --assert-cached but the compiler ran {} time(s); \
                 the disk cache did not serve every module",
                stats.cc_invocations
            );
            failures += 1;
        }
    } else if assert_cached {
        eprintln!("jit gate failed: --assert-cached but no cache statistics are available");
        failures += 1;
    }

    if let Some(dir) = artifacts {
        if let Err(e) = write_artifacts(&dir, &outcomes, &sources, stats.as_ref()) {
            eprintln!("jit gate failed: cannot write artifacts to `{dir}`: {e}");
            failures += 1;
        } else {
            println!("wrote jit artifacts to {dir}");
        }
    }

    if failures > 0 {
        eprintln!("jit gate failed: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("jit gate passed");
}

/// Artifact bundle: one `.c` per eligible workload, the compiler stderr
/// logs persisted by the cache, and a JSON summary of eligibility plus
/// cache counters.
fn write_artifacts(
    dir: &str,
    outcomes: &[WorkloadOutcome],
    sources: &[(String, String)],
    stats: Option<&stencilflow_reference::JitCacheStats>,
) -> Result<(), String> {
    let root = std::path::Path::new(dir);
    std::fs::create_dir_all(root).map_err(|e| e.to_string())?;
    for (name, source) in sources {
        let file = root.join(format!("{name}.c"));
        std::fs::write(&file, source).map_err(|e| e.to_string())?;
    }
    // The engine persists each entry's compiler stderr as `{hash}.log`
    // next to the object; copy them so failed or warning-laden builds are
    // inspectable from the CI artifact alone.
    let cache_dir = std::env::var_os("SF_JIT_CACHE_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("stencilflow-jit-cache"));
    let log_dir = root.join("cc-logs");
    std::fs::create_dir_all(&log_dir).map_err(|e| e.to_string())?;
    if let Ok(entries) = std::fs::read_dir(&cache_dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|ext| ext == "log") {
                let target = log_dir.join(path.file_name().expect("log files have names"));
                std::fs::copy(&path, &target).map_err(|e| e.to_string())?;
            }
        }
    }
    let workloads_json: Vec<Json> = outcomes
        .iter()
        .map(|o| {
            let mut fields = vec![
                ("workload".to_string(), Json::String(o.name.clone())),
                ("native".to_string(), Json::Bool(o.native)),
                ("cells".to_string(), Json::Number(o.cells as f64)),
            ];
            if let Some(reason) = &o.fallback_reason {
                fields.push(("fallback_reason".to_string(), Json::String(reason.clone())));
            }
            Json::Object(fields)
        })
        .collect();
    let mut document = vec![
        ("gate".to_string(), Json::String("jit".to_string())),
        ("workloads".to_string(), Json::Array(workloads_json)),
    ];
    if let Some(stats) = stats {
        document.push((
            "cache".to_string(),
            Json::Object(vec![
                ("hits".to_string(), Json::Number(stats.hits as f64)),
                ("misses".to_string(), Json::Number(stats.misses as f64)),
                (
                    "cc_invocations".to_string(),
                    Json::Number(stats.cc_invocations as f64),
                ),
                (
                    "evictions".to_string(),
                    Json::Number(stats.evictions as f64),
                ),
                (
                    "cache_bytes".to_string(),
                    Json::Number(stats.cache_bytes as f64),
                ),
            ]),
        ));
    }
    std::fs::write(
        root.join("jit_stats.json"),
        Json::Object(document).to_string_pretty(),
    )
    .map_err(|e| e.to_string())
}
