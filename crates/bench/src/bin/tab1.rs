//! Regenerates Table I: highest performing kernels and resource usage.

fn main() {
    let rows = stencilflow_bench::table1_rows(false);
    print!("{}", stencilflow_bench::format_table1(&rows));
}
