//! Deterministic fault-injection sweep over the sharded runtime.
//!
//! For every seed, runs the jacobi3d time loop under each fault schedule
//! (no faults, dropped halos, delayed halos, duplicated halos, corrupted
//! halos, and a worker panic) and checks the sharded output bitwise
//! against both the tree-walking interpreter (stepped by hand through the
//! feedback pair) and the compiled `run_steps` path. Writes a JSON log of
//! every run — per-schedule recovery statistics and the chronological
//! fault log — and exits non-zero on any bitwise mismatch, so CI can run
//! it as a gate and archive the log as an artifact.
//!
//! Usage: `fault_sweep [--seeds 7,23,42] [--out PATH]`
//!
//! Without `--seeds`, seeds come from the `STENCILFLOW_FAULT_SEEDS`
//! environment variable (comma- or space-separated), defaulting to `7,23`.

use stencilflow_json::Json;
use stencilflow_reference::{generate_inputs, FaultPlan, Grid, ReferenceExecutor, ShardConfig};
use stencilflow_workloads::jacobi3d;

fn parse_seeds(text: &str) -> Vec<u64> {
    text.split(|c: char| c == ',' || c.is_whitespace())
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("invalid seed `{s}` (expected an unsigned integer)");
                std::process::exit(2);
            })
        })
        .collect()
}

fn grids_bitwise_equal(a: &Grid, b: &Grid) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn main() {
    let mut seeds: Option<Vec<u64>> = None;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => {
                let Some(list) = args.next() else {
                    eprintln!("--seeds requires a comma-separated list");
                    std::process::exit(2);
                };
                seeds = Some(parse_seeds(&list));
            }
            "--out" => {
                let Some(path) = args.next() else {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                };
                out = Some(path);
            }
            other => {
                eprintln!(
                    "unknown argument `{other}`; usage: fault_sweep [--seeds LIST] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let seeds = seeds
        .or_else(|| {
            std::env::var("STENCILFLOW_FAULT_SEEDS")
                .ok()
                .map(|text| parse_seeds(&text))
        })
        .unwrap_or_else(|| vec![7, 23]);
    if seeds.is_empty() {
        eprintln!("no seeds to sweep");
        std::process::exit(2);
    }

    // A domain small enough to sweep many schedules quickly but tall
    // enough along the sharded dimension for 3 shards plus dilation.
    let shape = [16usize, 12, 8];
    let steps = 4usize;
    let shards = 3usize;
    let program = jacobi3d(1, &shape, 1);
    let inputs = generate_inputs(&program, 11);
    let executor = ReferenceExecutor::new();

    // Ground truth #1: the tree-walking interpreter, stepped by hand
    // through the jacobi feedback pair (f1 feeds back into f0).
    let mut work = inputs.clone();
    let mut interpreted = None;
    for _ in 0..steps {
        let result = executor.run_interpreted(&program, &work).unwrap();
        work.insert("f0".to_string(), result.field("f1").unwrap().clone());
        interpreted = Some(result);
    }
    let interpreted = interpreted.expect("at least one step");
    // Ground truth #2: the compiled stepper (bit-identical to #1 by the
    // kernel-tier invariant; checked again here).
    let stepped = executor.run_steps(&program, &inputs, steps).unwrap();
    for name in program.outputs() {
        assert!(
            grids_bitwise_equal(
                interpreted.field(name).unwrap(),
                stepped.field(name).unwrap()
            ),
            "run_steps diverged from the interpreter on `{name}` before any sharding"
        );
    }

    type PlanFactory = Box<dyn Fn(u64) -> FaultPlan>;
    let schedules: Vec<(&str, PlanFactory)> = vec![
        ("none", Box::new(|_| FaultPlan::none())),
        ("dropped_halo", Box::new(FaultPlan::dropped_halo)),
        ("delayed_halo", Box::new(FaultPlan::delayed_halo)),
        ("duplicated_halo", Box::new(FaultPlan::duplicated_halo)),
        ("corrupted_halo", Box::new(FaultPlan::corrupted_halo)),
        ("worker_panic", Box::new(|_| FaultPlan::worker_panic(1, 1))),
    ];

    let mut runs = Vec::new();
    let mut mismatches = 0usize;
    for &seed in &seeds {
        for (schedule, make_plan) in &schedules {
            let config = ShardConfig::shards(shards).with_fault_plan(make_plan(seed));
            let outcome = executor
                .run_steps_sharded(&program, &inputs, steps, &config)
                .unwrap();
            let bitwise_match = program.outputs().iter().all(|name| {
                let sharded = outcome.result.field(name);
                let reference = interpreted.field(name);
                match (sharded, reference) {
                    (Some(s), Some(r)) => grids_bitwise_equal(s, r),
                    _ => false,
                }
            });
            if !bitwise_match {
                mismatches += 1;
                eprintln!(
                    "MISMATCH: seed {seed} schedule {schedule} diverged from the interpreter"
                );
            }
            let report = &outcome.report;
            let sum = |f: fn(&stencilflow_reference::ShardStats) -> usize| -> f64 {
                report.per_shard.iter().map(f).sum::<usize>() as f64
            };
            println!(
                "seed {seed:>4} {schedule:<16} match={bitwise_match} degraded={} \
                 resent={} nacks={} corrupt={} faults={}",
                report.degraded,
                sum(|s| s.frames_resent),
                sum(|s| s.nacks_sent),
                sum(|s| s.corrupt_detected),
                sum(|s| s.faults_injected),
            );
            runs.push(Json::Object(vec![
                ("seed".to_string(), Json::Number(seed as f64)),
                ("schedule".to_string(), Json::String(schedule.to_string())),
                ("bitwise_match".to_string(), Json::Bool(bitwise_match)),
                ("degraded".to_string(), Json::Bool(report.degraded)),
                (
                    "degrade_reason".to_string(),
                    match &report.degrade_reason {
                        Some(reason) => Json::String(reason.clone()),
                        None => Json::Null,
                    },
                ),
                ("shards".to_string(), Json::Number(report.shards as f64)),
                ("window".to_string(), Json::Number(report.window as f64)),
                (
                    "frames_sent".to_string(),
                    Json::Number(sum(|s| s.frames_sent)),
                ),
                (
                    "frames_resent".to_string(),
                    Json::Number(sum(|s| s.frames_resent)),
                ),
                (
                    "nacks_sent".to_string(),
                    Json::Number(sum(|s| s.nacks_sent)),
                ),
                (
                    "corrupt_detected".to_string(),
                    Json::Number(sum(|s| s.corrupt_detected)),
                ),
                (
                    "stale_discarded".to_string(),
                    Json::Number(sum(|s| s.stale_discarded)),
                ),
                (
                    "faults_injected".to_string(),
                    Json::Number(sum(|s| s.faults_injected)),
                ),
                (
                    "fault_log".to_string(),
                    Json::Array(
                        report
                            .fault_log
                            .iter()
                            .map(|line| Json::String(line.clone()))
                            .collect(),
                    ),
                ),
            ]));
        }
    }

    let document = Json::Object(vec![
        (
            "benchmark".to_string(),
            Json::String("fault_sweep".to_string()),
        ),
        (
            "program".to_string(),
            Json::String(format!(
                "jacobi3d {}x{}x{} x{steps} steps, {shards} shards",
                shape[0], shape[1], shape[2]
            )),
        ),
        (
            "seeds".to_string(),
            Json::Array(seeds.iter().map(|&s| Json::Number(s as f64)).collect()),
        ),
        ("runs".to_string(), Json::Array(runs)),
        ("mismatches".to_string(), Json::Number(mismatches as f64)),
    ])
    .to_string_pretty();
    match out {
        Some(path) => {
            std::fs::write(&path, format!("{document}\n")).expect("write fault-sweep JSON");
            println!("wrote {path}");
        }
        None => println!("{document}"),
    }
    if mismatches > 0 {
        eprintln!("{mismatches} fault schedule(s) diverged from the interpreter");
        std::process::exit(1);
    }
    println!(
        "all {} fault runs bitwise-identical to the interpreter",
        seeds.len() * schedules.len()
    );
}
