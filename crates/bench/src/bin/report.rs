//! Prints every table and figure of the evaluation in one run, plus the
//! Fig. 4 deadlock demonstration. Pass `--quick` for the shortened domains
//! used by the CI smoke step.

fn main() {
    let quick = std::env::args().skip(1).any(|arg| arg == "--quick");
    let fig14 = stencilflow_bench::scaling_series(1, 8, quick);
    print!(
        "{}",
        stencilflow_bench::format_scaling(&fig14, "Figure 14 (W=1)")
    );
    let fig15 = stencilflow_bench::scaling_series(4, 24, quick);
    print!(
        "{}",
        stencilflow_bench::format_scaling(&fig15, "Figure 15 (W=4)")
    );
    print!(
        "{}",
        stencilflow_bench::format_table1(&stencilflow_bench::table1_rows(quick))
    );
    print!(
        "{}",
        stencilflow_bench::format_bandwidth(&stencilflow_bench::bandwidth_series())
    );
    let (rows, analysis) = stencilflow_bench::table2_rows();
    print!("{analysis}");
    print!("{}", stencilflow_bench::format_table2(&rows));
    let (deadlocked, completed) = stencilflow_bench::deadlock_demo();
    println!("== Figure 4: deadlock demonstration ==");
    println!(
        "unit-depth channels deadlock: {deadlocked}; analysis-computed depths stream: {completed}"
    );
    print!(
        "{}",
        stencilflow_bench::format_throughput(&stencilflow_bench::eval_throughput(quick))
    );
    print!(
        "{}",
        stencilflow_bench::format_sharded(&stencilflow_bench::sharded_throughput(quick))
    );
}
