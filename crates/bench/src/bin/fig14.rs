//! Regenerates Figure 14: single-/multi-node performance scaling, W = 1.

fn main() {
    let data = stencilflow_bench::scaling_series(1, 8, false);
    print!(
        "{}",
        stencilflow_bench::format_scaling(&data, "Figure 14 (W=1, 8 Op/stencil, 2^15 x 32 x 32)")
    );
}
