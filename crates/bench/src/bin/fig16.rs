//! Regenerates Figure 16: effective off-chip memory bandwidth.

fn main() {
    let points = stencilflow_bench::bandwidth_series();
    print!("{}", stencilflow_bench::format_bandwidth(&points));
}
