//! Runs the evaluation-throughput harness and writes the JSON baseline
//! tracked as `BENCH_eval.json`, or — with `--check-floors` — gates an
//! existing JSON document against the kernel-tier speedup floors.
//!
//! Usage:
//!
//! * `bench_eval [--quick] [OUTPUT.json]` — prints the throughput table,
//!   then writes the JSON document to `OUTPUT.json` (or stdout when no path
//!   is given). `--quick` shrinks the domains for CI smoke runs.
//! * `bench_eval --check-floors INPUT.json` — reads a previously written
//!   document and exits non-zero if any compiled/typed/simd speedup floor
//!   is violated (the CI perf gate; see `stencilflow_bench::check_floors`).

fn main() {
    let mut quick = false;
    let mut check_floors = false;
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check-floors" => check_floors = true,
            flag if flag.starts_with('-') => {
                eprintln!(
                    "unknown flag `{flag}`; usage: \
                     bench_eval [--quick] [OUTPUT.json] | bench_eval --check-floors INPUT.json"
                );
                std::process::exit(2);
            }
            p => {
                if let Some(previous) = &path {
                    eprintln!("multiple paths given (`{previous}`, `{p}`)");
                    std::process::exit(2);
                }
                path = Some(p.to_string());
            }
        }
    }
    if check_floors {
        let Some(path) = path else {
            eprintln!("--check-floors requires the JSON document to check");
            std::process::exit(2);
        };
        let text = std::fs::read_to_string(&path).unwrap_or_else(|err| {
            eprintln!("cannot read `{path}`: {err}");
            std::process::exit(2);
        });
        match stencilflow_bench::check_floors(&text) {
            Ok(summary) => {
                print!("{summary}");
                println!("all speedup floors hold in {path}");
            }
            Err(failures) => {
                eprintln!("speedup floors violated in {path}:\n{failures}");
                std::process::exit(1);
            }
        }
        return;
    }
    let rows = stencilflow_bench::eval_throughput(quick);
    print!("{}", stencilflow_bench::format_throughput(&rows));
    let sharded = stencilflow_bench::sharded_throughput(quick);
    print!("{}", stencilflow_bench::format_sharded(&sharded));
    let json = stencilflow_bench::throughput_json(&rows, Some(&sharded), quick);
    match path {
        Some(path) => {
            std::fs::write(&path, format!("{json}\n")).expect("write benchmark JSON");
            println!("wrote {path}");
        }
        None => println!("{json}"),
    }
}
