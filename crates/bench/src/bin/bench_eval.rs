//! Runs the evaluation-throughput harness and writes the JSON baseline
//! tracked as `BENCH_eval.json`.
//!
//! Usage: `bench_eval [--quick] [OUTPUT.json]` — prints the throughput
//! table, then writes the JSON document to `OUTPUT.json` (or stdout when no
//! path is given). `--quick` shrinks the domains for CI smoke runs.

fn main() {
    let mut quick = false;
    let mut out_path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag `{flag}`; usage: bench_eval [--quick] [OUTPUT.json]");
                std::process::exit(2);
            }
            path => {
                if let Some(previous) = &out_path {
                    eprintln!("multiple output paths given (`{previous}`, `{path}`)");
                    std::process::exit(2);
                }
                out_path = Some(path.to_string());
            }
        }
    }
    let rows = stencilflow_bench::eval_throughput(quick);
    print!("{}", stencilflow_bench::format_throughput(&rows));
    let json = stencilflow_bench::throughput_json(&rows, quick);
    match out_path {
        Some(path) => {
            std::fs::write(&path, format!("{json}\n")).expect("write benchmark JSON");
            println!("wrote {path}");
        }
        None => println!("{json}"),
    }
}
