//! Regenerates Table II and the §IX-A analysis for horizontal diffusion.

fn main() {
    let (rows, analysis) = stencilflow_bench::table2_rows();
    print!("{analysis}");
    print!("{}", stencilflow_bench::format_table2(&rows));
}
