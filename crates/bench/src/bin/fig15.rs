//! Regenerates Figure 15: performance scaling with 4-way vectorization.

fn main() {
    let data = stencilflow_bench::scaling_series(4, 24, false);
    print!(
        "{}",
        stencilflow_bench::format_scaling(&data, "Figure 15 (W=4, 24 Op/stencil, 2^15 x 32 x 32)")
    );
}
