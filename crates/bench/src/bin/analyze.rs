//! Static-analysis sweep over every workload: run the program/DAG
//! analyzer and the shard-link sizing pass on each, print the findings
//! compiler-style, and write a JSON artifact of every diagnostic.
//!
//! With `--check`, exits non-zero if any workload produces an
//! error-severity diagnostic — the CI gate that keeps the whole workload
//! suite analysis-clean. Warnings and infos are reported but do not gate.
//!
//! Usage: `analyze [--check] [--out PATH]`

use stencilflow_analysis::{analyze_program, analyze_sharding, AnalysisReport, Severity};
use stencilflow_core::ShardLinkSpec;
use stencilflow_expr::DataType;
use stencilflow_json::Json;
use stencilflow_program::StencilProgram;
use stencilflow_workloads::{
    chain_program, diffusion2d, diffusion3d, horizontal_diffusion, jacobi2d, jacobi3d,
    jacobi3d_typed, listing1, membench_program, upwind3d, ChainSpec, HorizontalDiffusionSpec,
    MembenchSpec,
};

/// The workload suite swept by every benchmark binary, at analysis-sized
/// shapes (the analyses are shape-generic; small shapes keep this fast).
fn workloads() -> Vec<StencilProgram> {
    vec![
        listing1(),
        jacobi2d(1, &[32, 32], 1),
        jacobi3d(1, &[16, 16, 8], 1),
        jacobi3d_typed(1, &[16, 16, 8], 1, DataType::Float64),
        diffusion2d(1, &[32, 32], 1),
        diffusion3d(1, &[16, 16, 8], 1),
        chain_program(&ChainSpec::new(8, 8)),
        membench_program(&MembenchSpec::new(8, 1)),
        horizontal_diffusion(&HorizontalDiffusionSpec::small()),
        upwind3d(2, &[8, 8, 8], 1),
    ]
}

fn main() {
    let mut check = false;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => {
                let Some(path) = args.next() else {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                };
                out = Some(path);
            }
            other => {
                eprintln!("unknown argument `{other}` (usage: analyze [--check] [--out PATH])");
                std::process::exit(2);
            }
        }
    }

    let mut reports: Vec<AnalysisReport> = Vec::new();
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for program in workloads() {
        let mut report = analyze_program(&program);
        // Sweep the sharded-run configuration every workload would get by
        // default: the static pass must prove the default link sizing
        // deadlock free for each of them.
        let spec = ShardLinkSpec::new(4, 1, 4).with_feedback_pairs(program.outputs().len());
        let (_, shard_diags) = analyze_sharding(&program, &spec);
        report.diagnostics.extend(shard_diags);
        for diag in &report.diagnostics {
            println!("{}", diag.render());
            match diag.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
                Severity::Info => {}
            }
        }
        reports.push(report);
    }

    let clean = reports.iter().filter(|r| r.diagnostics.is_empty()).count();
    println!(
        "analyzed {} workloads: {} clean, {} warning(s), {} error(s)",
        reports.len(),
        clean,
        warnings,
        errors
    );

    if let Some(path) = out {
        let json = Json::Object(vec![
            (
                "workloads".into(),
                Json::Array(reports.iter().map(AnalysisReport::to_json).collect()),
            ),
            ("errors".into(), Json::Number(errors as f64)),
            ("warnings".into(), Json::Number(warnings as f64)),
        ]);
        if let Err(e) = std::fs::write(&path, json.to_string_pretty()) {
            eprintln!("cannot write `{path}`: {e}");
            std::process::exit(2);
        }
        println!("wrote {path}");
    }

    if check && errors > 0 {
        eprintln!("analysis gate failed: {errors} error-severity diagnostic(s)");
        std::process::exit(1);
    }
}
