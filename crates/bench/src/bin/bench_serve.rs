//! Runs the multi-tenant service-layer benchmark and writes the JSON
//! baseline tracked as `BENCH_serve.json`, or — with `--check-floors` —
//! gates an existing document against the service floors (sustained
//! throughput, small-job p99 fairness bound, and the zero
//! steady-state-allocation / zero-recompilation equalities).
//!
//! Usage:
//!
//! * `bench_serve [--quick] [OUTPUT.json]` — runs the seeded job mix,
//!   prints the summary, then writes the JSON document to `OUTPUT.json`
//!   (or stdout when no path is given). `--quick` shrinks the mix for CI
//!   smoke runs.
//! * `bench_serve --check-floors INPUT.json` — reads a previously written
//!   document and exits non-zero if any floor is violated (the CI gate;
//!   see `stencilflow_bench::check_serve_floors`).

fn main() {
    let mut quick = false;
    let mut check_floors = false;
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check-floors" => check_floors = true,
            flag if flag.starts_with('-') => {
                eprintln!(
                    "unknown flag `{flag}`; usage: \
                     bench_serve [--quick] [OUTPUT.json] | bench_serve --check-floors INPUT.json"
                );
                std::process::exit(2);
            }
            p => {
                if let Some(previous) = &path {
                    eprintln!("multiple paths given (`{previous}`, `{p}`)");
                    std::process::exit(2);
                }
                path = Some(p.to_string());
            }
        }
    }
    if check_floors {
        let Some(path) = path else {
            eprintln!("--check-floors requires the JSON document to check");
            std::process::exit(2);
        };
        let text = std::fs::read_to_string(&path).unwrap_or_else(|err| {
            eprintln!("cannot read `{path}`: {err}");
            std::process::exit(2);
        });
        match stencilflow_bench::check_serve_floors(&text) {
            Ok(summary) => {
                print!("{summary}");
                println!("all service floors hold in {path}");
            }
            Err(failures) => {
                eprintln!("service floors violated in {path}:\n{failures}");
                std::process::exit(1);
            }
        }
        return;
    }
    let report = stencilflow_bench::run_serve_bench(quick);
    print!("{}", stencilflow_bench::format_serve(&report));
    let json = stencilflow_bench::serve_json(&report);
    match path {
        Some(path) => {
            std::fs::write(&path, format!("{json}\n")).expect("write serve JSON");
            println!("wrote {path}");
        }
        None => println!("{json}"),
    }
}
