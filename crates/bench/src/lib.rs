//! Benchmark harnesses regenerating the paper's tables and figures.
//!
//! Each function computes the data series of one evaluation artifact
//! (Fig. 14, Fig. 15, Tab. I, Fig. 16, Tab. II) from the analytical models
//! and the simulator, and renders it in the same shape as the paper reports
//! it. The `benches/` targets print these tables as part of `cargo bench`
//! (and additionally time the framework itself with Criterion); the
//! `src/bin/` binaries print them standalone. `EXPERIMENTS.md` records the
//! paper-vs-measured comparison for every row.

#![forbid(unsafe_code)]

pub mod serve;

pub use serve::{check_serve_floors, format_serve, run_serve_bench, serve_json, ServeBenchReport};

use stencilflow_core::{AnalysisConfig, HardwareMapping, MultiDevicePlan, PartitionConfig};
use stencilflow_hwmodel::{
    comparator_estimate, estimate_resources, silicon_efficiency, BandwidthModel, Device,
    FrequencyModel, Roofline,
};
use stencilflow_program::StencilProgram;
use stencilflow_workloads::{
    chain_program, diffusion2d, diffusion3d, horizontal_diffusion, jacobi3d, upwind3d, ChainSpec,
    HorizontalDiffusionSpec, MembenchSpec,
};

/// Efficiency factor of multi-device designs relative to single-device peak,
/// calibrated on Fig. 14/15 (network/shell logic reduces the per-device fill
/// to roughly 73 % of the single-device maximum).
pub const MULTI_DEVICE_EFFICIENCY: f64 = 0.73;

/// One point of the Fig. 14 / Fig. 15 scaling series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Floating-point operations instantiated per cycle.
    pub ops_per_cycle: u64,
    /// Number of FPGAs the design spans.
    pub devices: usize,
    /// Modelled sustained performance in GOp/s.
    pub gops: f64,
    /// Performance upper bound from Eq. 1 at the modelled frequency.
    pub upper_bound_gops: f64,
}

/// Compute the scaling series of Fig. 14 (`vectorization = 1`,
/// 8 Op/stencil) or Fig. 15 (`vectorization = 4`, 24 Op/stencil).
pub fn scaling_series(
    vectorization: usize,
    ops_per_stencil: usize,
    quick: bool,
) -> Vec<ScalingPoint> {
    let device = Device::stratix10_gx2800();
    let frequency_model = FrequencyModel::default();
    let config = AnalysisConfig::paper_defaults().with_vectorization(vectorization);
    // Domain of the paper's sweep; a shorter domain in quick mode keeps the
    // harness fast without changing the shape (L << N either way).
    let shape: Vec<usize> = if quick {
        vec![1 << 11, 32, 32]
    } else {
        vec![1 << 15, 32, 32]
    };

    // Single-device points: chain lengths as in the paper's x-axis.
    let single_targets: &[u64] = if vectorization == 1 {
        &[128, 256, 384, 512, 640, 768, 896]
    } else {
        &[512, 1024, 1536, 2048, 2560, 3072]
    };
    let mut points = Vec::new();
    let mut best_single = 0.0f64;
    for &target_ops in single_targets {
        let stages = (target_ops as usize / (ops_per_stencil * vectorization)).max(1);
        let spec = ChainSpec::new(stages, ops_per_stencil)
            .with_shape(&shape)
            .with_vectorization(vectorization);
        let program = chain_program(&spec);
        let mapping = HardwareMapping::build(&program, &config).expect("chain programs always map");
        let resources = estimate_resources(&mapping);
        let frequency = frequency_model.frequency_hz(&resources, &device);
        let perf = mapping.performance.at_frequency(frequency);
        let pipeline_efficiency = perf.iterations as f64 / perf.expected_cycles as f64;
        let ops_per_cycle = mapping.ops_per_cycle();
        let upper_bound = ops_per_cycle as f64 * frequency * pipeline_efficiency / 1e9;
        // If the design no longer fits the device, logic is the bottleneck
        // and performance saturates at the largest fitting design.
        let gops = if resources.fits(&device) {
            upper_bound
        } else {
            best_single
        };
        best_single = best_single.max(gops);
        points.push(ScalingPoint {
            ops_per_cycle,
            devices: 1,
            gops,
            upper_bound_gops: upper_bound,
        });
    }
    // Multi-device points: 2, 4, 8 FPGAs chained.
    let max_single_ops = points
        .iter()
        .filter(|p| p.gops >= best_single * 0.999)
        .map(|p| p.ops_per_cycle)
        .max()
        .unwrap_or(896);
    for devices in [2usize, 4, 8] {
        let ops_per_cycle = max_single_ops * devices as u64;
        let gops = best_single * devices as f64 * MULTI_DEVICE_EFFICIENCY;
        points.push(ScalingPoint {
            ops_per_cycle,
            devices,
            gops,
            upper_bound_gops: best_single * devices as f64,
        });
    }
    points
}

/// Render a scaling series as the rows of Fig. 14 / Fig. 15.
pub fn format_scaling(points: &[ScalingPoint], title: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str("ops/cycle  devices      GOp/s   upper bound\n");
    for p in points {
        out.push_str(&format!(
            "{:>9}  {:>7}  {:>9.0}  {:>12.0}\n",
            p.ops_per_cycle, p.devices, p.gops, p.upper_bound_gops
        ));
    }
    out
}

/// One row of Tab. I.
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// Kernel name.
    pub name: String,
    /// Modelled performance in GOp/s.
    pub gops: f64,
    /// ALM / FF / M20K / DSP usage.
    pub alm: u64,
    /// Flip-flop usage.
    pub ff: u64,
    /// M20K usage.
    pub m20k: u64,
    /// DSP usage.
    pub dsp: u64,
    /// Utilization fractions (ALM, FF, M20K, DSP).
    pub utilization: (f64, f64, f64, f64),
}

/// Builder of a kernel chain with a given number of stages.
type KernelBuilder = Box<dyn Fn(usize) -> StencilProgram>;

fn best_fitting_chain(
    build: &dyn Fn(usize) -> StencilProgram,
    config: &AnalysisConfig,
    device: &Device,
) -> (StencilProgram, HardwareMapping) {
    let mut stages = 4usize;
    let mut last = None;
    loop {
        let program = build(stages);
        let mapping = HardwareMapping::build(&program, config).expect("chains map");
        let resources = estimate_resources(&mapping);
        if resources.fits(device) && stages < 512 {
            last = Some((program, mapping));
            stages *= 2;
        } else {
            // Refine linearly downwards from the first non-fitting size.
            let mut best = last;
            let mut s = stages * 3 / 4;
            while s > 2 {
                let program = build(s);
                let mapping = HardwareMapping::build(&program, config).expect("chains map");
                if estimate_resources(&mapping).fits(device) {
                    best = Some((program, mapping));
                    break;
                }
                s = s * 3 / 4;
            }
            return best.unwrap_or_else(|| {
                let program = build(2);
                let mapping = HardwareMapping::build(&program, config).expect("chains map");
                (program, mapping)
            });
        }
    }
}

/// Compute the "highest performing kernels" rows of Tab. I.
pub fn table1_rows(quick: bool) -> Vec<KernelRow> {
    let device = Device::stratix10_gx2800();
    let frequency_model = FrequencyModel::default();
    let shape3 = if quick {
        [1 << 11, 32, 32]
    } else {
        [1 << 15, 32, 32]
    };
    let shape2 = if quick {
        [1 << 11, 1 << 10]
    } else {
        [1 << 13, 1 << 12]
    };

    let kernels: Vec<(&str, usize, KernelBuilder)> = vec![
        ("Jacobi 3D", 1, Box::new(move |t| jacobi3d(t, &shape3, 1))),
        (
            "Jacobi 3D W=8",
            8,
            Box::new(move |t| jacobi3d(t, &shape3, 8)),
        ),
        (
            "Diffusion 2D W=8",
            8,
            Box::new(move |t| diffusion2d(t, &shape2, 8)),
        ),
        (
            "Diffusion 3D W=8",
            8,
            Box::new(move |t| diffusion3d(t, &shape3, 8)),
        ),
    ];
    let mut rows = Vec::new();
    for (name, width, build) in kernels {
        let config = AnalysisConfig::paper_defaults().with_vectorization(width);
        let (_, mapping) = best_fitting_chain(build.as_ref(), &config, &device);
        let resources = estimate_resources(&mapping);
        let frequency = frequency_model.frequency_hz(&resources, &device);
        let perf = mapping.performance.at_frequency(frequency);
        let pipeline_efficiency = perf.iterations as f64 / perf.expected_cycles as f64;
        let gops = mapping.ops_per_cycle() as f64 * frequency * pipeline_efficiency / 1e9;
        rows.push(KernelRow {
            name: name.to_string(),
            gops,
            alm: resources.alm,
            ff: resources.ff,
            m20k: resources.m20k,
            dsp: resources.dsp,
            utilization: resources.utilization(&device),
        });
    }
    rows
}

/// Render Tab. I, including the literature comparison rows from the paper
/// (which are fixed reference values, not re-measured).
pub fn format_table1(rows: &[KernelRow]) -> String {
    let mut out = String::new();
    out.push_str("== Table I: highest performing kernels and their resource usage ==\n");
    out.push_str(&format!(
        "{:<22} {:>12} {:>9} {:>9} {:>7} {:>6}\n",
        "kernel", "performance", "ALM", "FF", "M20K", "DSP"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<22} {:>8.0} GOp/s {:>9} {:>9} {:>7} {:>6}\n",
            row.name, row.gops, row.alm, row.ff, row.m20k, row.dsp
        ));
        out.push_str(&format!(
            "{:<22} {:>12} {:>8.1}% {:>8.1}% {:>6.1}% {:>5.1}%\n",
            "",
            "",
            row.utilization.0 * 100.0,
            row.utilization.1 * 100.0,
            row.utilization.2 * 100.0,
            row.utilization.3 * 100.0
        ));
    }
    out.push_str("-- literature reference rows (values as reported by the respective papers) --\n");
    out.push_str("Diffusion 2D (Zohouri et al.)      913 GOp/s   Stratix 10\n");
    out.push_str("Diffusion 3D (Zohouri et al.)      934 GOp/s   Stratix 10\n");
    out.push_str("Waidyasooriya and Hariyama         630 GOp/s   Arria 10 GX 1150\n");
    out.push_str("SODA                               135 GOp/s   ADM-PCIE-KU3\n");
    out.push_str("Niu et al.                         119 GOp/s   Virtex-6 SX475T\n");
    out.push_str("Ben-Nun et al. (DaCe)              139 GOp/s   VCU1525\n");
    out
}

/// One point of the Fig. 16 bandwidth sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthPoint {
    /// Operands requested per cycle.
    pub operands_per_cycle: usize,
    /// Vector width of each access point.
    pub vector_width: usize,
    /// Effective bandwidth in GB/s.
    pub effective_gbs: f64,
    /// Fraction of the requested bandwidth delivered.
    pub efficiency: f64,
}

/// Compute the Fig. 16 series: effective bandwidth against the number of
/// operands requested per cycle, for scalar and 4-way vectorized endpoints.
pub fn bandwidth_series() -> Vec<BandwidthPoint> {
    let model = BandwidthModel::stratix10();
    let frequency = 318e6;
    let mut points = Vec::new();
    for &operands in &[8usize, 16, 24, 32, 40, 48] {
        for &width in &[1usize, 4] {
            let access_points = operands / width;
            // Consistency check with the workload generator (the membench
            // program with this many paths requests exactly these operands).
            let spec = MembenchSpec::new(access_points.div_ceil(2).max(1), width);
            let _ = spec.operands_per_cycle();
            points.push(BandwidthPoint {
                operands_per_cycle: operands,
                vector_width: width,
                effective_gbs: model.effective_bytes_per_s(access_points, width, frequency) / 1e9,
                efficiency: model.efficiency(access_points, width, frequency),
            });
        }
    }
    points
}

/// Render the Fig. 16 series.
pub fn format_bandwidth(points: &[BandwidthPoint]) -> String {
    let mut out = String::new();
    out.push_str("== Figure 16: effective off-chip bandwidth ==\n");
    out.push_str("operands/cycle  width  effective GB/s  efficiency\n");
    for p in points {
        out.push_str(&format!(
            "{:>14}  {:>5}  {:>14.1}  {:>9.2}x\n",
            p.operands_per_cycle, p.vector_width, p.effective_gbs, p.efficiency
        ));
    }
    out
}

/// One row of Tab. II.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Platform name.
    pub platform: String,
    /// Runtime in microseconds.
    pub runtime_us: f64,
    /// Sustained performance in GOp/s.
    pub gops: f64,
    /// Peak memory bandwidth in GB/s (infinite for the simulated-bandwidth
    /// variant).
    pub peak_bw_gbs: f64,
    /// Fraction of the platform's own roofline achieved.
    pub roofline_fraction: f64,
    /// Silicon efficiency in GOp/s per mm².
    pub gops_per_mm2: f64,
}

/// Compute Tab. II: the horizontal-diffusion benchmark on the Stratix 10
/// (bandwidth-bound and with simulated infinite bandwidth) and the CPU/GPU
/// comparators, plus the §IX-A analysis numbers.
pub fn table2_rows() -> (Vec<Table2Row>, String) {
    let device = Device::stratix10_gx2800();
    let bandwidth_model = BandwidthModel::stratix10();
    let frequency_model = FrequencyModel::default();

    // The production program, aggressively fused as in the paper.
    let program = horizontal_diffusion(&HorizontalDiffusionSpec::production(8));
    let fused = stencilflow_dataflow::fuse_all(&program).expect("fusion succeeds");
    let config = AnalysisConfig::paper_defaults().with_vectorization(8);
    let analysis = stencilflow_core::analyze(&fused, &config).expect("analysis succeeds");
    let mapping = HardwareMapping::build(&fused, &config).expect("mapping succeeds");
    let resources = estimate_resources(&mapping);
    let frequency = frequency_model.frequency_hz(&resources, &device);

    let total_ops = program.total_flops();
    let memory_bytes = program.total_memory_bytes() as u64;
    let intensity = program.arithmetic_intensity();

    // Effective bandwidth for this design's access-point configuration.
    let effective_bw = bandwidth_model.effective_bytes_per_s(
        mapping.memory_access_points(),
        mapping.vector_width,
        frequency,
    );
    // Bandwidth-bound performance on the Stratix 10. The paper measures 69 %
    // of the bound set by the *achievable* (crossbar-limited) bandwidth,
    // which corresponds to the 52 % of the data-sheet roofline reported in
    // Tab. II; the remaining gap is DRAM access inefficiency not captured by
    // the crossbar model, applied here as a calibrated factor.
    let roofline = Roofline::new(
        effective_bw,
        mapping.ops_per_cycle() as f64 * frequency / 1e9,
    );
    let bound = roofline.attainable_gops(intensity);
    let fpga_gops = bound * 0.70;
    let fpga_runtime = total_ops as f64 / (fpga_gops * 1e9) * 1e6;
    let peak_roofline = Roofline::new(device.peak_bandwidth_bytes(), f64::INFINITY);

    // Simulated infinite bandwidth: compute-bound at W=16.
    let config16 = AnalysisConfig::paper_defaults().with_vectorization(16);
    let mapping16 = HardwareMapping::build(&fused, &config16).expect("mapping succeeds");
    let resources16 = estimate_resources(&mapping16);
    let frequency16 = frequency_model.frequency_hz(&resources16, &device);
    let perf16 = mapping16.performance.at_frequency(frequency16);
    let pipeline_eff16 = perf16.iterations as f64 / perf16.expected_cycles as f64;
    let inf_gops = mapping16.ops_per_cycle() as f64 * frequency16 * pipeline_eff16 / 1e9
        * (total_ops as f64 / (mapping16.ops_per_cycle() as f64 * perf16.iterations as f64));
    let inf_runtime = total_ops as f64 / (inf_gops * 1e9) * 1e6;

    let mut rows = vec![
        Table2Row {
            platform: "Stratix 10".to_string(),
            runtime_us: fpga_runtime,
            gops: fpga_gops,
            peak_bw_gbs: device.peak_bandwidth_gbs,
            roofline_fraction: fpga_gops / peak_roofline.attainable_gops(intensity),
            gops_per_mm2: silicon_efficiency(fpga_gops, &device),
        },
        Table2Row {
            platform: "Stratix 10 (infinite bandwidth)".to_string(),
            runtime_us: inf_runtime,
            gops: inf_gops,
            peak_bw_gbs: f64::INFINITY,
            roofline_fraction: f64::NAN,
            gops_per_mm2: silicon_efficiency(inf_gops, &device),
        },
    ];
    for comparator in [
        Device::xeon_e5_2690v3(),
        Device::tesla_p100(),
        Device::tesla_v100(),
    ] {
        let estimate = comparator_estimate(&comparator, total_ops, memory_bytes);
        rows.push(Table2Row {
            platform: comparator.name.clone(),
            runtime_us: estimate.runtime_us,
            gops: estimate.gops,
            peak_bw_gbs: estimate.peak_bandwidth_gbs,
            roofline_fraction: estimate.roofline_fraction,
            gops_per_mm2: silicon_efficiency(estimate.gops, &comparator),
        });
    }

    // The §IX-A analysis summary.
    let ops = program.ops_per_cell();
    let perf = &mapping.performance;
    let analysis_text = format!(
        "== §IX-A horizontal diffusion analysis ==\n\
         operations per point: {} add, {} mul, {} sqrt, {} min, {} max, {} branches ({} flops)\n\
         memory traffic: {} operands/point -> arithmetic intensity {:.3} Op/B (paper: 65/18 = {:.3})\n\
         roofline bound at {:.1} GB/s effective bandwidth: {:.1} GOp/s (paper Eq. 3: 210.5)\n\
         bandwidth to saturate compute at this intensity: {:.0} GB/s (paper Eq. 4: 254)\n\
         stencil nodes after fusion: {} (from {}), init latency fraction L/C = {:.3}% (paper: ~0.7%)\n\
         on-chip buffering: {} elements ({:.2} MB)\n",
        ops.additions,
        ops.multiplications,
        ops.square_roots,
        ops.minimums,
        ops.maximums,
        ops.branches,
        ops.flops(),
        (memory_bytes / 4) as f64 / program.space().num_cells() as f64,
        intensity,
        65.0 / 18.0,
        effective_bw / 1e9,
        bound,
        Roofline::bandwidth_to_saturate(917.1, intensity) / 1e9,
        fused.stencil_count(),
        program.stencil_count(),
        perf.init_fraction() * 100.0,
        analysis.total_buffer_elements(),
        analysis.total_buffer_bytes(4) as f64 / 1e6,
    );
    (rows, analysis_text)
}

/// Render Tab. II.
pub fn format_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str("== Table II: horizontal diffusion benchmarks ==\n");
    out.push_str(&format!(
        "{:<34} {:>12} {:>12} {:>10} {:>8} {:>12}\n",
        "platform", "runtime", "performance", "peak BW", "%roof", "GOp/s/mm2"
    ));
    for row in rows {
        let bw = if row.peak_bw_gbs.is_finite() {
            format!("{:.0} GB/s", row.peak_bw_gbs)
        } else {
            "inf".to_string()
        };
        let roof = if row.roofline_fraction.is_nan() {
            "-".to_string()
        } else {
            format!("{:.0}%", row.roofline_fraction * 100.0)
        };
        out.push_str(&format!(
            "{:<34} {:>9.0} us {:>6.0} GOp/s {:>10} {:>8} {:>12.2}\n",
            row.platform, row.runtime_us, row.gops, bw, roof, row.gops_per_mm2
        ));
    }
    out
}

/// One row of the evaluation-throughput comparison: tree-walking
/// interpreter vs. the dynamically typed compiled plan (`Value` bytecode)
/// vs. the scalar type-specialized kernels vs. the lane-batched (SIMD)
/// typed sweep.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Workload name.
    pub workload: String,
    /// Stencil-cell evaluations per run.
    pub cells: usize,
    /// Tree-walking evaluator throughput in cells/second.
    pub interpreted_cells_per_s: f64,
    /// Compiled-plan (`Value` bytecode, typed kernels disabled) throughput
    /// in cells/second.
    pub compiled_cells_per_s: f64,
    /// Scalar type-specialized kernel throughput in cells/second (typed
    /// kernels enabled, lane batching disabled).
    pub typed_cells_per_s: f64,
    /// Lane-batched typed sweep throughput in cells/second (the default
    /// `ReferenceExecutor::run` path).
    pub simd_cells_per_s: f64,
    /// Tile-fused tier throughput in cells/second
    /// (`ReferenceExecutor::run_fused`, or `run_steps_fused` for the
    /// time-stepping rows); cells are counted identically to the other
    /// tiers (iteration-space cells × stencils × steps), so overlapped
    /// tile recompute shows up as cost, not as extra cells.
    pub fused_cells_per_s: f64,
    /// Tier-4 native-JIT throughput in cells/second
    /// (`ReferenceExecutor::run_jit`, or `run_steps_jit` for the
    /// time-stepping rows): the fused schedule with the per-stencil
    /// kernel sweeps compiled to machine code by the system C compiler.
    /// Falls back to the fused tier when the program is ineligible, so an
    /// ineligible workload records a jit ≈ fused measurement rather than
    /// a hole.
    pub jit_cells_per_s: f64,
}

impl ThroughputRow {
    /// Speedup of the compiled `Value` path over the interpreter.
    pub fn speedup(&self) -> f64 {
        self.compiled_cells_per_s / self.interpreted_cells_per_s
    }

    /// Additional speedup of the type-specialized kernels over the compiled
    /// `Value` path.
    pub fn typed_speedup(&self) -> f64 {
        self.typed_cells_per_s / self.compiled_cells_per_s
    }

    /// Additional speedup of the lane-batched sweep over the scalar typed
    /// kernels.
    pub fn simd_speedup(&self) -> f64 {
        self.simd_cells_per_s / self.typed_cells_per_s
    }

    /// Speedup of the tile-fused tier over the materializing lane-batched
    /// path (the default `run` / `run_steps`).
    pub fn fused_speedup(&self) -> f64 {
        self.fused_cells_per_s / self.simd_cells_per_s
    }

    /// Additional speedup of the native-JIT tier over the tile-fused
    /// bytecode sweep it replaces.
    pub fn jit_speedup(&self) -> f64 {
        self.jit_cells_per_s / self.fused_cells_per_s
    }
}

/// Seconds per iteration of `run` — one warm-up call, then repetition until
/// at least `budget` of wall clock has elapsed. The single measurement
/// methodology behind both the reported throughput numbers and the
/// acceptance-floor tests.
fn secs_per_iter(budget: std::time::Duration, mut run: impl FnMut()) -> f64 {
    use std::time::Instant;
    run();
    let mut iterations = 0u32;
    let start = Instant::now();
    loop {
        run();
        iterations += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    start.elapsed().as_secs_f64() / iterations as f64
}

fn measure_cells_per_s(cells: usize, run: impl FnMut()) -> f64 {
    cells as f64 / secs_per_iter(std::time::Duration::from_millis(200), run)
}

/// Measure reference-execution throughput (cells/second) of the
/// tree-walking evaluator against the compiled execution plan (both the
/// dynamically typed `Value` bytecode and the type-specialized kernels), on
/// the Jacobi 3D 64³ workload (all-f32 and all-f64), horizontal diffusion,
/// and an iterative Jacobi time loop driven by
/// `ReferenceExecutor::run_steps` (one compilation for all steps). `quick`
/// shrinks the domains for CI runs.
pub fn eval_throughput(quick: bool) -> Vec<ThroughputRow> {
    use stencilflow_expr::DataType;
    use stencilflow_reference::{generate_inputs, ReferenceExecutor};
    use stencilflow_workloads::jacobi3d_typed;
    let jacobi_shape: [usize; 3] = if quick { [32, 32, 32] } else { [64, 64, 64] };
    // §VIII-C-style linear chain: 8 stages of 8 operations on a domain
    // long enough that the materializing path streams every intermediate
    // through memory (the paper's 2^15×32×32 domain is shortened to keep
    // the interpreted baseline measurable).
    let chain_shape: [usize; 3] = if quick { [96, 32, 32] } else { [384, 32, 32] };
    let chain_spec = ChainSpec::new(8, 8).with_shape(&chain_shape);
    let workloads: Vec<(String, StencilProgram)> = vec![
        (
            format!("jacobi3d {0}^3 f32", jacobi_shape[0]),
            jacobi3d(2, &jacobi_shape, 1),
        ),
        (
            format!("jacobi3d {0}^3 f64", jacobi_shape[0]),
            jacobi3d_typed(2, &jacobi_shape, 1, DataType::Float64),
        ),
        (
            // The historical small-domain row: 8-cell rows keep every
            // lane batch on the mixed halo path and the sweep below the
            // parallel threshold, so its lane speedup is structurally
            // weak — see the `bench()` row below for a fair measurement.
            "horizontal_diffusion".to_string(),
            horizontal_diffusion(&HorizontalDiffusionSpec::small()),
        ),
        (
            {
                let [i, j, k] = HorizontalDiffusionSpec::bench().shape;
                format!("horizontal_diffusion {i}x{j}x{k}")
            },
            horizontal_diffusion(&HorizontalDiffusionSpec::bench()),
        ),
        (
            // The branchy workload: per-cell data-dependent ternaries that
            // lane-batch only through if-conversion to selects.
            format!("upwind3d {0}^3 f32", jacobi_shape[0]),
            upwind3d(2, &jacobi_shape, 1),
        ),
        (
            format!(
                "chain 8x8op [{},{},{}]",
                chain_shape[0], chain_shape[1], chain_shape[2]
            ),
            chain_program(&chain_spec),
        ),
    ];
    // Separate executors pin the kernel tier; each caches its compilation
    // across the repeated measurement runs. Tier measurement is bypassed
    // so the fused row measures the fused tier, not the router's pick.
    let simd_executor = ReferenceExecutor::new().with_tier_measurement(false);
    let typed_executor = ReferenceExecutor::new().with_lane_batching(false);
    let value_executor = ReferenceExecutor::new().with_typed_kernels(false);
    let mut rows: Vec<ThroughputRow> = workloads
        .into_iter()
        .map(|(workload, program)| {
            let inputs = generate_inputs(&program, 17);
            let cells = program.space().num_cells() * program.stencil_count();
            let interpreted = measure_cells_per_s(cells, || {
                let result = typed_executor.run_interpreted(&program, &inputs).unwrap();
                std::hint::black_box(&result);
            });
            let compiled = measure_cells_per_s(cells, || {
                let result = value_executor.run(&program, &inputs).unwrap();
                std::hint::black_box(&result);
            });
            let typed = measure_cells_per_s(cells, || {
                let result = typed_executor.run(&program, &inputs).unwrap();
                std::hint::black_box(&result);
            });
            let simd = measure_cells_per_s(cells, || {
                let result = simd_executor.run(&program, &inputs).unwrap();
                std::hint::black_box(&result);
            });
            let fused = measure_cells_per_s(cells, || {
                let result = simd_executor.run_fused(&program, &inputs).unwrap();
                std::hint::black_box(&result);
            });
            let jit = measure_cells_per_s(cells, || {
                let result = simd_executor.run_jit(&program, &inputs).unwrap();
                std::hint::black_box(&result);
            });
            ThroughputRow {
                workload,
                cells,
                interpreted_cells_per_s: interpreted,
                compiled_cells_per_s: compiled,
                typed_cells_per_s: typed,
                simd_cells_per_s: simd,
                fused_cells_per_s: fused,
                jit_cells_per_s: jit,
            }
        })
        .collect();

    // Iterative time loop: one Jacobi sweep ping-ponged through
    // `run_steps`, so every step after the first hits the compiled-program
    // cache. The interpreted baseline feeds the output back by hand.
    let steps = if quick { 4 } else { 8 };
    let program = jacobi3d(1, &jacobi_shape, 1);
    let inputs = generate_inputs(&program, 17);
    let cells = program.space().num_cells() * steps;
    let interpreted = measure_cells_per_s(cells, || {
        let mut work = inputs.clone();
        for _ in 0..steps {
            let result = typed_executor.run_interpreted(&program, &work).unwrap();
            work.insert("f0".to_string(), result.field("f1").unwrap().clone());
        }
        std::hint::black_box(&work);
    });
    let compiled = measure_cells_per_s(cells, || {
        let result = value_executor.run_steps(&program, &inputs, steps).unwrap();
        std::hint::black_box(&result);
    });
    let typed = measure_cells_per_s(cells, || {
        let result = typed_executor.run_steps(&program, &inputs, steps).unwrap();
        std::hint::black_box(&result);
    });
    let simd = measure_cells_per_s(cells, || {
        let result = simd_executor.run_steps(&program, &inputs, steps).unwrap();
        std::hint::black_box(&result);
    });
    let fused = measure_cells_per_s(cells, || {
        let result = simd_executor
            .run_steps_fused(&program, &inputs, steps)
            .unwrap();
        std::hint::black_box(&result);
    });
    let jit = measure_cells_per_s(cells, || {
        let result = simd_executor
            .run_steps_jit(&program, &inputs, steps)
            .unwrap();
        std::hint::black_box(&result);
    });
    rows.push(ThroughputRow {
        workload: format!("jacobi3d {0}^3 x{steps} steps", jacobi_shape[0]),
        cells,
        interpreted_cells_per_s: interpreted,
        compiled_cells_per_s: compiled,
        typed_cells_per_s: typed,
        simd_cells_per_s: simd,
        fused_cells_per_s: fused,
        jit_cells_per_s: jit,
    });
    rows
}

/// The sharded-execution measurement attached to the evaluation-throughput
/// document: zero-fault overhead of the sharded runtime against the
/// single-process fused tier on the jacobi3d time loop, plus the measured
/// halo traffic that benchmark reports compare against the
/// `stencilflow_hwmodel` link/roofline prediction.
#[derive(Debug, Clone)]
pub struct ShardedThroughput {
    /// Workload name (the jacobi3d time-stepping row).
    pub workload: String,
    /// Stencil-cell evaluations per run (iteration-space cells × steps).
    pub cells: usize,
    /// `std::thread::available_parallelism()` of the measuring host. The
    /// 4-shard floor is conditioned on this: shards can only run
    /// concurrently when the host actually has cores for them.
    pub host_threads: usize,
    /// Single-process fused-tier baseline (`run_steps_fused`) in cells/s.
    pub fused_cells_per_s: f64,
    /// Sharded runtime at 1 shard (no boundaries, no halo traffic).
    pub sharded1_cells_per_s: f64,
    /// Sharded runtime at 4 shards (three boundaries of halo traffic).
    pub sharded4_cells_per_s: f64,
    /// Halo payload bytes sent over one whole 4-shard run.
    pub halo_bytes_per_run: f64,
    /// Measured aggregate halo bandwidth of the 4-shard run in bytes/s.
    pub measured_halo_bytes_per_s: f64,
    /// Bytes touched per cell by the workload (for the roofline model).
    pub bytes_per_cell: f64,
    /// Operations per cell (for the roofline model).
    pub ops_per_cell: f64,
}

impl ShardedThroughput {
    /// Zero-fault overhead of the sharded runtime at 1 shard, as a
    /// fraction of the single-process fused tier.
    pub fn sharded1_ratio(&self) -> f64 {
        self.sharded1_cells_per_s / self.fused_cells_per_s
    }

    /// 4-shard throughput as a fraction of the single-process fused tier
    /// (> 1 means the shards scale; < 1 on hosts without 4 cores, where
    /// the shards time-slice and pay the halo/dilation tax).
    pub fn sharded4_ratio(&self) -> f64 {
        self.sharded4_cells_per_s / self.fused_cells_per_s
    }

    /// The `stencilflow_hwmodel` prediction this measurement is compared
    /// against: per-shard bandwidth/roofline bound at 4 shards plus the
    /// halo-link bandwidth of the paper's testbed.
    pub fn model_prediction(&self) -> stencilflow_hwmodel::ShardPrediction {
        stencilflow_hwmodel::ShardModel::paper_defaults().predict(
            4,
            self.bytes_per_cell,
            self.ops_per_cell,
            self.halo_bytes_per_run,
        )
    }
}

/// Measure the sharded runtime (`ReferenceExecutor::run_steps_sharded`)
/// against the single-process fused tier on the jacobi3d time loop — the
/// zero-fault overhead measurement behind the `--check-floors` sharded
/// gates — and capture the halo traffic of a 4-shard run for the
/// predicted-vs-measured bandwidth comparison in reports.
pub fn sharded_throughput(quick: bool) -> ShardedThroughput {
    use stencilflow_reference::{generate_inputs, ReferenceExecutor, ShardConfig};
    let jacobi_shape: [usize; 3] = if quick { [32, 32, 32] } else { [64, 64, 64] };
    let steps = if quick { 4 } else { 8 };
    let program = jacobi3d(1, &jacobi_shape, 1);
    let inputs = generate_inputs(&program, 17);
    let cells = program.space().num_cells() * steps;
    let executor = ReferenceExecutor::new().with_tier_measurement(false);
    let fused = measure_cells_per_s(cells, || {
        let result = executor.run_steps_fused(&program, &inputs, steps).unwrap();
        std::hint::black_box(&result);
    });
    let config1 = ShardConfig::shards(1);
    let sharded1 = measure_cells_per_s(cells, || {
        let outcome = executor
            .run_steps_sharded(&program, &inputs, steps, &config1)
            .unwrap();
        std::hint::black_box(&outcome);
    });
    let config4 = ShardConfig::shards(4);
    // One plain run first to harvest the halo-traffic report (and to make
    // sure the measured path is the genuine sharded runtime, not the
    // degraded fallback).
    let probe = executor
        .run_steps_sharded(&program, &inputs, steps, &config4)
        .unwrap();
    assert!(
        !probe.report.degraded,
        "4-shard probe degraded: {:?}",
        probe.report.degrade_reason
    );
    let halo_bytes = probe.report.halo_bytes_sent() as f64;
    let elapsed = probe.report.elapsed.as_secs_f64();
    let sharded4 = measure_cells_per_s(cells, || {
        let outcome = executor
            .run_steps_sharded(&program, &inputs, steps, &config4)
            .unwrap();
        std::hint::black_box(&outcome);
    });
    ShardedThroughput {
        workload: format!("jacobi3d {0}^3 x{steps} steps", jacobi_shape[0]),
        cells,
        host_threads: probe.report.host_threads,
        fused_cells_per_s: fused,
        sharded1_cells_per_s: sharded1,
        sharded4_cells_per_s: sharded4,
        halo_bytes_per_run: halo_bytes,
        measured_halo_bytes_per_s: if elapsed > 0.0 {
            halo_bytes / elapsed
        } else {
            0.0
        },
        // jacobi3d f32, radius 1: one 4-byte read + one 4-byte write per
        // cell (neighbours hit cache), ~8 flops per 7-point update.
        bytes_per_cell: 8.0,
        ops_per_cell: 8.0,
    }
}

/// Render the sharded-execution measurement, including the
/// predicted-vs-measured per-shard bandwidth comparison against the
/// `stencilflow_hwmodel` sharding model.
pub fn format_sharded(sharded: &ShardedThroughput) -> String {
    let mut out = String::new();
    out.push_str(
        "== Sharded execution (tier 3\u{00bd}): zero-fault overhead and hwmodel comparison ==\n",
    );
    out.push_str(&format!("{:<28} {}\n", "workload", sharded.workload));
    out.push_str(&format!(
        "{:<28} {}\n",
        "host threads", sharded.host_threads
    ));
    out.push_str(&format!(
        "{:<28} {:>12.3e}\n",
        "fused (1 process) c/s", sharded.fused_cells_per_s
    ));
    out.push_str(&format!(
        "{:<28} {:>12.3e}  ({:.2}x fused)\n",
        "sharded x1 c/s",
        sharded.sharded1_cells_per_s,
        sharded.sharded1_ratio()
    ));
    out.push_str(&format!(
        "{:<28} {:>12.3e}  ({:.2}x fused)\n",
        "sharded x4 c/s",
        sharded.sharded4_cells_per_s,
        sharded.sharded4_ratio()
    ));
    let prediction = sharded.model_prediction();
    let measured_per_shard = sharded.sharded4_cells_per_s / prediction.shards as f64;
    out.push_str(&format!(
        "{:<28} {:>12.3e} B/s predicted ({} shards), {:>10.3e} B/s measured halo traffic\n",
        "per-boundary link bandwidth",
        prediction.link_bytes_per_s,
        prediction.shards,
        sharded.measured_halo_bytes_per_s
    ));
    out.push_str(&format!(
        "{:<28} {:>12.3e} B/s per shard ({})\n",
        "hwmodel per-shard bandwidth",
        prediction.per_shard_bandwidth_bytes_per_s,
        if prediction.memory_bound {
            "memory-bound"
        } else {
            "compute-bound"
        }
    ));
    out.push_str(&format!(
        "{:<28} {:>12.3e} c/s bound, {:>10.3e} c/s measured per shard ({:.1}% of bound)\n",
        "hwmodel per-shard roofline",
        prediction.per_shard_cells_per_s,
        measured_per_shard,
        100.0 * prediction.measured_fraction(measured_per_shard)
    ));
    out
}

/// Render the evaluation-throughput comparison.
pub fn format_throughput(rows: &[ThroughputRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "== Evaluation throughput: interpreted vs. compiled vs. typed vs. SIMD vs. fused vs. jit reference execution ==\n",
    );
    out.push_str(&format!(
        "{:<30} {:>12} {:>16} {:>14} {:>14} {:>14} {:>14} {:>14} {:>9} {:>8} {:>7} {:>7} {:>7}\n",
        "workload",
        "cells/run",
        "interpreted c/s",
        "compiled c/s",
        "typed c/s",
        "simd c/s",
        "fused c/s",
        "jit c/s",
        "speedup",
        "typed x",
        "simd x",
        "fused x",
        "jit x"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<30} {:>12} {:>16.3e} {:>14.3e} {:>14.3e} {:>14.3e} {:>14.3e} {:>14.3e} {:>8.1}x {:>7.2}x {:>6.2}x {:>6.2}x {:>6.2}x\n",
            row.workload,
            row.cells,
            row.interpreted_cells_per_s,
            row.compiled_cells_per_s,
            row.typed_cells_per_s,
            row.simd_cells_per_s,
            row.fused_cells_per_s,
            row.jit_cells_per_s,
            row.speedup(),
            row.typed_speedup(),
            row.simd_speedup(),
            row.fused_speedup(),
            row.jit_speedup()
        ));
    }
    out
}

/// Serialize throughput rows (and the sharded-execution measurement, when
/// present) as a pretty-printed JSON document — the format of the
/// `BENCH_eval.json` baseline tracked in the repository. `check_floors`
/// requires the sharded section, so production documents should always
/// pass `Some`.
pub fn throughput_json(
    rows: &[ThroughputRow],
    sharded: Option<&ShardedThroughput>,
    quick: bool,
) -> String {
    use stencilflow_json::Json;
    let rows_json: Vec<Json> = rows
        .iter()
        .map(|row| {
            Json::Object(vec![
                ("workload".to_string(), Json::String(row.workload.clone())),
                ("cells_per_run".to_string(), Json::Number(row.cells as f64)),
                (
                    "interpreted_cells_per_s".to_string(),
                    Json::Number(row.interpreted_cells_per_s),
                ),
                (
                    "compiled_cells_per_s".to_string(),
                    Json::Number(row.compiled_cells_per_s),
                ),
                (
                    "typed_cells_per_s".to_string(),
                    Json::Number(row.typed_cells_per_s),
                ),
                (
                    "simd_cells_per_s".to_string(),
                    Json::Number(row.simd_cells_per_s),
                ),
                (
                    "fused_cells_per_s".to_string(),
                    Json::Number(row.fused_cells_per_s),
                ),
                (
                    "jit_cells_per_s".to_string(),
                    Json::Number(row.jit_cells_per_s),
                ),
                ("compiled_speedup".to_string(), Json::Number(row.speedup())),
                (
                    "typed_speedup".to_string(),
                    Json::Number(row.typed_speedup()),
                ),
                ("simd_speedup".to_string(), Json::Number(row.simd_speedup())),
                (
                    "fused_speedup".to_string(),
                    Json::Number(row.fused_speedup()),
                ),
                ("jit_speedup".to_string(), Json::Number(row.jit_speedup())),
            ])
        })
        .collect();
    let mut document = vec![
        (
            "benchmark".to_string(),
            Json::String("eval_throughput".to_string()),
        ),
        ("quick".to_string(), Json::Bool(quick)),
        ("rows".to_string(), Json::Array(rows_json)),
    ];
    if let Some(sharded) = sharded {
        let prediction = sharded.model_prediction();
        document.push((
            "sharded".to_string(),
            Json::Object(vec![
                (
                    "workload".to_string(),
                    Json::String(sharded.workload.clone()),
                ),
                (
                    "cells_per_run".to_string(),
                    Json::Number(sharded.cells as f64),
                ),
                (
                    "host_threads".to_string(),
                    Json::Number(sharded.host_threads as f64),
                ),
                (
                    "fused_cells_per_s".to_string(),
                    Json::Number(sharded.fused_cells_per_s),
                ),
                (
                    "sharded1_cells_per_s".to_string(),
                    Json::Number(sharded.sharded1_cells_per_s),
                ),
                (
                    "sharded4_cells_per_s".to_string(),
                    Json::Number(sharded.sharded4_cells_per_s),
                ),
                (
                    "sharded1_ratio".to_string(),
                    Json::Number(sharded.sharded1_ratio()),
                ),
                (
                    "sharded4_ratio".to_string(),
                    Json::Number(sharded.sharded4_ratio()),
                ),
                (
                    "halo_bytes_per_run".to_string(),
                    Json::Number(sharded.halo_bytes_per_run),
                ),
                (
                    "measured_halo_bytes_per_s".to_string(),
                    Json::Number(sharded.measured_halo_bytes_per_s),
                ),
                (
                    "predicted_link_bytes_per_s".to_string(),
                    Json::Number(prediction.link_bytes_per_s),
                ),
                (
                    "predicted_per_shard_bandwidth_bytes_per_s".to_string(),
                    Json::Number(prediction.per_shard_bandwidth_bytes_per_s),
                ),
                (
                    "predicted_per_shard_cells_per_s".to_string(),
                    Json::Number(prediction.per_shard_cells_per_s),
                ),
            ]),
        ));
    }
    Json::Object(document).to_string_pretty()
}

/// Check the kernel-tier speedup floors recorded in a `bench_eval` JSON
/// document (the CI gate behind `bench_eval --check-floors`). The floors
/// are applied to the `jacobi3d*` rows — the flagship typed/lane workloads
/// — to the `upwind3d*` rows, whose data-dependent ternaries only
/// lane-batch through if-conversion (their `simd_speedup` floor gates the
/// optimizer end to end), and to the **fused-tier** rows: the `chain*` row
/// must beat the materializing path by the tentpole factor and the
/// time-stepping (`* steps`) row by the temporal-blocking factor.
/// The `jacobi3d*` rows additionally gate the Tier-4 native JIT: the
/// compiled-C sweep must not lose to the fused bytecode sweep it
/// replaces (`jit_speedup` >= 1.0x on full-mode baselines).
/// `horizontal_diffusion` rows carry no floors (the small-domain row is
/// structurally lane-hostile and documents why; the larger row measures
/// the tier fairly). Quick-mode documents (small domains on noisy shared
/// CI runners) use looser floors than full-mode baselines.
///
/// The `sharded` section gates the zero-fault overhead of the sharded
/// runtime: 1-shard throughput must stay within a constant factor of the
/// single-process fused tier, and the 4-shard floor is conditioned on the
/// recorded `host_threads` — on a 4+-core host the shards must actually
/// scale (≥ 1.5x full mode), while on a smaller host they time-slice and
/// only the bounded overhead floor applies.
///
/// # Errors
///
/// Returns a description of every violated floor (or of a malformed
/// document); `Ok` carries the human-readable summary of the checks passed.
pub fn check_floors(json_text: &str) -> Result<String, String> {
    let parsed =
        stencilflow_json::parse(json_text).map_err(|e| format!("invalid benchmark JSON: {e:?}"))?;
    let quick = parsed
        .get("quick")
        .and_then(|v| v.as_bool())
        .ok_or("benchmark JSON is missing the `quick` flag")?;
    // Floors deliberately sit well below healthy measurements (quick mode
    // runs 32^3 domains on noisy shared runners): a regression that halves
    // a tier's throughput still trips them, ordinary jitter does not.
    let (compiled_floor, typed_floor, simd_floor) = if quick {
        (3.0, 1.2, 1.2)
    } else {
        (4.0, 1.3, 1.5)
    };
    // The branchy rows gate the if-conversion payoff: the acceptance
    // criterion is >= 1.5x lane-over-scalar on the full-mode baseline.
    let branchy_simd_floor = if quick { 1.2 } else { 1.5 };
    // The fused-tier acceptance criteria: >= 2x on the 8-stage chain and
    // >= 1.5x on the jacobi3d time loop over the materializing path
    // (full-mode baselines; quick floors absorb shared-runner jitter).
    let chain_fused_floor = if quick { 1.25 } else { 2.0 };
    let steps_fused_floor = if quick { 1.1 } else { 1.5 };
    // The Tier-4 acceptance criterion: the natively compiled sweep must
    // not lose to the fused bytecode sweep it replaces on the flagship
    // jacobi3d rows (>= 1.0x full mode; the quick floor absorbs the
    // small-domain FFI-call overhead and shared-runner jitter).
    let jit_floor = if quick { 0.7 } else { 1.0 };
    let rows = parsed
        .get("rows")
        .and_then(|v| v.as_array())
        .ok_or("benchmark JSON is missing `rows`")?;
    let mut failures = Vec::new();
    let mut summary = String::new();
    let mut checked = 0usize;
    let mut branchy_checked = 0usize;
    let mut fused_checked = 0usize;
    for row in rows {
        let workload = row
            .get("workload")
            .and_then(|v| v.as_str())
            .unwrap_or("<unnamed>")
            .to_string();
        let gates: Vec<(&str, f64)> = if workload.starts_with("jacobi3d") {
            checked += 1;
            let mut gates = vec![
                ("compiled_speedup", compiled_floor),
                ("typed_speedup", typed_floor),
                ("simd_speedup", simd_floor),
                ("jit_speedup", jit_floor),
            ];
            if workload.contains("steps") {
                fused_checked += 1;
                gates.push(("fused_speedup", steps_fused_floor));
            }
            gates
        } else if workload.starts_with("upwind3d") {
            branchy_checked += 1;
            vec![
                ("compiled_speedup", compiled_floor),
                ("simd_speedup", branchy_simd_floor),
            ]
        } else if workload.starts_with("chain") {
            fused_checked += 1;
            vec![
                ("compiled_speedup", compiled_floor),
                ("fused_speedup", chain_fused_floor),
            ]
        } else {
            continue;
        };
        for (key, floor) in gates {
            match row.get(key).and_then(|v| v.as_f64()) {
                Some(value) if value >= floor => {
                    summary.push_str(&format!("ok: {workload}: {key} {value:.2} >= {floor:.2}\n"));
                }
                Some(value) => failures.push(format!(
                    "{workload}: {key} {value:.2} below floor {floor:.2}"
                )),
                None => failures.push(format!("{workload}: missing `{key}`")),
            }
        }
    }
    if checked == 0 {
        return Err("no jacobi3d rows to check in benchmark JSON".to_string());
    }
    if branchy_checked == 0 {
        return Err("no upwind3d rows to check in benchmark JSON".to_string());
    }
    if fused_checked < 2 {
        return Err("benchmark JSON is missing the fused-tier rows (chain and steps)".to_string());
    }
    // The sharded-runtime zero-fault overhead gates.
    let sharded = parsed
        .get("sharded")
        .ok_or("benchmark JSON is missing the `sharded` section")?;
    let host_threads = sharded
        .get("host_threads")
        .and_then(|v| v.as_usize())
        .ok_or("sharded section is missing `host_threads`")?;
    // Healthy 1-shard runs measure ~1.0x the fused tier (the acceptance
    // criterion is >= 0.9x); the floors sit below that by the same noise
    // margin the kernel-tier floors use, so jitter on shared runners does
    // not trip them but a runtime regression that taxes every run does.
    let sharded1_floor = if quick { 0.6 } else { 0.8 };
    let sharded4_floor = if host_threads >= 4 {
        // Enough cores for real concurrency: the shards must scale.
        if quick {
            1.2
        } else {
            1.5
        }
    } else {
        // Time-sliced host: only the bounded halo/dilation overhead floor
        // applies (window drops to 1, so temporal blocking is lost too).
        if quick {
            0.25
        } else {
            0.4
        }
    };
    for (key, floor) in [
        ("sharded1_ratio", sharded1_floor),
        ("sharded4_ratio", sharded4_floor),
    ] {
        match sharded.get(key).and_then(|v| v.as_f64()) {
            Some(value) if value >= floor => {
                summary.push_str(&format!(
                    "ok: sharded ({host_threads} host threads): {key} {value:.2} >= {floor:.2}\n"
                ));
            }
            Some(value) => failures.push(format!(
                "sharded ({host_threads} host threads): {key} {value:.2} below floor {floor:.2}"
            )),
            None => failures.push(format!("sharded: missing `{key}`")),
        }
    }
    if failures.is_empty() {
        Ok(summary)
    } else {
        Err(failures.join("\n"))
    }
}

/// Run the Fig. 4 deadlock demonstration: the listing-1 fork/join program
/// deadlocks with unit-depth channels and streams to completion with the
/// analysis-computed depths. Returns `(deadlocked_without, completed_with)`.
pub fn deadlock_demo() -> (bool, bool) {
    use stencilflow_sim::{SimConfig, SimOutcome, Simulator};
    let program = stencilflow_workloads::listing1::listing1_with_shape(&[6, 6, 6]);
    let inputs = stencilflow_reference::generate_inputs(&program, 1);
    let config = AnalysisConfig::paper_defaults();
    let starved = Simulator::build(&program, &config, &SimConfig::with_minimal_channels())
        .unwrap()
        .run(&inputs)
        .unwrap();
    let buffered = Simulator::build(&program, &config, &SimConfig::default())
        .unwrap()
        .run(&inputs)
        .unwrap();
    (
        starved.outcome == SimOutcome::Deadlocked,
        buffered.outcome == SimOutcome::Completed,
    )
}

/// Multi-device scaling summary used by Fig. 14/15 and the examples: ops per
/// device and network feasibility for a chain split over `devices` FPGAs.
pub fn multi_device_summary(devices: usize) -> (Vec<u64>, bool) {
    let spec = ChainSpec::new(devices * 16, 8).with_shape(&[1 << 11, 32, 32]);
    let program = chain_program(&spec);
    let plan = MultiDevicePlan::partition(&program, &PartitionConfig::devices(devices))
        .expect("partitioning succeeds");
    (plan.ops_per_device(&program), plan.network_feasible())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_series_shape_matches_figure14() {
        let points = scaling_series(1, 8, true);
        // Single-device performance grows with ops/cycle.
        let single: Vec<&ScalingPoint> = points.iter().filter(|p| p.devices == 1).collect();
        assert!(single.len() >= 6);
        assert!(single.last().unwrap().gops > single.first().unwrap().gops);
        // Paper: ~264 GOp/s at 896 Op/cycle on one device.
        let best = single.iter().map(|p| p.gops).fold(0.0, f64::max);
        assert!((200.0..320.0).contains(&best), "best single = {best}");
        // Multi-device rows scale close to linearly.
        let eight: Vec<&ScalingPoint> = points.iter().filter(|p| p.devices == 8).collect();
        assert!(eight[0].gops > best * 5.0);
        assert!(eight[0].gops < best * 8.0);
    }

    #[test]
    fn vectorized_series_outperforms_scalar() {
        let scalar = scaling_series(1, 8, true);
        let vectorized = scaling_series(4, 24, true);
        let best = |pts: &[ScalingPoint]| {
            pts.iter()
                .filter(|p| p.devices == 1)
                .map(|p| p.gops)
                .fold(0.0, f64::max)
        };
        assert!(best(&vectorized) > best(&scalar) * 1.5);
    }

    #[test]
    fn bandwidth_series_flattens_as_in_figure16() {
        let points = bandwidth_series();
        let scalar_48 = points
            .iter()
            .find(|p| p.operands_per_cycle == 48 && p.vector_width == 1)
            .unwrap();
        assert!((scalar_48.effective_gbs - 36.4).abs() < 0.5);
        let vector_48 = points
            .iter()
            .find(|p| p.operands_per_cycle == 48 && p.vector_width == 4)
            .unwrap();
        assert!((vector_48.effective_gbs - 58.3).abs() < 0.5);
        assert!(vector_48.efficiency > scalar_48.efficiency);
    }

    #[test]
    fn table2_preserves_platform_ordering() {
        let (rows, analysis) = table2_rows();
        let get = |name: &str| rows.iter().find(|r| r.platform.contains(name)).unwrap();
        let fpga = get("Stratix 10");
        let inf = get("infinite");
        let xeon = get("Xeon");
        let p100 = get("P100");
        let v100 = get("V100");
        // Paper ordering: Xeon < FPGA < P100 < V100, and the infinite-BW FPGA
        // beats the P100 but not the V100.
        assert!(xeon.gops < fpga.gops);
        assert!(fpga.gops < p100.gops * 1.6); // FPGA and P100 are same order of magnitude
        assert!(p100.gops < v100.gops);
        assert!(inf.gops > p100.gops);
        assert!(inf.gops < v100.gops);
        assert!(analysis.contains("arithmetic intensity"));
    }

    #[test]
    fn deadlock_demo_reproduces_figure4() {
        let (deadlocked, completed) = deadlock_demo();
        assert!(deadlocked);
        assert!(completed);
    }

    /// The shared measurement methodology with a slightly longer window for
    /// the acceptance-floor ratios.
    fn measure_secs_per_iter(run: &dyn Fn()) -> f64 {
        secs_per_iter(std::time::Duration::from_millis(300), run)
    }

    #[test]
    fn kernel_tier_speedup_floors_hold() {
        // Acceptance floors of the compiled-kernel and type-specialization
        // work, measured once per tier on the all-f32 Jacobi 3D workload,
        // single-threaded so the ratios measure the kernel tiers alone:
        //
        // * the default `run` path (typed kernels) must beat the
        //   tree-walking evaluator by >= 5x (the PR-1 criterion, which the
        //   typed tier clears with wide margin);
        // * the dynamically typed `Value` bytecode must beat the evaluator
        //   by >= 3.5x on its own (its release-build ratio is ~7x; the
        //   opt-level-2 test profile and CI contention eat part of that);
        // * the typed kernels must add >= 1.5x over the `Value` bytecode
        //   (the PR-2 criterion).
        use stencilflow_reference::{generate_inputs, ReferenceExecutor};
        let program = jacobi3d(2, &[32, 32, 32], 1);
        let inputs = generate_inputs(&program, 17);
        let value_executor = ReferenceExecutor::new()
            .with_max_threads(1)
            .with_typed_kernels(false);
        let typed_executor = ReferenceExecutor::new().with_max_threads(1);
        let interpreted = measure_secs_per_iter(&|| {
            std::hint::black_box(typed_executor.run_interpreted(&program, &inputs).unwrap());
        });
        let value_path = measure_secs_per_iter(&|| {
            std::hint::black_box(value_executor.run(&program, &inputs).unwrap());
        });
        let typed_path = measure_secs_per_iter(&|| {
            std::hint::black_box(typed_executor.run(&program, &inputs).unwrap());
        });
        let typed_vs_interpreted = interpreted / typed_path;
        assert!(
            typed_vs_interpreted >= 5.0,
            "default run path only {typed_vs_interpreted:.1}x faster than interpreter"
        );
        let value_vs_interpreted = interpreted / value_path;
        assert!(
            value_vs_interpreted >= 3.5,
            "Value bytecode only {value_vs_interpreted:.1}x faster than interpreter"
        );
        let typed_vs_value = value_path / typed_path;
        assert!(
            typed_vs_value >= 1.5,
            "typed kernels only {typed_vs_value:.2}x faster than the Value path"
        );
    }

    #[test]
    fn lane_tier_speedup_floor_holds() {
        // Acceptance floor of the lane-batched (SIMD) sweep: >= 1.5x over
        // the scalar typed kernels on the all-f32 Jacobi 3D 64^3 workload,
        // single-threaded so the ratio measures the kernel tier alone (the
        // release-build ratio is >3x; the opt-level-2 test profile and CI
        // contention eat part of that).
        use stencilflow_reference::{generate_inputs, ReferenceExecutor};
        let program = jacobi3d(2, &[64, 64, 64], 1);
        let inputs = generate_inputs(&program, 17);
        let scalar_executor = ReferenceExecutor::new()
            .with_max_threads(1)
            .with_lane_batching(false);
        let lane_executor = ReferenceExecutor::new().with_max_threads(1);
        // The workload must actually dispatch to the lane tier.
        let compiled = lane_executor.prepare(&program).unwrap();
        assert_eq!(compiled.lane_stencil_count(), compiled.stencil_count());
        let scalar = measure_secs_per_iter(&|| {
            std::hint::black_box(scalar_executor.run(&program, &inputs).unwrap());
        });
        let lanes = measure_secs_per_iter(&|| {
            std::hint::black_box(lane_executor.run(&program, &inputs).unwrap());
        });
        let simd_vs_typed = scalar / lanes;
        assert!(
            simd_vs_typed >= 1.5,
            "lane-batched sweep only {simd_vs_typed:.2}x faster than scalar typed kernels"
        );
    }

    #[test]
    fn check_floors_accepts_healthy_and_rejects_regressed_documents() {
        let sharded = |host_threads: usize, s1: f64, s4: f64| ShardedThroughput {
            workload: "jacobi3d 32^3 x4 steps".to_string(),
            cells: 1 << 17,
            host_threads,
            fused_cells_per_s: 32.0e6,
            sharded1_cells_per_s: 32.0e6 * s1,
            sharded4_cells_per_s: 32.0e6 * s4,
            halo_bytes_per_run: 1.0e6,
            measured_halo_bytes_per_s: 5.0e8,
            bytes_per_cell: 8.0,
            ops_per_cell: 8.0,
        };
        let healthy_sharded = sharded(1, 0.95, 0.6);
        let document = |jacobi_simd: f64,
                        upwind_simd: f64,
                        chain_fused: f64,
                        steps_fused: f64,
                        jacobi_jit: f64| {
            let rows = vec![
                ThroughputRow {
                    workload: "jacobi3d 32^3 f32".to_string(),
                    cells: 1 << 15,
                    interpreted_cells_per_s: 1.0e6,
                    compiled_cells_per_s: 8.0e6,
                    typed_cells_per_s: 16.0e6,
                    simd_cells_per_s: 16.0e6 * jacobi_simd,
                    fused_cells_per_s: 16.0e6 * jacobi_simd,
                    jit_cells_per_s: 16.0e6 * jacobi_simd * jacobi_jit,
                },
                ThroughputRow {
                    workload: "upwind3d 32^3 f32".to_string(),
                    cells: 1 << 15,
                    interpreted_cells_per_s: 1.0e6,
                    compiled_cells_per_s: 7.0e6,
                    typed_cells_per_s: 12.0e6,
                    simd_cells_per_s: 12.0e6 * upwind_simd,
                    fused_cells_per_s: 12.0e6 * upwind_simd,
                    jit_cells_per_s: 12.0e6 * upwind_simd,
                },
                ThroughputRow {
                    workload: "chain 8x8op [96,32,32]".to_string(),
                    cells: 1 << 15,
                    interpreted_cells_per_s: 1.0e6,
                    compiled_cells_per_s: 7.0e6,
                    typed_cells_per_s: 14.0e6,
                    simd_cells_per_s: 20.0e6,
                    fused_cells_per_s: 20.0e6 * chain_fused,
                    jit_cells_per_s: 20.0e6 * chain_fused,
                },
                ThroughputRow {
                    workload: "jacobi3d 32^3 x4 steps".to_string(),
                    cells: 1 << 17,
                    interpreted_cells_per_s: 1.0e6,
                    compiled_cells_per_s: 8.0e6,
                    typed_cells_per_s: 16.0e6,
                    simd_cells_per_s: 32.0e6,
                    fused_cells_per_s: 32.0e6 * steps_fused,
                    jit_cells_per_s: 32.0e6 * steps_fused * jacobi_jit,
                },
            ];
            throughput_json(&rows, Some(&healthy_sharded), true)
        };
        assert!(check_floors(&document(2.0, 1.8, 1.6, 1.3, 1.2)).is_ok());
        let err = check_floors(&document(1.0, 1.8, 1.6, 1.3, 1.2)).unwrap_err();
        assert!(err.contains("simd_speedup"), "unexpected error: {err}");
        // A regressed branchy row trips its own gate.
        let err = check_floors(&document(2.0, 1.0, 1.6, 1.3, 1.2)).unwrap_err();
        assert!(
            err.contains("upwind3d") && err.contains("simd_speedup"),
            "unexpected error: {err}"
        );
        // Regressed fused rows trip the fused gates.
        let err = check_floors(&document(2.0, 1.8, 1.0, 1.3, 1.2)).unwrap_err();
        assert!(
            err.contains("chain") && err.contains("fused_speedup"),
            "unexpected error: {err}"
        );
        let err = check_floors(&document(2.0, 1.8, 1.6, 1.0, 1.2)).unwrap_err();
        assert!(
            err.contains("steps") && err.contains("fused_speedup"),
            "unexpected error: {err}"
        );
        // A native sweep losing to the fused bytecode sweep trips the
        // Tier-4 floor on the jacobi rows.
        let err = check_floors(&document(2.0, 1.8, 1.6, 1.3, 0.5)).unwrap_err();
        assert!(
            err.contains("jacobi3d") && err.contains("jit_speedup"),
            "unexpected error: {err}"
        );
        // Documents without jacobi, upwind, or fused rows (or unparseable
        // ones) are errors, not silent passes.
        assert!(check_floors("{\"quick\": true, \"rows\": []}").is_err());
        let jacobi_only = throughput_json(
            &[ThroughputRow {
                workload: "jacobi3d 32^3 f32".to_string(),
                cells: 1 << 15,
                interpreted_cells_per_s: 1.0e6,
                compiled_cells_per_s: 8.0e6,
                typed_cells_per_s: 16.0e6,
                simd_cells_per_s: 32.0e6,
                fused_cells_per_s: 32.0e6,
                jit_cells_per_s: 40.0e6,
            }],
            Some(&healthy_sharded),
            true,
        );
        assert!(check_floors(&jacobi_only).unwrap_err().contains("upwind3d"));
        assert!(check_floors("not json").is_err());
    }

    #[test]
    fn check_floors_gates_the_sharded_section() {
        let sharded = |host_threads: usize, s1: f64, s4: f64| ShardedThroughput {
            workload: "jacobi3d 32^3 x4 steps".to_string(),
            cells: 1 << 17,
            host_threads,
            fused_cells_per_s: 32.0e6,
            sharded1_cells_per_s: 32.0e6 * s1,
            sharded4_cells_per_s: 32.0e6 * s4,
            halo_bytes_per_run: 1.0e6,
            measured_halo_bytes_per_s: 5.0e8,
            bytes_per_cell: 8.0,
            ops_per_cell: 8.0,
        };
        let healthy_rows = vec![
            ThroughputRow {
                workload: "jacobi3d 32^3 f32".to_string(),
                cells: 1 << 15,
                interpreted_cells_per_s: 1.0e6,
                compiled_cells_per_s: 8.0e6,
                typed_cells_per_s: 16.0e6,
                simd_cells_per_s: 32.0e6,
                fused_cells_per_s: 32.0e6,
                jit_cells_per_s: 40.0e6,
            },
            ThroughputRow {
                workload: "upwind3d 32^3 f32".to_string(),
                cells: 1 << 15,
                interpreted_cells_per_s: 1.0e6,
                compiled_cells_per_s: 7.0e6,
                typed_cells_per_s: 12.0e6,
                simd_cells_per_s: 21.6e6,
                fused_cells_per_s: 21.6e6,
                jit_cells_per_s: 21.6e6,
            },
            ThroughputRow {
                workload: "chain 8x8op [96,32,32]".to_string(),
                cells: 1 << 15,
                interpreted_cells_per_s: 1.0e6,
                compiled_cells_per_s: 7.0e6,
                typed_cells_per_s: 14.0e6,
                simd_cells_per_s: 20.0e6,
                fused_cells_per_s: 32.0e6,
                jit_cells_per_s: 32.0e6,
            },
            ThroughputRow {
                workload: "jacobi3d 32^3 x4 steps".to_string(),
                cells: 1 << 17,
                interpreted_cells_per_s: 1.0e6,
                compiled_cells_per_s: 8.0e6,
                typed_cells_per_s: 16.0e6,
                simd_cells_per_s: 32.0e6,
                fused_cells_per_s: 41.6e6,
                jit_cells_per_s: 50.0e6,
            },
        ];
        let document = |sh: &ShardedThroughput| throughput_json(&healthy_rows, Some(sh), true);
        // Healthy single-core document passes under the time-sliced floor.
        assert!(check_floors(&document(&sharded(1, 0.95, 0.6))).is_ok());
        // Missing section is an error, not a silent pass.
        let err = check_floors(&throughput_json(&healthy_rows, None, true)).unwrap_err();
        assert!(err.contains("sharded"), "unexpected error: {err}");
        // A regressed 1-shard overhead trips its gate.
        let err = check_floors(&document(&sharded(1, 0.5, 0.6))).unwrap_err();
        assert!(err.contains("sharded1_ratio"), "unexpected error: {err}");
        // On a single-core host, 0.35x at 4 shards passes (time-sliced
        // floor) ...
        assert!(check_floors(&document(&sharded(1, 0.95, 0.35))).is_ok());
        // ... but the same ratio on a 8-core host violates the scaling
        // floor: with real cores the shards must actually scale.
        let err = check_floors(&document(&sharded(8, 0.95, 0.35))).unwrap_err();
        assert!(err.contains("sharded4_ratio"), "unexpected error: {err}");
        assert!(check_floors(&document(&sharded(8, 0.95, 1.4))).is_ok());
    }

    #[test]
    fn branchy_lane_tier_speedup_floor_holds() {
        // Acceptance floor of the if-conversion work: the lane-batched
        // sweep must beat the scalar typed kernels by >= 1.5x on the
        // branchy upwind workload — a kernel that, before the pass
        // pipeline, could not lane-batch at all (its ternaries lowered to
        // jumps and `supports_lanes` rejected them). Single-threaded so
        // the ratio measures the kernel tier alone.
        use stencilflow_reference::{generate_inputs, ReferenceExecutor};
        let program = upwind3d(2, &[64, 64, 64], 1);
        let inputs = generate_inputs(&program, 17);
        let scalar_executor = ReferenceExecutor::new()
            .with_max_threads(1)
            .with_lane_batching(false);
        let lane_executor = ReferenceExecutor::new().with_max_threads(1);
        // The branchy workload must actually dispatch to the lane tier.
        let compiled = lane_executor.prepare(&program).unwrap();
        assert_eq!(compiled.lane_stencil_count(), compiled.stencil_count());
        let scalar = measure_secs_per_iter(&|| {
            std::hint::black_box(scalar_executor.run(&program, &inputs).unwrap());
        });
        let lanes = measure_secs_per_iter(&|| {
            std::hint::black_box(lane_executor.run(&program, &inputs).unwrap());
        });
        let simd_vs_typed = scalar / lanes;
        assert!(
            simd_vs_typed >= 1.5,
            "lane-batched branchy sweep only {simd_vs_typed:.2}x faster than scalar typed kernels"
        );
    }

    /// Median ratio of interleaved paired measurements (baseline time /
    /// candidate time): robust against the load swings of shared CI
    /// runners, which a single sequential pair is not.
    fn median_paired_speedup(
        budget: std::time::Duration,
        mut fast: impl FnMut(),
        mut slow: impl FnMut(),
    ) -> f64 {
        use std::time::Instant;
        fast();
        slow();
        let once = |f: &mut dyn FnMut()| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        };
        let mut ratios = Vec::new();
        let start = Instant::now();
        loop {
            let tf = once(&mut fast);
            let ts = once(&mut slow);
            ratios.push(ts / tf);
            if start.elapsed() >= budget && ratios.len() >= 5 {
                break;
            }
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        ratios[ratios.len() / 2]
    }

    #[test]
    fn fused_chain_speedup_floor_holds() {
        // Acceptance floor of the tile-fused tier on the §VIII-C chain
        // workload: the fused sweep must beat the per-stencil
        // materializing path. The BENCH_eval.json baseline records the
        // full >= 2x criterion on the benchmark domain; this in-crate
        // floor uses a reduced domain and a conservative bound so shared
        // CI runners do not flake.
        use stencilflow_reference::{generate_inputs, ReferenceExecutor};
        let chain = chain_program(&ChainSpec::new(8, 8).with_shape(&[192, 32, 32]));
        let inputs = generate_inputs(&chain, 17);
        let executor = ReferenceExecutor::new()
            .with_max_threads(1)
            .with_tier_measurement(false);
        let compiled = executor.prepare(&chain).unwrap();
        assert!(
            compiled.fused_tier_supported(),
            "{:?}",
            compiled.fused_fallback_reason()
        );
        let speedup = median_paired_speedup(
            std::time::Duration::from_millis(1500),
            || {
                std::hint::black_box(executor.run_fused(&chain, &inputs).unwrap());
            },
            || {
                std::hint::black_box(executor.run(&chain, &inputs).unwrap());
            },
        );
        assert!(
            speedup >= 1.5,
            "fused chain sweep only {speedup:.2}x over the materializing path"
        );
    }

    #[test]
    fn fused_steps_speedup_floor_holds() {
        // Acceptance floor of temporal blocking: fused time stepping must
        // beat the materializing ping-pong stepper on the jacobi3d time
        // loop (full criterion >= 1.5x on the 64^3 x8 baseline; reduced
        // domain and conservative bound here, as above).
        use stencilflow_reference::{generate_inputs, ReferenceExecutor};
        let program = jacobi3d(1, &[64, 64, 64], 1);
        let inputs = generate_inputs(&program, 17);
        let executor = ReferenceExecutor::new()
            .with_max_threads(1)
            .with_tier_measurement(false);
        assert!(executor.prepare(&program).unwrap().fused_steps_supported());
        let speedup = median_paired_speedup(
            std::time::Duration::from_millis(1500),
            || {
                std::hint::black_box(executor.run_steps_fused(&program, &inputs, 8).unwrap());
            },
            || {
                std::hint::black_box(executor.run_steps(&program, &inputs, 8).unwrap());
            },
        );
        assert!(
            speedup >= 1.2,
            "fused time stepping only {speedup:.2}x over the materializing stepper"
        );
    }

    #[test]
    fn repeated_time_stepping_compiles_exactly_once() {
        use stencilflow_reference::{generate_inputs, ReferenceExecutor};
        let program = jacobi3d(1, &[8, 8, 8], 1);
        let inputs = generate_inputs(&program, 3);
        let executor = ReferenceExecutor::new();
        executor.run_steps(&program, &inputs, 5).unwrap();
        executor.run(&program, &inputs).unwrap();
        executor.run_steps(&program, &inputs, 3).unwrap();
        assert_eq!(executor.compile_count(), 1);
    }

    #[test]
    fn formatting_helpers_produce_tables() {
        let points = scaling_series(1, 8, true);
        assert!(format_scaling(&points, "Fig 14").contains("ops/cycle"));
        assert!(format_bandwidth(&bandwidth_series()).contains("GB/s"));
        let rows = table1_rows(true);
        assert!(format_table1(&rows).contains("Jacobi 3D"));
    }

    #[test]
    fn throughput_json_round_trips() {
        let rows = vec![ThroughputRow {
            workload: "jacobi3d 8^3 f32".to_string(),
            cells: 1024,
            interpreted_cells_per_s: 1.0e6,
            compiled_cells_per_s: 7.0e6,
            typed_cells_per_s: 1.5e7,
            simd_cells_per_s: 3.0e7,
            fused_cells_per_s: 4.5e7,
            jit_cells_per_s: 9.0e7,
        }];
        let sharded = ShardedThroughput {
            workload: "jacobi3d 8^3 x4 steps".to_string(),
            cells: 2048,
            host_threads: 1,
            fused_cells_per_s: 4.0e7,
            sharded1_cells_per_s: 3.8e7,
            sharded4_cells_per_s: 2.4e7,
            halo_bytes_per_run: 4096.0,
            measured_halo_bytes_per_s: 1.0e6,
            bytes_per_cell: 8.0,
            ops_per_cell: 8.0,
        };
        let text = throughput_json(&rows, Some(&sharded), true);
        let parsed = stencilflow_json::parse(&text).unwrap();
        assert_eq!(parsed.get("quick").and_then(|v| v.as_bool()), Some(true));
        let sharded_json = parsed.get("sharded").unwrap();
        assert_eq!(
            sharded_json.get("host_threads").and_then(|v| v.as_usize()),
            Some(1)
        );
        let ratio = sharded_json
            .get("sharded1_ratio")
            .and_then(|v| v.as_f64())
            .unwrap();
        assert!((ratio - 0.95).abs() < 1e-9);
        // The hwmodel prediction rides along for the report comparison:
        // 4 words/cycle x 2 links x 300 MHz x 4 B = 9.6 GB/s.
        let link = sharded_json
            .get("predicted_link_bytes_per_s")
            .and_then(|v| v.as_f64())
            .unwrap();
        assert!((link - 9.6e9).abs() < 1e6);
        let row = &parsed.get("rows").unwrap().as_array().unwrap()[0];
        assert_eq!(
            row.get("workload").and_then(|v| v.as_str()),
            Some("jacobi3d 8^3 f32")
        );
        assert_eq!(
            row.get("cells_per_run").and_then(|v| v.as_usize()),
            Some(1024)
        );
        let typed_speedup = row.get("typed_speedup").and_then(|v| v.as_f64()).unwrap();
        assert!((typed_speedup - 1.5e7 / 7.0e6).abs() < 1e-9);
        let simd_speedup = row.get("simd_speedup").and_then(|v| v.as_f64()).unwrap();
        assert!((simd_speedup - 2.0).abs() < 1e-9);
        let fused_speedup = row.get("fused_speedup").and_then(|v| v.as_f64()).unwrap();
        assert!((fused_speedup - 1.5).abs() < 1e-9);
        let jit_speedup = row.get("jit_speedup").and_then(|v| v.as_f64()).unwrap();
        assert!((jit_speedup - 2.0).abs() < 1e-9);
    }
}
