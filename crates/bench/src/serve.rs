//! The multi-tenant service-layer benchmark (`bench_serve`): sustained
//! aggregate throughput and per-job latency under a seeded mix of
//! thousands of small jobs plus a few large ones, with the zero
//! steady-state allocation property measured rather than assumed.
//!
//! Methodology:
//!
//! 1. Generate the deterministic [`JobMixSpec`] stream (large jobs sit in
//!    the front quarter, so small jobs queue behind them and the p99 small
//!    latency directly observes scheduler fairness).
//! 2. Materialize each tenant's input grids once and share them `Arc`'d
//!    across every job that reuses the template — the service must not
//!    depend on caller-side copies.
//! 3. Run one warmup batch: automatic tier selection measures each
//!    fingerprint, the buffer pools fill, the JIT compiles (if present).
//! 4. Run the measured batches, recycling every result; the steady-state
//!    counters (`pool_misses`, `mask_misses`, `compiles`) must not move
//!    from the post-warmup snapshot. That delta, the sustained Mcells/s,
//!    and the latency percentiles go into `BENCH_serve.json`, which
//!    `bench_serve --check-floors` gates in CI.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;
use stencilflow_json::Json;
use stencilflow_reference::{
    generate_inputs, Grid, JobSpec, ServeConfig, ServeExecutor, TierChoice,
};
use stencilflow_workloads::{JobClass, JobMixSpec, JobTemplate};

/// The measured service-layer report behind `BENCH_serve.json`.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Quick mode (reduced mix for CI smoke runs).
    pub quick: bool,
    /// Hardware threads of the host (floor conditioning).
    pub host_threads: usize,
    /// Worker threads the service ran with.
    pub workers: usize,
    /// Jobs per batch.
    pub jobs_per_batch: usize,
    /// Large jobs per batch.
    pub large_jobs: usize,
    /// Measured batches (after the warmup batch).
    pub batches: usize,
    /// Failed jobs across the measured batches (must be zero).
    pub errors: usize,
    /// Wall-clock of the measured batches, seconds.
    pub elapsed_s: f64,
    /// Stencil cell evaluations across the measured batches.
    pub cells: u64,
    /// Sustained aggregate throughput, million cells/s.
    pub mcells_per_s: f64,
    /// Small-job latency percentiles (batch start → completion), ms.
    pub small_p50_ms: f64,
    /// p99 of the small jobs — the fairness number.
    pub small_p99_ms: f64,
    /// p99 of the large jobs.
    pub large_p99_ms: f64,
    /// Cell-buffer pool misses during the measured batches (steady state:
    /// must be zero).
    pub steady_pool_misses: usize,
    /// Mask pool misses during the measured batches (must be zero).
    pub steady_mask_misses: usize,
    /// Program compilations during the measured batches (must be zero —
    /// the shared cache dedups every fingerprint).
    pub steady_compiles: usize,
    /// Row bands executed by non-owner workers across the whole run.
    pub steals: usize,
    /// First-sight tier measurements (warmup only).
    pub tier_measurements: usize,
    /// The cached tier decisions after the run.
    pub tiers: Vec<TierChoice>,
}

/// Materialized job stream: the mix templates with their shared inputs.
struct PreparedMix {
    jobs: Vec<(JobSpec, JobClass)>,
    large_jobs: usize,
}

fn prepare_mix(spec: &JobMixSpec) -> PreparedMix {
    let templates = spec.generate();
    // One grid set per (template, tenant seed), shared across all jobs
    // that reuse it. Keyed by template identity (the `Arc` pointer), not
    // by name — the mix reuses workload names across different shapes.
    let mut inputs: BTreeMap<(usize, u64), Arc<BTreeMap<String, Grid>>> = BTreeMap::new();
    let mut jobs = Vec::with_capacity(templates.len());
    let mut large_jobs = 0usize;
    for JobTemplate {
        program,
        input_seed,
        steps,
        class,
    } in templates
    {
        let key = (Arc::as_ptr(&program) as usize, input_seed);
        let grids = inputs
            .entry(key)
            .or_insert_with(|| Arc::new(generate_inputs(&program, input_seed)));
        if class == JobClass::Large {
            large_jobs += 1;
        }
        jobs.push((
            JobSpec::new(program, Arc::clone(grids)).with_steps(steps),
            class,
        ));
    }
    PreparedMix { jobs, large_jobs }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let ix = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[ix.min(sorted_ms.len() - 1)]
}

/// Run the service-layer benchmark. `quick` shrinks the mix for CI smoke
/// runs; the measured properties (zero steady-state allocation, zero
/// recompilation, fairness) are identical in both modes.
pub fn run_serve_bench(quick: bool) -> ServeBenchReport {
    let spec = if quick {
        JobMixSpec::quick()
    } else {
        JobMixSpec::new()
    };
    let mix = prepare_mix(&spec);
    let serve = ServeExecutor::new(ServeConfig::new());
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let batch = || -> Vec<JobSpec> { mix.jobs.iter().map(|(job, _)| job.clone()).collect() };

    // Warmup: tier measurement, pool population, shared-cache compile.
    // Streaming sink: results are recycled as jobs land, so peak pooled
    // liveness is the in-flight set, not the whole batch. Two batches, so
    // the pool has absorbed the peak concurrent demand of the worker
    // interleavings before the steady window opens.
    for _ in 0..2 {
        serve.run_batch_with(batch(), |outcome| {
            if let Ok(result) = outcome.result {
                serve.recycle(result);
            }
        });
    }
    let warm = serve.stats();

    let batches = if quick { 2 } else { 3 };
    #[derive(Default)]
    struct Tally {
        small_ms: Vec<f64>,
        large_ms: Vec<f64>,
        cells: u64,
        errors: usize,
    }
    let tally = std::sync::Mutex::new(Tally::default());
    let started = Instant::now();
    for _ in 0..batches {
        serve.run_batch_with(batch(), |outcome| {
            let class = mix.jobs[outcome.job].1;
            let ms = outcome.latency.as_secs_f64() * 1e3;
            // Recycle before taking the tally lock: the pools must see
            // the buffers again as soon as the job is answered.
            let cells = match outcome.result {
                Ok(result) => {
                    let cells = result.cells_evaluated() as u64;
                    serve.recycle(result);
                    Some(cells)
                }
                Err(_) => None,
            };
            let mut tally = tally.lock().expect("tally poisoned");
            match class {
                JobClass::Small => tally.small_ms.push(ms),
                JobClass::Large => tally.large_ms.push(ms),
            }
            match cells {
                Some(c) => tally.cells += c,
                None => tally.errors += 1,
            }
        });
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    let steady = serve.stats();
    let Tally {
        mut small_ms,
        mut large_ms,
        cells,
        errors,
    } = tally.into_inner().expect("tally poisoned");
    small_ms.sort_by(f64::total_cmp);
    large_ms.sort_by(f64::total_cmp);

    ServeBenchReport {
        quick,
        host_threads,
        workers: serve.workers(),
        jobs_per_batch: mix.jobs.len(),
        large_jobs: mix.large_jobs,
        batches,
        errors,
        elapsed_s,
        cells,
        mcells_per_s: cells as f64 / elapsed_s / 1e6,
        small_p50_ms: percentile(&small_ms, 0.50),
        small_p99_ms: percentile(&small_ms, 0.99),
        large_p99_ms: percentile(&large_ms, 0.99),
        steady_pool_misses: steady.pool_misses - warm.pool_misses,
        steady_mask_misses: steady.mask_misses - warm.mask_misses,
        steady_compiles: steady.compiles - warm.compiles,
        steals: steady.steals,
        tier_measurements: steady.tier_measurements,
        tiers: serve.tier_choices(),
    }
}

/// Render the report as the `BENCH_serve.json` document.
pub fn serve_json(report: &ServeBenchReport) -> String {
    let tiers: Vec<Json> = report
        .tiers
        .iter()
        .map(|choice| {
            Json::Object(vec![
                (
                    "fingerprint".to_string(),
                    Json::String(choice.fingerprint.clone()),
                ),
                ("program".to_string(), Json::String(choice.program.clone())),
                ("stepped".to_string(), Json::Bool(choice.stepped)),
                (
                    "tier".to_string(),
                    Json::String(choice.tier.as_str().to_string()),
                ),
            ])
        })
        .collect();
    Json::Object(vec![
        (
            "benchmark".to_string(),
            Json::String("serve_throughput".to_string()),
        ),
        ("quick".to_string(), Json::Bool(report.quick)),
        (
            "host_threads".to_string(),
            Json::Number(report.host_threads as f64),
        ),
        ("workers".to_string(), Json::Number(report.workers as f64)),
        (
            "jobs_per_batch".to_string(),
            Json::Number(report.jobs_per_batch as f64),
        ),
        (
            "large_jobs".to_string(),
            Json::Number(report.large_jobs as f64),
        ),
        ("batches".to_string(), Json::Number(report.batches as f64)),
        ("errors".to_string(), Json::Number(report.errors as f64)),
        ("elapsed_s".to_string(), Json::Number(report.elapsed_s)),
        ("cells".to_string(), Json::Number(report.cells as f64)),
        (
            "mcells_per_s".to_string(),
            Json::Number(report.mcells_per_s),
        ),
        (
            "small_p50_ms".to_string(),
            Json::Number(report.small_p50_ms),
        ),
        (
            "small_p99_ms".to_string(),
            Json::Number(report.small_p99_ms),
        ),
        (
            "large_p99_ms".to_string(),
            Json::Number(report.large_p99_ms),
        ),
        (
            "steady_state".to_string(),
            Json::Object(vec![
                (
                    "pool_misses".to_string(),
                    Json::Number(report.steady_pool_misses as f64),
                ),
                (
                    "mask_misses".to_string(),
                    Json::Number(report.steady_mask_misses as f64),
                ),
                (
                    "compiles".to_string(),
                    Json::Number(report.steady_compiles as f64),
                ),
            ]),
        ),
        ("steals".to_string(), Json::Number(report.steals as f64)),
        (
            "tier_measurements".to_string(),
            Json::Number(report.tier_measurements as f64),
        ),
        ("tiers".to_string(), Json::Array(tiers)),
    ])
    .to_string_pretty()
}

/// Render the human-readable summary of a report.
pub fn format_serve(report: &ServeBenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "serve: {} jobs/batch ({} large) x {} batches on {} workers ({} host threads)\n",
        report.jobs_per_batch,
        report.large_jobs,
        report.batches,
        report.workers,
        report.host_threads
    ));
    out.push_str(&format!(
        "  sustained {:.1} Mcells/s over {:.2} s; small p50 {:.2} ms, small p99 {:.2} ms, large p99 {:.2} ms\n",
        report.mcells_per_s,
        report.elapsed_s,
        report.small_p50_ms,
        report.small_p99_ms,
        report.large_p99_ms
    ));
    out.push_str(&format!(
        "  steady state: {} pool misses, {} mask misses, {} compiles; {} band steals, {} tier measurements\n",
        report.steady_pool_misses,
        report.steady_mask_misses,
        report.steady_compiles,
        report.steals,
        report.tier_measurements
    ));
    for choice in &report.tiers {
        out.push_str(&format!(
            "  tier: {}{} -> {}\n",
            choice.program,
            if choice.stepped { " (stepped)" } else { "" },
            choice.tier
        ));
    }
    out
}

/// Gate a `BENCH_serve.json` document (the CI gate behind
/// `bench_serve --check-floors`):
///
/// * **Zero steady-state allocation** — `steady_state.pool_misses` and
///   `.mask_misses` must be exactly 0: once warm, sustained mixed traffic
///   draws every O(cells) buffer from the pools. This is an equality, not
///   a floor — one miss is a leak.
/// * **Zero recompilation** — `steady_state.compiles` must be 0: the
///   shared cache dedups every fingerprint in the mix.
/// * **No failed jobs** — `errors` must be 0.
/// * **Sustained throughput floor** — conditioned on `host_threads` (a
///   single-core runner cannot match a multi-core one) and on quick mode;
///   set ~10x below healthy local measurements so only a structural
///   regression (lost parallelism, per-job recompiles, allocation storms)
///   trips it, not shared-runner jitter.
/// * **Fairness (p99 latency) floor** — the small-job p99 is bounded: if
///   a large job monopolized the pool, thousands of queued small jobs
///   would blow this bound immediately.
pub fn check_serve_floors(json_text: &str) -> Result<String, String> {
    let parsed =
        stencilflow_json::parse(json_text).map_err(|e| format!("invalid serve JSON: {e:?}"))?;
    let quick = parsed
        .get("quick")
        .and_then(|v| v.as_bool())
        .ok_or("serve JSON is missing the `quick` flag")?;
    let host_threads = parsed
        .get("host_threads")
        .and_then(|v| v.as_usize())
        .ok_or("serve JSON is missing `host_threads`")?;
    let mut failures = Vec::new();
    let mut summary = String::new();

    let steady = parsed
        .get("steady_state")
        .ok_or("serve JSON is missing the `steady_state` section")?;
    for key in ["pool_misses", "mask_misses", "compiles"] {
        match steady.get(key).and_then(|v| v.as_usize()) {
            Some(0) => summary.push_str(&format!("ok: steady_state.{key} == 0\n")),
            Some(n) => failures.push(format!(
                "steady_state.{key} is {n}, steady-state traffic must not allocate or recompile"
            )),
            None => failures.push(format!("steady_state is missing `{key}`")),
        }
    }
    match parsed.get("errors").and_then(|v| v.as_usize()) {
        Some(0) => summary.push_str("ok: errors == 0\n"),
        Some(n) => failures.push(format!("{n} jobs failed")),
        None => failures.push("serve JSON is missing `errors`".to_string()),
    }

    // Healthy local numbers: ~100+ Mcells/s on a 4-thread host (full
    // mix), quick mode in the same range over a shorter run. The floors
    // sit an order of magnitude below and scale down for small hosts.
    let throughput_floor = if host_threads >= 4 { 10.0 } else { 2.5 };
    match parsed.get("mcells_per_s").and_then(|v| v.as_f64()) {
        Some(value) if value >= throughput_floor => summary.push_str(&format!(
            "ok: mcells_per_s {value:.1} >= {throughput_floor:.1} ({host_threads} host threads)\n"
        )),
        Some(value) => failures.push(format!(
            "mcells_per_s {value:.1} below floor {throughput_floor:.1} ({host_threads} host threads)"
        )),
        None => failures.push("serve JSON is missing `mcells_per_s`".to_string()),
    }

    // Healthy small-job p99 is tens of milliseconds (queue wait behind a
    // full batch dominates); the bound is ~10x that. A fairness
    // regression (large job starving the queue) multiplies the p99 by the
    // large/small work ratio (~100x), far past this bound.
    let p99_floor_ms = if quick { 2_000.0 } else { 5_000.0 };
    match parsed.get("small_p99_ms").and_then(|v| v.as_f64()) {
        Some(value) if value <= p99_floor_ms => summary.push_str(&format!(
            "ok: small_p99_ms {value:.1} <= {p99_floor_ms:.1}\n"
        )),
        Some(value) => failures.push(format!(
            "small_p99_ms {value:.1} above bound {p99_floor_ms:.1}: small jobs are being starved"
        )),
        None => failures.push("serve JSON is missing `small_p99_ms`".to_string()),
    }

    // The decision cache must have been exercised: every template
    // measured once, never again.
    match parsed.get("tier_measurements").and_then(|v| v.as_usize()) {
        Some(n) if n >= 1 => summary.push_str(&format!("ok: tier_measurements {n} >= 1\n")),
        Some(_) => {
            failures.push("no tier measurements recorded: auto selection did not run".to_string())
        }
        None => failures.push("serve JSON is missing `tier_measurements`".to_string()),
    }

    if failures.is_empty() {
        Ok(summary)
    } else {
        Err(failures.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_serve_bench_passes_its_own_floors() {
        let report = run_serve_bench(true);
        assert_eq!(report.errors, 0);
        assert_eq!(report.steady_pool_misses, 0, "steady-state allocation");
        assert_eq!(report.steady_mask_misses, 0, "steady-state mask allocation");
        assert_eq!(report.steady_compiles, 0, "steady-state recompilation");
        let json = serve_json(&report);
        let summary = check_serve_floors(&json).expect("quick report must pass the gate");
        assert!(summary.contains("ok: steady_state.pool_misses == 0"));
    }

    #[test]
    fn floor_checker_rejects_violations() {
        let mut report = run_serve_bench(true);
        report.steady_pool_misses = 3;
        let err = check_serve_floors(&serve_json(&report)).unwrap_err();
        assert!(err.contains("pool_misses"), "{err}");
        report.steady_pool_misses = 0;
        report.mcells_per_s = 0.01;
        let err = check_serve_floors(&serve_json(&report)).unwrap_err();
        assert!(err.contains("mcells_per_s"), "{err}");
    }
}
