//! Figure 15 harness: vectorized scaling series plus analysis timing.

use criterion::{criterion_group, Criterion};
use stencilflow_bench::{format_scaling, scaling_series};
use stencilflow_core::{AnalysisConfig, HardwareMapping};
use stencilflow_workloads::{chain_program, ChainSpec};

fn bench(c: &mut Criterion) {
    print!(
        "{}",
        format_scaling(
            &scaling_series(4, 24, true),
            "Figure 15 (W=4, quick domain)"
        )
    );
    let mut group = c.benchmark_group("fig15");
    group.sample_size(10);
    group.bench_function("analyze_and_map_vectorized_chain", |b| {
        let program = chain_program(
            &ChainSpec::new(16, 24)
                .with_shape(&[1 << 11, 32, 32])
                .with_vectorization(4),
        );
        let config = AnalysisConfig::paper_defaults().with_vectorization(4);
        b.iter(|| HardwareMapping::build(&program, &config).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
