//! Table I harness: prints the kernel/resource table, then times resource
//! estimation.

use criterion::{criterion_group, Criterion};
use stencilflow_bench::{format_table1, table1_rows};
use stencilflow_core::{AnalysisConfig, HardwareMapping};
use stencilflow_hwmodel::estimate_resources;
use stencilflow_workloads::jacobi3d;

fn bench(c: &mut Criterion) {
    print!("{}", format_table1(&table1_rows(true)));
    let mut group = c.benchmark_group("tab1");
    group.sample_size(10);
    group.bench_function("estimate_resources_jacobi3d_64", |b| {
        let program = jacobi3d(64, &[1 << 11, 32, 32], 1);
        let mapping = HardwareMapping::build(&program, &AnalysisConfig::paper_defaults()).unwrap();
        b.iter(|| estimate_resources(&mapping));
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
