//! Evaluation-throughput harness: prints the cells/second comparison of the
//! tree-walking evaluator against the compiled execution plan, the scalar
//! type-specialized kernels, and the lane-batched (SIMD) typed sweep
//! (Jacobi 3D 64³ f32/f64, horizontal diffusion, and a `run_steps` time
//! loop), then times the paths with Criterion.

use criterion::{criterion_group, Criterion};
use stencilflow_bench::{eval_throughput, format_throughput};
use stencilflow_reference::{generate_inputs, ReferenceExecutor};
use stencilflow_workloads::{horizontal_diffusion, jacobi3d, HorizontalDiffusionSpec};

fn bench_eval_throughput(c: &mut Criterion) {
    print!("{}", format_throughput(&eval_throughput(false)));
    let mut group = c.benchmark_group("eval_throughput");
    group.sample_size(10);

    let jacobi = jacobi3d(2, &[64, 64, 64], 1);
    let jacobi_inputs = generate_inputs(&jacobi, 17);
    let executor = ReferenceExecutor::new();
    let typed_executor = ReferenceExecutor::new().with_lane_batching(false);
    let value_executor = ReferenceExecutor::new().with_typed_kernels(false);
    group.bench_function("jacobi3d_64_interpreted", |b| {
        b.iter(|| executor.run_interpreted(&jacobi, &jacobi_inputs).unwrap());
    });
    group.bench_function("jacobi3d_64_compiled", |b| {
        b.iter(|| value_executor.run(&jacobi, &jacobi_inputs).unwrap());
    });
    group.bench_function("jacobi3d_64_typed", |b| {
        b.iter(|| typed_executor.run(&jacobi, &jacobi_inputs).unwrap());
    });
    group.bench_function("jacobi3d_64_simd", |b| {
        b.iter(|| executor.run(&jacobi, &jacobi_inputs).unwrap());
    });

    let step = jacobi3d(1, &[64, 64, 64], 1);
    let step_inputs = generate_inputs(&step, 17);
    group.bench_function("jacobi3d_64_run_steps_8", |b| {
        b.iter(|| executor.run_steps(&step, &step_inputs, 8).unwrap());
    });

    let hdiff = horizontal_diffusion(&HorizontalDiffusionSpec::small());
    let hdiff_inputs = generate_inputs(&hdiff, 17);
    group.bench_function("horizontal_diffusion_interpreted", |b| {
        b.iter(|| executor.run_interpreted(&hdiff, &hdiff_inputs).unwrap());
    });
    group.bench_function("horizontal_diffusion_compiled", |b| {
        b.iter(|| value_executor.run(&hdiff, &hdiff_inputs).unwrap());
    });
    group.bench_function("horizontal_diffusion_typed", |b| {
        b.iter(|| typed_executor.run(&hdiff, &hdiff_inputs).unwrap());
    });
    group.bench_function("horizontal_diffusion_simd", |b| {
        b.iter(|| executor.run(&hdiff, &hdiff_inputs).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_eval_throughput);

fn main() {
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
