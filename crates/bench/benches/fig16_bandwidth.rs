//! Figure 16 harness: prints the bandwidth table, then times the bandwidth
//! microbenchmark program construction and simulation.

use criterion::{criterion_group, Criterion};
use stencilflow_bench::{bandwidth_series, format_bandwidth};
use stencilflow_core::AnalysisConfig;
use stencilflow_reference::generate_inputs;
use stencilflow_sim::{SimConfig, Simulator};
use stencilflow_workloads::{membench_program, MembenchSpec};

fn bench(c: &mut Criterion) {
    print!("{}", format_bandwidth(&bandwidth_series()));
    let mut group = c.benchmark_group("fig16");
    group.sample_size(10);
    group.bench_function("simulate_membench_8ap_bandwidth_limited", |b| {
        let program = membench_program(&MembenchSpec::new(8, 1).with_shape(&[16, 8, 8]));
        let inputs = generate_inputs(&program, 1);
        let sim = Simulator::build(
            &program,
            &AnalysisConfig::paper_defaults(),
            &SimConfig::default().with_memory_bandwidth(8.0),
        )
        .unwrap();
        b.iter(|| sim.run(&inputs).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
