//! Figure 4 harness: demonstrates the deadlock without delay buffers, then
//! times the simulator on the buffered design.

use criterion::{criterion_group, Criterion};
use stencilflow_bench::deadlock_demo;
use stencilflow_core::AnalysisConfig;
use stencilflow_reference::generate_inputs;
use stencilflow_sim::{SimConfig, Simulator};
use stencilflow_workloads::listing1::listing1_with_shape;

fn bench(c: &mut Criterion) {
    let (deadlocked, completed) = deadlock_demo();
    println!("== Figure 4: deadlock demonstration ==");
    println!(
        "unit-depth channels deadlock: {deadlocked}; analysis-computed depths stream: {completed}"
    );
    let mut group = c.benchmark_group("fig04");
    group.sample_size(10);
    group.bench_function("simulate_listing1_buffered", |b| {
        let program = listing1_with_shape(&[6, 6, 6]);
        let inputs = generate_inputs(&program, 1);
        let sim = Simulator::build(
            &program,
            &AnalysisConfig::paper_defaults(),
            &SimConfig::default(),
        )
        .unwrap();
        b.iter(|| sim.run(&inputs).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
