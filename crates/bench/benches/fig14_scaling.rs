//! Figure 14 harness: prints the scaling series, then times the analysis and
//! mapping pipeline with Criterion.

use criterion::{criterion_group, Criterion};
use stencilflow_bench::{format_scaling, scaling_series};
use stencilflow_core::{AnalysisConfig, HardwareMapping};
use stencilflow_workloads::{chain_program, ChainSpec};

fn bench(c: &mut Criterion) {
    print!(
        "{}",
        format_scaling(&scaling_series(1, 8, true), "Figure 14 (W=1, quick domain)")
    );
    let mut group = c.benchmark_group("fig14");
    group.sample_size(10);
    group.bench_function("analyze_and_map_32_stage_chain", |b| {
        let program = chain_program(&ChainSpec::new(32, 8).with_shape(&[1 << 11, 32, 32]));
        let config = AnalysisConfig::paper_defaults();
        b.iter(|| HardwareMapping::build(&program, &config).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
