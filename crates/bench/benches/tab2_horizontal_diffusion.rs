//! Table II harness: prints the horizontal-diffusion table and analysis,
//! then times the end-to-end analysis of the production program.

use criterion::{criterion_group, Criterion};
use stencilflow_bench::{format_table2, table2_rows};
use stencilflow_core::{analyze, AnalysisConfig};
use stencilflow_workloads::{horizontal_diffusion, HorizontalDiffusionSpec};

fn bench(c: &mut Criterion) {
    let (rows, analysis) = table2_rows();
    print!("{analysis}");
    print!("{}", format_table2(&rows));
    let mut group = c.benchmark_group("tab2");
    group.sample_size(10);
    group.bench_function("analyze_horizontal_diffusion_production", |b| {
        let program = horizontal_diffusion(&HorizontalDiffusionSpec::production(8));
        let config = AnalysisConfig::paper_defaults().with_vectorization(8);
        b.iter(|| analyze(&program, &config).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench);

fn main() {
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
