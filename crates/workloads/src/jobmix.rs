//! Seeded multi-tenant job mixes for the service layer.
//!
//! `bench_serve` and the service tests need a reproducible stream of
//! "thousands of small jobs plus a few large ones" — the traffic shape
//! the scheduler's fairness guarantee is about. This module generates
//! that stream deterministically from a seed, as plain descriptors
//! (program + input seed + steps) so it depends on nothing but the
//! program layer; callers materialize grids with their own generator.

use std::sync::Arc;
use stencilflow_program::StencilProgram;

/// Size class of one job in a mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobClass {
    /// The common case: a small grid, microsecond-scale work.
    Small,
    /// The rare case: a grid hundreds of times larger, which must not
    /// starve the small jobs behind it.
    Large,
}

/// One generated job: a shared program, the seed for its input grids, and
/// its step count. Programs are `Arc`-shared across the mix so a thousand
/// jobs over the same template stay one compilation and one allocation.
#[derive(Debug, Clone)]
pub struct JobTemplate {
    /// The program to run.
    pub program: Arc<StencilProgram>,
    /// Seed for deterministic input-grid generation.
    pub input_seed: u64,
    /// Time steps (1 = single application).
    pub steps: usize,
    /// Size class this job was drawn from.
    pub class: JobClass,
}

/// Shape of a generated mix.
#[derive(Debug, Clone)]
pub struct JobMixSpec {
    /// Total jobs in the mix.
    pub jobs: usize,
    /// How many of them are large (clamped to `jobs`).
    pub large_jobs: usize,
    /// Distinct input seeds per template: small enough that traffic
    /// revisits working sets (the steady-state pool case), large enough
    /// to exercise more than one tenant.
    pub tenants: u64,
    /// Seed for the mix itself (job order, seeds, template choice).
    pub seed: u64,
}

impl Default for JobMixSpec {
    fn default() -> Self {
        JobMixSpec {
            jobs: 2000,
            large_jobs: 4,
            tenants: 16,
            seed: 0x5f3c_9d2b,
        }
    }
}

impl JobMixSpec {
    /// The default mixed-traffic shape: 2000 small jobs, 4 large ones.
    pub fn new() -> Self {
        Self::default()
    }

    /// A reduced mix for quick CI runs.
    pub fn quick() -> Self {
        JobMixSpec {
            jobs: 300,
            large_jobs: 2,
            ..Self::default()
        }
    }

    /// Override the total job count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Override the large-job count.
    pub fn with_large_jobs(mut self, large_jobs: usize) -> Self {
        self.large_jobs = large_jobs;
        self
    }

    /// Override the mix seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generate the mix. Deterministic in the spec: same spec, same
    /// stream. Large jobs are placed early in the stream so small jobs
    /// queued behind them make the fairness property observable (their
    /// p99 latency collapses if the scheduler lets a large job hog the
    /// pool).
    pub fn generate(&self) -> Vec<JobTemplate> {
        let mut rng = SplitMix64::new(self.seed);
        // Small templates cover the tier spread: a fused/JIT-friendly
        // Jacobi, a multi-stencil diffusion, the paper's listing, and a
        // stepped Jacobi (the stepped tier-cache key).
        let small: Vec<(Arc<StencilProgram>, usize)> = vec![
            (Arc::new(crate::jacobi2d(1, &[24, 24], 1)), 1),
            (Arc::new(crate::diffusion2d(1, &[32, 32], 1)), 1),
            (Arc::new(crate::listing1()), 1),
            (Arc::new(crate::jacobi2d(1, &[16, 16], 1)), 4),
        ];
        // One large template: ~65k cells per stencil, two orders of
        // magnitude over the small ones and heavy enough to band.
        let large = Arc::new(crate::jacobi2d(1, &[512, 128], 1));

        let large_jobs = self.large_jobs.min(self.jobs);
        let small_jobs = self.jobs - large_jobs;
        let mut mix = Vec::with_capacity(self.jobs);
        for _ in 0..small_jobs {
            let (program, steps) = &small[(rng.next() % small.len() as u64) as usize];
            mix.push(JobTemplate {
                program: Arc::clone(program),
                input_seed: rng.next() % self.tenants.max(1),
                steps: *steps,
                class: JobClass::Small,
            });
        }
        // Front-load the large jobs across the first quarter of the
        // stream (deterministic slots, not appended at the end where
        // nothing would ever queue behind them).
        for ix in 0..large_jobs {
            let slot = if mix.is_empty() {
                0
            } else {
                (ix * mix.len() / (4 * large_jobs.max(1))).min(mix.len())
            };
            mix.insert(
                slot,
                JobTemplate {
                    program: Arc::clone(&large),
                    input_seed: rng.next() % self.tenants.max(1),
                    steps: 1,
                    class: JobClass::Large,
                },
            );
        }
        mix
    }
}

/// SplitMix64: the same tiny deterministic generator the input-data and
/// proptest stand-ins use, inlined to keep this crate's dependencies flat.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_are_deterministic_and_shaped() {
        let spec = JobMixSpec::new().with_jobs(100).with_large_jobs(3);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.len(), 100);
        let larges: Vec<usize> = a
            .iter()
            .enumerate()
            .filter(|(_, j)| j.class == JobClass::Large)
            .map(|(ix, _)| ix)
            .collect();
        assert_eq!(larges.len(), 3);
        // Large jobs sit early in the stream so small jobs queue behind.
        assert!(*larges.last().unwrap() < 50, "{larges:?}");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.program.name(), y.program.name());
            assert_eq!(x.input_seed, y.input_seed);
            assert_eq!(x.steps, y.steps);
        }
        // Shared templates: far fewer distinct programs than jobs.
        let mut names: Vec<&str> = a.iter().map(|j| j.program.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert!(names.len() <= 5);
    }

    #[test]
    fn large_count_is_clamped() {
        let mix = JobMixSpec::new()
            .with_jobs(2)
            .with_large_jobs(10)
            .generate();
        assert_eq!(mix.len(), 2);
    }
}
