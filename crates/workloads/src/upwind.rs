//! First-order upwind advection — the branchy (data-dependent-select)
//! workload.
//!
//! Every cell chooses its finite-difference direction from the sign of the
//! local velocity, one ternary per spatial dimension:
//!
//! ```text
//! fx = u[i,j,k] > 0.0 ? c[i,j,k] - c[i-1,j,k] : c[i+1,j,k] - c[i,j,k]
//! ```
//!
//! These data-dependent branches are exactly what the paper's language
//! permits (§II) and what, before the if-conversion pass, forced the
//! reference executor's lane-batched (SIMD) tier to bail out to the scalar
//! typed kernel. With the pass pipeline the ternaries lower to branch-free
//! selects, so this program exercises — and the benchmark floors gate —
//! lane batching of branchy kernels end to end.

use stencilflow_expr::DataType;
use stencilflow_program::{StencilProgram, StencilProgramBuilder};

/// A chain of `timesteps` first-order upwind advection steps on a 3D
/// domain (`float32` fields; see [`upwind3d_typed`] for other element
/// types). The velocity field `u` is shared by all steps; each step
/// advects the previous concentration field `c{t-1}` into `c{t}`.
pub fn upwind3d(timesteps: usize, shape: &[usize; 3], vectorization: usize) -> StencilProgram {
    upwind3d_typed(timesteps, shape, vectorization, DataType::Float32)
}

/// [`upwind3d`] with a custom element type for every field. Both ternary
/// arms of each directional difference are pure field arithmetic of the
/// field's own type, so the kernel type-specializes — and, once the
/// ternaries are if-converted to selects, lane-batches.
pub fn upwind3d_typed(
    timesteps: usize,
    shape: &[usize; 3],
    vectorization: usize,
    dtype: DataType,
) -> StencilProgram {
    assert!(timesteps > 0, "at least one timestep is required");
    let mut builder = StencilProgramBuilder::new("upwind3d", shape)
        .vectorization(vectorization)
        .input("u", dtype, &["i", "j", "k"])
        .input("c0", dtype, &["i", "j", "k"]);
    for t in 1..=timesteps {
        let prev = format!("c{}", t - 1);
        let name = format!("c{t}");
        builder = builder
            .stencil(
                &name,
                &format!(
                    "fx = u[i,j,k] > 0.0 ? {prev}[i,j,k] - {prev}[i-1,j,k] \
                     : {prev}[i+1,j,k] - {prev}[i,j,k]; \
                     fy = u[i,j,k] > 0.0 ? {prev}[i,j,k] - {prev}[i,j-1,k] \
                     : {prev}[i,j+1,k] - {prev}[i,j,k]; \
                     fz = u[i,j,k] > 0.0 ? {prev}[i,j,k] - {prev}[i,j,k-1] \
                     : {prev}[i,j,k+1] - {prev}[i,j,k]; \
                     {prev}[i,j,k] - u[i,j,k] * (fx + fy + fz)"
                ),
            )
            .output_type(&name, dtype)
            .shrink(&name);
    }
    builder
        .output(&format!("c{timesteps}"))
        .build()
        .expect("generated upwind programs are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upwind3d_counts_its_branches() {
        let program = upwind3d(1, &[8, 8, 8], 1);
        let ops = program.ops_per_cell();
        // Three data-dependent ternaries per step, with three comparisons.
        assert_eq!(ops.branches, 3);
        assert_eq!(ops.comparisons, 3);
        // Six subtractions inside the arms (both arms instantiated), one
        // trailing subtraction, two adds, one multiply.
        assert!(ops.additions >= 6);
        assert_eq!(ops.multiplications, 1);
    }

    #[test]
    fn upwind3d_chains_and_validates() {
        upwind3d(3, &[8, 8, 8], 1).validate().unwrap();
        upwind3d(1, &[8, 8, 8], 8).validate().unwrap();
        let program = upwind3d_typed(2, &[8, 8, 8], 1, DataType::Float64);
        assert_eq!(program.field_type("u"), Some(DataType::Float64));
        assert_eq!(program.field_type("c2"), Some(DataType::Float64));
    }
}
