//! The running example of the paper (§II, Lst. 1 / Fig. 2).

use stencilflow_expr::DataType;
use stencilflow_program::{BoundaryCondition, StencilProgram, StencilProgramBuilder};

/// Build the stencil program of the paper's Lst. 1: five stencils over a
/// 32×32×32 domain with a fork/join dependency structure, two full-domain
/// inputs, and one lower-dimensional (2D) input.
pub fn listing1() -> StencilProgram {
    listing1_with_shape(&[32, 32, 32])
}

/// The Lst. 1 program on a custom domain shape (used by tests that want a
/// smaller iteration space).
pub fn listing1_with_shape(shape: &[usize; 3]) -> StencilProgram {
    StencilProgramBuilder::new("listing1", shape)
        .input("a0", DataType::Float32, &["i", "j", "k"])
        .input("a1", DataType::Float32, &["i", "j", "k"])
        .input("a2", DataType::Float32, &["i", "k"])
        .stencil("b0", "a0[i,j,k] + a1[i,j,k]")
        .boundary("b0", "a0", BoundaryCondition::Constant(1.0))
        .boundary("b0", "a1", BoundaryCondition::Copy)
        .stencil("b1", "0.5*(b0[i,j,k] + a2[i,k])")
        .shrink("b1")
        .stencil("b2", "0.5*(b0[i,j,k] - a2[i,k])")
        .shrink("b2")
        .stencil("b3", "b1[i-1,j,k] + b1[i+1,j,k]")
        .shrink("b3")
        .stencil("b4", "b2[i,j,k] + b3[i,j,k]")
        .shrink("b4")
        .output("b4")
        .build()
        .expect("the paper's running example is a valid program")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_figure2_structure() {
        let program = listing1();
        assert_eq!(program.stencil_count(), 5);
        assert_eq!(program.inputs().count(), 3);
        assert_eq!(program.outputs(), &["b4".to_string()]);
        let dag = program.dag().unwrap();
        assert!(dag.has_edge("b0", "b1"));
        assert!(dag.has_edge("b0", "b2"));
        assert!(dag.has_edge("b1", "b3"));
        assert!(dag.has_edge("b3", "b4"));
        assert!(dag.has_edge("b2", "b4"));
        // The fork at b0 reconverging at b4 makes delay buffers mandatory.
        assert!(dag.requires_delay_buffers());
    }

    #[test]
    fn custom_shape_variant() {
        let program = listing1_with_shape(&[8, 8, 8]);
        assert_eq!(program.space().num_cells(), 512);
    }
}
