//! Linear chains of identical stencils (§VIII-C).
//!
//! "We produce benchmarks using such kernels to establish the highest
//! floating point performance reachable by StencilFlow [...] by chaining
//! together long linear sequences of stencils executed on a large input
//! domain, analogous to time-tiled iterative stencils."
//!
//! The chain generator is parameterized on the number of stages and the
//! operations per stage, so the Fig. 14 sweep (8 Op/stencil, 2¹⁵×32×32
//! domain) and the Fig. 15 sweep (24 Op/stencil, W = 4) are both instances
//! of the same generator.

use stencilflow_expr::DataType;
use stencilflow_program::{StencilProgram, StencilProgramBuilder};

/// Parameters of an iterative-style stencil chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainSpec {
    /// Number of chained stencil stages.
    pub stages: usize,
    /// Approximate floating-point operations per stencil stage (8 for the
    /// paper's non-vectorized sweep, 24 for the vectorized one).
    pub ops_per_stencil: usize,
    /// Iteration-space shape. Defaults to the paper's 2¹⁵×32×32 domain.
    pub shape: Vec<usize>,
    /// Vectorization width W.
    pub vectorization: usize,
}

impl ChainSpec {
    /// A chain with the given number of stages and operations per stage on
    /// the paper's benchmark domain (2¹⁵ × 32 × 32), unvectorized.
    pub fn new(stages: usize, ops_per_stencil: usize) -> Self {
        ChainSpec {
            stages,
            ops_per_stencil,
            shape: vec![1 << 15, 32, 32],
            vectorization: 1,
        }
    }

    /// Override the domain shape (builder style).
    pub fn with_shape(mut self, shape: &[usize]) -> Self {
        self.shape = shape.to_vec();
        self
    }

    /// Override the vectorization width (builder style).
    pub fn with_vectorization(mut self, width: usize) -> Self {
        self.vectorization = width;
        self
    }

    /// Total floating-point operations per cell over the whole chain.
    pub fn total_ops_per_cell(&self) -> usize {
        self.stages * self.ops_per_stencil
    }
}

/// Generate a chain program per `spec`.
///
/// Each stage is a symmetric 3-point stencil along the innermost dimension,
/// padded with extra multiply-add pairs to reach (approximately) the
/// requested operations per stencil; the access pattern (and therefore the
/// buffering behaviour) is identical across stages.
///
/// # Panics
///
/// Panics if `spec.stages == 0` or the shape is empty (caller error in
/// benchmark configuration).
pub fn chain_program(spec: &ChainSpec) -> StencilProgram {
    assert!(spec.stages > 0, "a chain needs at least one stage");
    assert!(!spec.shape.is_empty(), "the chain shape must be non-empty");
    let dims: Vec<&str> = ["i", "j", "k"][..spec.shape.len()].to_vec();
    let inner = *dims.last().expect("non-empty dims");

    let mut builder = StencilProgramBuilder::new(
        &format!("chain{}x{}op", spec.stages, spec.ops_per_stencil),
        &spec.shape,
    )
    .vectorization(spec.vectorization)
    .input("f0", DataType::Float32, &dims);

    let center = |field: &str| access(field, &dims, inner, 0);
    let minus = |field: &str| access(field, &dims, inner, -1);
    let plus = |field: &str| access(field, &dims, inner, 1);

    for stage in 1..=spec.stages {
        let prev = format!("f{}", stage - 1);
        let name = format!("f{stage}");
        // Base 3-point kernel: 2 adds + 2 muls = 4 ops.
        let mut code = format!(
            "acc = 0.25 * ({} + {}) + 0.5 * {}",
            minus(&prev),
            plus(&prev),
            center(&prev)
        );
        let mut ops = 4usize;
        // Pad with dependent multiply-add pairs (2 ops each) to reach the
        // requested per-stencil operation count.
        let mut term = 0usize;
        while ops + 1 < spec.ops_per_stencil {
            code.push_str(&format!(
                "; acc = acc * {:.6} + {:.6}",
                1.0 + 1e-6 * (term + 1) as f64,
                1e-3 * (term + 1) as f64
            ));
            ops += 2;
            term += 1;
        }
        code.push_str("; acc");
        builder = builder.stencil(&name, &code).shrink(&name);
    }
    builder
        .output(&format!("f{}", spec.stages))
        .build()
        .expect("generated chain programs are valid")
}

fn access(field: &str, dims: &[&str], inner: &str, offset: i64) -> String {
    let indices: Vec<String> = dims
        .iter()
        .map(|d| {
            if *d == inner && offset != 0 {
                if offset > 0 {
                    format!("{d}+{offset}")
                } else {
                    format!("{d}{offset}")
                }
            } else {
                d.to_string()
            }
        })
        .collect();
    format!("{field}[{}]", indices.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_has_requested_depth() {
        let program = chain_program(&ChainSpec::new(16, 8).with_shape(&[64, 8, 8]));
        assert_eq!(program.stencil_count(), 16);
        let order = program.topological_stencils().unwrap();
        assert_eq!(order.first().unwrap(), "f1");
        assert_eq!(order.last().unwrap(), "f16");
    }

    #[test]
    fn ops_per_stencil_is_close_to_requested() {
        for requested in [4, 8, 16, 24, 32] {
            let program = chain_program(&ChainSpec::new(2, requested).with_shape(&[32, 8, 8]));
            let per_stencil = program.ops_per_cell().flops() as f64 / 2.0;
            let diff = (per_stencil - requested as f64).abs();
            assert!(
                diff <= 1.0,
                "requested {requested} ops/stencil, generated {per_stencil}"
            );
        }
    }

    #[test]
    fn vectorization_and_shape_are_applied() {
        let spec = ChainSpec::new(4, 8)
            .with_shape(&[128, 16, 16])
            .with_vectorization(4);
        let program = chain_program(&spec);
        assert_eq!(program.vectorization(), 4);
        assert_eq!(program.space().shape, vec![128, 16, 16]);
        assert_eq!(spec.total_ops_per_cell(), 32);
    }

    #[test]
    fn chain_works_in_one_and_two_dimensions() {
        chain_program(&ChainSpec::new(3, 8).with_shape(&[256]))
            .validate()
            .unwrap();
        chain_program(&ChainSpec::new(3, 8).with_shape(&[64, 64]))
            .validate()
            .unwrap();
    }

    #[test]
    fn default_shape_matches_paper_domain() {
        let spec = ChainSpec::new(1, 8);
        assert_eq!(spec.shape, vec![32768, 32, 32]);
    }
}
