//! Diffusion 2D / 3D stencil chains (Tab. I workloads, the kernels used for
//! the comparison against Zohouri et al.'s hand-tuned OpenCL designs).

use stencilflow_expr::DataType;
use stencilflow_program::{StencilProgram, StencilProgramBuilder};

/// A chain of `timesteps` 2D diffusion steps (weighted 5-point stencil with
/// distinct center/edge coefficients, ~9 Op per cell per step).
pub fn diffusion2d(timesteps: usize, shape: &[usize; 2], vectorization: usize) -> StencilProgram {
    assert!(timesteps > 0, "at least one timestep is required");
    let mut builder = StencilProgramBuilder::new("diffusion2d", shape)
        .vectorization(vectorization)
        .input("f0", DataType::Float32, &["i", "j"]);
    for t in 1..=timesteps {
        let prev = format!("f{}", t - 1);
        let name = format!("f{t}");
        builder = builder
            .stencil(
                &name,
                &format!(
                    "0.6 * {prev}[i,j] + 0.1 * {prev}[i-1,j] + 0.1 * {prev}[i+1,j] \
                     + 0.1 * {prev}[i,j-1] + 0.1 * {prev}[i,j+1]"
                ),
            )
            .shrink(&name);
    }
    builder
        .output(&format!("f{timesteps}"))
        .build()
        .expect("generated diffusion 2D programs are valid")
}

/// A chain of `timesteps` 3D diffusion steps (weighted 7-point stencil,
/// ~13 Op per cell per step).
pub fn diffusion3d(timesteps: usize, shape: &[usize; 3], vectorization: usize) -> StencilProgram {
    assert!(timesteps > 0, "at least one timestep is required");
    let mut builder = StencilProgramBuilder::new("diffusion3d", shape)
        .vectorization(vectorization)
        .input("f0", DataType::Float32, &["i", "j", "k"]);
    for t in 1..=timesteps {
        let prev = format!("f{}", t - 1);
        let name = format!("f{t}");
        builder = builder
            .stencil(
                &name,
                &format!(
                    "0.4 * {prev}[i,j,k] + 0.1 * {prev}[i-1,j,k] + 0.1 * {prev}[i+1,j,k] \
                     + 0.1 * {prev}[i,j-1,k] + 0.1 * {prev}[i,j+1,k] \
                     + 0.1 * {prev}[i,j,k-1] + 0.1 * {prev}[i,j,k+1]"
                ),
            )
            .shrink(&name);
    }
    builder
        .output(&format!("f{timesteps}"))
        .build()
        .expect("generated diffusion 3D programs are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diffusion2d_ops() {
        let program = diffusion2d(2, &[32, 32], 1);
        // 4 adds + 5 muls = 9 per step.
        assert_eq!(program.ops_per_cell().flops(), 2 * 9);
    }

    #[test]
    fn diffusion3d_ops() {
        let program = diffusion3d(2, &[8, 8, 8], 1);
        // 6 adds + 7 muls = 13 per step.
        assert_eq!(program.ops_per_cell().flops(), 2 * 13);
    }

    #[test]
    fn chains_are_linear() {
        let program = diffusion2d(4, &[32, 32], 1);
        let dag = program.dag().unwrap();
        assert!(!dag.requires_delay_buffers());
    }

    #[test]
    fn vectorized_variants_build() {
        diffusion2d(2, &[64, 64], 8).validate().unwrap();
        diffusion3d(2, &[16, 16, 16], 8).validate().unwrap();
    }
}
