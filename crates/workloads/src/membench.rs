//! Off-chip memory bandwidth microbenchmarks (§VIII-D, Fig. 16).
//!
//! "We measure the effective bandwidth utilization when scaling up the
//! number of accesses, but accessing only 32 bits per cycle at each access
//! point [... and then] request the same total number of 32-bit operands,
//! but at fewer, vectorized endpoints."
//!
//! The generator emits a program with `access_points` independent read →
//! scale → write paths. Each path contributes one DRAM reader and one DRAM
//! writer, so the number of parallel off-chip access points (and the
//! operands requested per cycle) is directly controlled.

use stencilflow_expr::DataType;
use stencilflow_program::{StencilProgram, StencilProgramBuilder};

/// Parameters of a bandwidth microbenchmark program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembenchSpec {
    /// Number of *read* access points (independent input fields). Each path
    /// also writes one output, mirroring the paper's copy-with-scale kernel.
    pub read_access_points: usize,
    /// Vectorization width: operands requested per access point per cycle.
    pub vectorization: usize,
    /// Iteration-space shape; defaults to the paper's 2¹⁵×32×32 domain.
    pub shape: Vec<usize>,
    /// Whether each path also writes its result back to memory (true for the
    /// paper's benchmark; reads-only variants are useful for ablations).
    pub write_back: bool,
}

impl MembenchSpec {
    /// A benchmark with `read_access_points` paths at vector width `w`.
    pub fn new(read_access_points: usize, w: usize) -> Self {
        MembenchSpec {
            read_access_points,
            vectorization: w,
            shape: vec![1 << 15, 32, 32],
            write_back: true,
        }
    }

    /// Override the domain shape (builder style).
    pub fn with_shape(mut self, shape: &[usize]) -> Self {
        self.shape = shape.to_vec();
        self
    }

    /// Disable write-back (reads only).
    pub fn reads_only(mut self) -> Self {
        self.write_back = false;
        self
    }

    /// Total 32-bit operands requested per cycle (reads + writes).
    pub fn operands_per_cycle(&self) -> usize {
        let per_path = if self.write_back { 2 } else { 1 };
        self.read_access_points * per_path * self.vectorization
    }
}

/// Generate the bandwidth microbenchmark program.
///
/// # Panics
///
/// Panics if `read_access_points == 0` (caller error in benchmark
/// configuration).
pub fn membench_program(spec: &MembenchSpec) -> StencilProgram {
    assert!(
        spec.read_access_points > 0,
        "at least one access point is required"
    );
    let dims: Vec<&str> = ["i", "j", "k"][..spec.shape.len()].to_vec();
    let index = dims.join(",");
    let mut builder = StencilProgramBuilder::new(
        &format!("membench{}x{}", spec.read_access_points, spec.vectorization),
        &spec.shape,
    )
    .vectorization(spec.vectorization);
    for path in 0..spec.read_access_points {
        let input = format!("in{path}");
        let output = format!("out{path}");
        builder = builder
            .input(&input, DataType::Float32, &dims)
            .stencil(&output, &format!("{input}[{index}] * 0.5 + 0.25"));
        if spec.write_back {
            builder = builder.output(&output);
        }
    }
    if !spec.write_back {
        // A program must have at least one output; reduce all paths into one.
        let sum = (0..spec.read_access_points)
            .map(|p| format!("out{p}[{index}]"))
            .collect::<Vec<_>>()
            .join(" + ");
        builder = builder.stencil("sink", &sum).output("sink");
    }
    builder
        .build()
        .expect("generated membench programs are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_points_match_spec() {
        let program = membench_program(&MembenchSpec::new(6, 1).with_shape(&[64, 8, 8]));
        assert_eq!(program.inputs().count(), 6);
        assert_eq!(program.outputs().len(), 6);
        assert_eq!(program.stencil_count(), 6);
    }

    #[test]
    fn operands_per_cycle_accounting() {
        assert_eq!(MembenchSpec::new(8, 1).operands_per_cycle(), 16);
        assert_eq!(MembenchSpec::new(12, 4).operands_per_cycle(), 96);
        assert_eq!(MembenchSpec::new(8, 1).reads_only().operands_per_cycle(), 8);
    }

    #[test]
    fn reads_only_variant_has_single_output() {
        let program =
            membench_program(&MembenchSpec::new(4, 1).reads_only().with_shape(&[64, 8, 8]));
        assert_eq!(program.outputs().len(), 1);
        assert_eq!(program.stencil_count(), 5);
    }

    #[test]
    fn vectorized_variant_builds() {
        let program = membench_program(&MembenchSpec::new(4, 4).with_shape(&[64, 8, 8]));
        assert_eq!(program.vectorization(), 4);
    }
}
