//! The COSMO horizontal-diffusion stencil program (§IX).
//!
//! Horizontal diffusion is a 4th-order explicit method on a staggered
//! latitude–longitude grid with Smagorinsky diffusion to smoothen the wind
//! velocity components. It is the paper's full-complexity application study:
//! a DAG of heterogeneous stencils with many shared inputs (the paper counts
//! 28 accesses of 10 unique fields), deep reconvergent dependencies (each
//! non-source stencil receives data from 2–6 other stencils), lower-
//! dimensional parameter fields, and data-dependent branches.
//!
//! The paper obtains its input program from a MeteoSwiss/Dawn-generated SDFG;
//! that toolchain (and the proprietary COSMO source) is not available here,
//! so this module reconstructs the stencil DAG from the published structure
//! (Fig. 17) and the operation inventory of §IX-A: four diffused fields
//! (`u`, `v`, `w`, `pp`), each with a weighted horizontal Laplacian, flux
//! computations with limiters in both horizontal directions, and a
//! flux-divergence update masked by `hdmask`; plus a Smagorinsky branch that
//! computes shear/tension terms from the diffused wind components and
//! produces the final `u_out` / `v_out`. The resulting operation counts
//! (≈84 additions, ≈40 multiplications, 2 square roots, 2 min, 2 max, 20
//! data-dependent branches per output point) closely track the paper's
//! 87 / 41 / 2 / 2 / 2 / 20 inventory; the exact measured numbers are
//! recorded in `EXPERIMENTS.md`.

use stencilflow_expr::DataType;
use stencilflow_program::{StencilProgram, StencilProgramBuilder};

/// Parameters of the horizontal-diffusion program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HorizontalDiffusionSpec {
    /// Iteration-space shape `[i, j, k]`. The paper benchmarks the
    /// production domain of 128×128 horizontal points stacked in 80 vertical
    /// layers; the vertical (contiguous) dimension is `k`.
    pub shape: [usize; 3],
    /// Vectorization width W (8 for the paper's bandwidth-bound benchmark,
    /// 16 for the simulated-infinite-bandwidth variant).
    pub vectorization: usize,
}

impl Default for HorizontalDiffusionSpec {
    fn default() -> Self {
        HorizontalDiffusionSpec {
            shape: [128, 128, 80],
            vectorization: 1,
        }
    }
}

impl HorizontalDiffusionSpec {
    /// The MeteoSwiss benchmarking domain (128×128×80) at a given
    /// vectorization width.
    pub fn production(vectorization: usize) -> Self {
        HorizontalDiffusionSpec {
            shape: [128, 128, 80],
            vectorization,
        }
    }

    /// A reduced domain for functional tests and simulation.
    pub fn small() -> Self {
        HorizontalDiffusionSpec {
            shape: [10, 10, 8],
            vectorization: 1,
        }
    }

    /// A throughput-benchmark domain sized so the lane tier is measured
    /// fairly. The [`HorizontalDiffusionSpec::small`] domain understates
    /// lane batching structurally: its 8-cell vertical rows fit exactly
    /// one default-width batch which — with `shrink` halos reaching into
    /// every row — is always a *mixed* halo batch, the 19200-cell sweep
    /// sits below the row-parallelism threshold, and per-sweep fixed
    /// costs amortize over only 800 cells per stencil. This domain's
    /// 64-cell rows give every lane-ready stencil real interior batches
    /// (and the wide f32 lane width) while staying small enough for CI.
    ///
    /// Measuring it also exposed the *dominant* limiter on this program,
    /// which no domain size fixes: half of its 24 stencils cannot
    /// type-specialize at all, because the flux/update limiter ternaries
    /// (`delta > 4.0 ? 4.0 : delta`) mix an `f64` literal arm with an
    /// `f32` expression arm — the kernel's dynamic result type is
    /// data-dependent, which no static tier can represent, so those
    /// stencils evaluate on the tagged `Value` path and cap the
    /// program-level lane speedup by Amdahl's law. (Rewriting the
    /// limiters as `min`/`max` would specialize, but would change the
    /// §IX-A branch inventory this reconstruction pins.)
    pub fn bench() -> Self {
        HorizontalDiffusionSpec {
            shape: [24, 24, 64],
            vectorization: 1,
        }
    }
}

/// Build the horizontal-diffusion stencil program.
pub fn horizontal_diffusion(spec: &HorizontalDiffusionSpec) -> StencilProgram {
    let shape: Vec<usize> = spec.shape.to_vec();
    let mut builder = StencilProgramBuilder::new("horizontal_diffusion", &shape)
        .vectorization(spec.vectorization)
        // Diffused prognostic fields.
        .input("u_in", DataType::Float32, &["i", "j", "k"])
        .input("v_in", DataType::Float32, &["i", "j", "k"])
        .input("w_in", DataType::Float32, &["i", "j", "k"])
        .input("pp_in", DataType::Float32, &["i", "j", "k"])
        // Diffusion mask.
        .input("hdmask", DataType::Float32, &["i", "j", "k"])
        // Latitude-dependent metric coefficients (1D over j).
        .input("crlato", DataType::Float32, &["j"])
        .input("crlatu", DataType::Float32, &["j"])
        .input("crlavo", DataType::Float32, &["j"])
        .input("crlavu", DataType::Float32, &["j"])
        .input("acrlat0", DataType::Float32, &["j"]);

    // Type-2 diffusion pipeline (laplacian -> flux x -> flux y -> update)
    // for each of the four fields. For `u` and `v` the update produces the
    // intermediate `u_tmp` / `v_tmp` consumed by the Smagorinsky branch; for
    // `w` and `pp` it directly produces the program output.
    for (field, result) in [
        ("u_in", "u_tmp"),
        ("v_in", "v_tmp"),
        ("w_in", "w_out"),
        ("pp_in", "pp_out"),
    ] {
        let lap = format!("lap_{field}");
        let flx = format!("flx_{field}");
        let fly = format!("fly_{field}");

        // Weighted horizontal Laplacian on the staggered grid.
        builder = builder
            .stencil(
                &lap,
                &format!(
                    "{field}[i+1,j,k] + {field}[i-1,j,k] + {field}[i,j+1,k] + {field}[i,j-1,k] \
                     - 4.0 * {field}[i,j,k] \
                     + crlato[j] * ({field}[i,j+1,k] - {field}[i,j,k]) \
                     + crlatu[j] * ({field}[i,j-1,k] - {field}[i,j,k])"
                ),
            )
            .shrink(&lap);

        // Longitude-direction diffusive flux with a monotonic limiter and a
        // saturation branch.
        builder = builder
            .stencil(
                &flx,
                &format!(
                    "delta = {lap}[i+1,j,k] - {lap}[i,j,k]; \
                     lim = delta > 4.0 ? 4.0 : delta; \
                     lim * ({field}[i+1,j,k] - {field}[i,j,k]) > 0.0 ? 0.0 : lim"
                ),
            )
            .shrink(&flx);

        // Latitude-direction diffusive flux, weighted by the metric term.
        builder = builder
            .stencil(
                &fly,
                &format!(
                    "delta = crlato[j] * ({lap}[i,j+1,k] - {lap}[i,j,k]); \
                     lim = delta > 4.0 ? 4.0 : delta; \
                     lim * ({field}[i,j+1,k] - {field}[i,j,k]) > 0.0 ? 0.0 : lim"
                ),
            )
            .shrink(&fly);

        // Flux-divergence update masked by hdmask, with an amplitude clamp.
        builder = builder
            .stencil(
                result,
                &format!(
                    "res = {field}[i,j,k] - hdmask[i,j,k] * \
                       ({flx}[i,j,k] - {flx}[i-1,j,k] + {fly}[i,j,k] - {fly}[i,j-1,k]); \
                     res > 100000.0 ? 100000.0 : res"
                ),
            )
            .shrink(result);
    }

    // Smagorinsky diffusion branch: shear and tension of the diffused wind
    // field, the corresponding diffusion coefficients, and the final wind
    // updates.
    builder = builder
        .stencil(
            "t_s",
            "(v_tmp[i,j,k] - v_tmp[i,j-1,k]) * crlavu[j] \
             - (u_tmp[i,j,k] - u_tmp[i-1,j,k]) * acrlat0[j]",
        )
        .shrink("t_s")
        .stencil(
            "s_uv",
            "(u_tmp[i,j+1,k] - u_tmp[i,j,k]) * crlavo[j] \
             + (v_tmp[i+1,j,k] - v_tmp[i,j,k]) * acrlat0[j]",
        )
        .shrink("s_uv")
        .stencil("sqr_s", "t_s[i,j,k] * t_s[i,j,k]")
        .shrink("sqr_s")
        .stencil("sqr_uv", "s_uv[i,j,k] * s_uv[i,j,k]")
        .shrink("sqr_uv")
        .stencil(
            "smag_u",
            "zs = 0.025 * sqrt(sqr_s[i,j,k] + sqr_uv[i,j,k]) - hdmask[i,j,k]; \
             min(0.5, max(0.0, zs))",
        )
        .shrink("smag_u")
        .stencil(
            "smag_v",
            "zs = 0.025 * sqrt(sqr_s[i,j+1,k] + sqr_uv[i+1,j,k]) - hdmask[i,j,k]; \
             min(0.5, max(0.0, zs))",
        )
        .shrink("smag_v")
        .stencil(
            "u_out",
            "u_tmp[i,j,k] + smag_u[i,j,k] * \
             (u_tmp[i+1,j,k] + u_tmp[i-1,j,k] + u_tmp[i,j+1,k] + u_tmp[i,j-1,k] \
              - 4.0 * u_tmp[i,j,k])",
        )
        .shrink("u_out")
        .stencil(
            "v_out",
            "v_tmp[i,j,k] + smag_v[i,j,k] * \
             (v_tmp[i+1,j,k] + v_tmp[i-1,j,k] + v_tmp[i,j+1,k] + v_tmp[i,j-1,k] \
              - 4.0 * v_tmp[i,j,k])",
        )
        .shrink("v_out");

    builder
        .output("u_out")
        .output("v_out")
        .output("w_out")
        .output("pp_out")
        .build()
        .expect("the horizontal diffusion program is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_matches_paper_inventory() {
        let program = horizontal_diffusion(&HorizontalDiffusionSpec::default());
        // 10 unique input fields, 4 outputs.
        assert_eq!(program.inputs().count(), 10);
        assert_eq!(program.outputs().len(), 4);
        // 4 fields x 4 type-2 stages + 8 Smagorinsky stages = 24 stencils.
        assert_eq!(program.stencil_count(), 24);
        assert_eq!(program.space().shape, vec![128, 128, 80]);
    }

    #[test]
    fn operation_counts_track_section9a() {
        let program = horizontal_diffusion(&HorizontalDiffusionSpec::default());
        let ops = program.ops_per_cell();
        // Paper: 87 additions, 41 multiplications, 2 sqrt, 2 min, 2 max, 20
        // data-dependent branches. Our reconstruction is within a few
        // operations of those counts (see EXPERIMENTS.md).
        assert!(
            (75..=95).contains(&ops.additions),
            "adds = {}",
            ops.additions
        );
        assert!(
            (35..=45).contains(&ops.multiplications),
            "muls = {}",
            ops.multiplications
        );
        assert_eq!(ops.square_roots, 2);
        assert_eq!(ops.minimums, 2);
        assert_eq!(ops.maximums, 2);
        assert_eq!(ops.branches, 20);
        // Total flops close to the paper's 130 Op per point.
        let flops = ops.flops();
        assert!((115..=145).contains(&flops), "flops = {flops}");
    }

    #[test]
    fn dependency_complexity_requires_delay_buffers() {
        let program = horizontal_diffusion(&HorizontalDiffusionSpec::small());
        let dag = program.dag().unwrap();
        assert!(dag.requires_delay_buffers());
        // Each update stencil receives data from several producers
        // (paper: 2-6 other stencil nodes).
        let fan_in = dag.in_degree("u_out");
        assert!(fan_in >= 2);
        assert!(dag.in_degree("w_out") >= 3);
    }

    #[test]
    fn memory_traffic_matches_9ijk_plus_5j() {
        let spec = HorizontalDiffusionSpec::default();
        let program = horizontal_diffusion(&spec);
        let [i, j, k] = spec.shape;
        let ijk = i * j * k;
        // 5 full-domain reads + 4 full-domain writes + 5 one-dimensional
        // parameter fields (paper Eq. 2: 9*IJK + 5*I operands).
        let expected_operands = 9 * ijk + 5 * j;
        assert_eq!(program.total_memory_bytes(), expected_operands * 4);
        // Arithmetic intensity ~ 130/9/4 Op/B (Eq. 2).
        let ai = program.arithmetic_intensity();
        assert!(
            (ai - 130.0 / 36.0).abs() < 0.5,
            "arithmetic intensity = {ai}"
        );
    }

    #[test]
    fn production_and_small_variants() {
        let prod = horizontal_diffusion(&HorizontalDiffusionSpec::production(8));
        assert_eq!(prod.vectorization(), 8);
        let small = horizontal_diffusion(&HorizontalDiffusionSpec::small());
        assert!(small.space().num_cells() < 1000);
    }
}
