//! Jacobi 2D / 3D iterative stencil chains (Tab. I workloads).

use stencilflow_expr::DataType;
use stencilflow_program::{StencilProgram, StencilProgramBuilder};

/// A chain of `timesteps` 5-point Jacobi relaxation steps on a 2D domain,
/// analogous to unrolling the time dimension of an iterative solver.
pub fn jacobi2d(timesteps: usize, shape: &[usize; 2], vectorization: usize) -> StencilProgram {
    assert!(timesteps > 0, "at least one timestep is required");
    let mut builder = StencilProgramBuilder::new("jacobi2d", shape)
        .vectorization(vectorization)
        .input("f0", DataType::Float32, &["i", "j"]);
    for t in 1..=timesteps {
        let prev = format!("f{}", t - 1);
        let name = format!("f{t}");
        builder = builder
            .stencil(
                &name,
                &format!("0.25 * ({prev}[i-1,j] + {prev}[i+1,j] + {prev}[i,j-1] + {prev}[i,j+1])"),
            )
            .shrink(&name);
    }
    builder
        .output(&format!("f{timesteps}"))
        .build()
        .expect("generated Jacobi 2D programs are valid")
}

/// A chain of `timesteps` 7-point Jacobi relaxation steps on a 3D domain
/// (`float32` fields; see [`jacobi3d_typed`] for other element types).
pub fn jacobi3d(timesteps: usize, shape: &[usize; 3], vectorization: usize) -> StencilProgram {
    jacobi3d_typed(timesteps, shape, vectorization, DataType::Float32)
}

/// [`jacobi3d`] with a custom element type for every field. The all-`f32`
/// and all-`f64` variants exercise the reference executor's type-specialized
/// kernels (and the time-stepping `run_steps` scenario with `timesteps = 1`).
pub fn jacobi3d_typed(
    timesteps: usize,
    shape: &[usize; 3],
    vectorization: usize,
    dtype: DataType,
) -> StencilProgram {
    assert!(timesteps > 0, "at least one timestep is required");
    let mut builder = StencilProgramBuilder::new("jacobi3d", shape)
        .vectorization(vectorization)
        .input("f0", dtype, &["i", "j", "k"]);
    for t in 1..=timesteps {
        let prev = format!("f{}", t - 1);
        let name = format!("f{t}");
        builder = builder
            .stencil(
                &name,
                &format!(
                    "0.125 * ({prev}[i,j,k] + {prev}[i-1,j,k] + {prev}[i+1,j,k] \
                     + {prev}[i,j-1,k] + {prev}[i,j+1,k] + {prev}[i,j,k-1] + {prev}[i,j,k+1])"
                ),
            )
            .output_type(&name, dtype)
            .shrink(&name);
    }
    builder
        .output(&format!("f{timesteps}"))
        .build()
        .expect("generated Jacobi 3D programs are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi2d_ops_per_stencil() {
        let program = jacobi2d(3, &[32, 32], 1);
        assert_eq!(program.stencil_count(), 3);
        // 3 adds + 1 mul per stencil.
        assert_eq!(program.ops_per_cell().flops(), 3 * 4);
    }

    #[test]
    fn jacobi3d_ops_per_stencil() {
        let program = jacobi3d(2, &[8, 8, 8], 1);
        // 6 adds + 1 mul per stencil = 7, close to the 8 Op/stencil the
        // paper quotes for its Jacobi-style chain stage.
        assert_eq!(program.ops_per_cell().flops(), 2 * 7);
    }

    #[test]
    fn buffering_requires_one_slice_per_stage() {
        // The j-offset accesses force a two-row buffer in 2D and a
        // two-slice buffer in 3D; verified through the core analysis in the
        // integration tests, here we just check the access extents.
        let program = jacobi3d(1, &[8, 8, 8], 1);
        let stencil = program.stencil("f1").unwrap();
        let info = stencil.accesses.get("f0").unwrap();
        assert_eq!(info.access_count(), 7);
        assert_eq!(info.extent(), vec![(-1, 1), (-1, 1), (-1, 1)]);
    }

    #[test]
    fn vectorized_variants_build() {
        jacobi2d(2, &[64, 64], 8).validate().unwrap();
        jacobi3d(2, &[16, 16, 16], 4).validate().unwrap();
    }

    #[test]
    fn typed_variant_sets_every_field_type() {
        let program = jacobi3d_typed(2, &[8, 8, 8], 1, DataType::Float64);
        assert_eq!(program.field_type("f0"), Some(DataType::Float64));
        assert_eq!(program.field_type("f1"), Some(DataType::Float64));
        assert_eq!(program.field_type("f2"), Some(DataType::Float64));
        // The default stays float32.
        let default = jacobi3d(1, &[8, 8, 8], 1);
        assert_eq!(default.field_type("f1"), Some(DataType::Float32));
    }
}
