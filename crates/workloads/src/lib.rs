//! Workload generators for the StencilFlow reproduction.
//!
//! Every benchmark of the paper's evaluation (§VIII–IX) is driven by one of
//! the stencil programs generated here:
//!
//! * [`mod@listing1`] — the running example of §II (Lst. 1 / Fig. 2).
//! * [`chain`] — linear chains of identical stencils ("analogous to
//!   time-tiled iterative stencils"), the workload of the Fig. 14/15 scaling
//!   experiments.
//! * [`jacobi`] / [`diffusion`] — the Jacobi 2D/3D and Diffusion 2D/3D
//!   kernels of Tab. I.
//! * [`membench`] — bandwidth microbenchmarks with a configurable number of
//!   parallel off-chip access points (Fig. 16).
//! * [`mod@horizontal_diffusion`] — the COSMO horizontal-diffusion stencil
//!   program with Smagorinsky diffusion (§IX), the full-complexity
//!   application study.
//! * [`upwind`] — first-order upwind advection, the branchy
//!   (data-dependent-select) workload gating if-conversion and the
//!   lane-batched evaluation of ternary kernels.

#![forbid(unsafe_code)]

pub mod chain;
pub mod diffusion;
pub mod horizontal_diffusion;
pub mod jacobi;
pub mod jobmix;
pub mod listing1;
pub mod membench;
pub mod upwind;

pub use chain::{chain_program, ChainSpec};
pub use diffusion::{diffusion2d, diffusion3d};
pub use horizontal_diffusion::{horizontal_diffusion, HorizontalDiffusionSpec};
pub use jacobi::{jacobi2d, jacobi3d, jacobi3d_typed};
pub use jobmix::{JobClass, JobMixSpec, JobTemplate};
pub use listing1::listing1;
pub use membench::{membench_program, MembenchSpec};
pub use upwind::{upwind3d, upwind3d_typed};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_generators_produce_valid_programs() {
        // Validation happens inside the builders; just exercise every
        // generator once with small parameters.
        listing1().validate().unwrap();
        jacobi2d(4, &[16, 16], 1).validate().unwrap();
        jacobi3d(4, &[8, 8, 8], 1).validate().unwrap();
        diffusion2d(4, &[16, 16], 1).validate().unwrap();
        diffusion3d(4, &[8, 8, 8], 1).validate().unwrap();
        chain_program(&ChainSpec::new(8, 8)).validate().unwrap();
        membench_program(&MembenchSpec::new(8, 1))
            .validate()
            .unwrap();
        horizontal_diffusion(&HorizontalDiffusionSpec::default())
            .validate()
            .unwrap();
        upwind3d(2, &[8, 8, 8], 1).validate().unwrap();
    }
}
