//! Bounded FIFO channels connecting simulated units.

use std::collections::VecDeque;

/// A bounded FIFO carrying scalar elements between two units.
///
/// Channels model the Intel OpenCL `channel` / hardware FIFO used by the
/// generated designs: a producer can push only while the FIFO has space, a
/// consumer can pop only while it is non-empty. An optional fixed latency
/// models network links (SMI remote streams), and an optional bandwidth
/// budget throttles how many words may enter the channel per cycle.
#[derive(Debug, Clone)]
pub struct Fifo {
    name: String,
    capacity: usize,
    latency: u64,
    words_per_cycle: f64,
    queue: VecDeque<(u64, f64)>,
    credits: f64,
    pushed_total: u64,
    popped_total: u64,
    high_watermark: usize,
}

impl Fifo {
    /// Create a FIFO with the given capacity (in words).
    ///
    /// Unthrottled channels start with unlimited bandwidth credits, so a
    /// push is possible immediately — [`Fifo::begin_cycle`] only matters
    /// once a bandwidth budget is attached via [`Fifo::with_bandwidth`].
    pub fn new(name: &str, capacity: usize) -> Self {
        Fifo {
            name: name.to_string(),
            capacity: capacity.max(1),
            latency: 0,
            words_per_cycle: f64::INFINITY,
            queue: VecDeque::with_capacity(capacity.clamp(1, 4096)),
            credits: f64::INFINITY,
            pushed_total: 0,
            popped_total: 0,
            high_watermark: 0,
        }
    }

    /// Add a fixed latency (cycles) before pushed words become visible —
    /// used for inter-device network channels.
    pub fn with_latency(mut self, latency: u64) -> Self {
        self.latency = latency;
        self
    }

    /// Limit how many words can enter the channel per cycle (may be
    /// fractional; credits accumulate) — used for bandwidth-limited links.
    /// Credits start at zero and are granted by [`Fifo::begin_cycle`].
    pub fn with_bandwidth(mut self, words_per_cycle: f64) -> Self {
        self.words_per_cycle = words_per_cycle;
        self.credits = if words_per_cycle.is_finite() {
            0.0
        } else {
            f64::INFINITY
        };
        self
    }

    /// Channel name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in words.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of words currently buffered (visible or not).
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the channel currently holds no words.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether a push would currently succeed.
    pub fn can_push(&self) -> bool {
        self.queue.len() < self.capacity && self.credits >= 1.0
    }

    /// Whether `n` consecutive pushes would currently succeed (capacity and
    /// bandwidth credits for the whole batch). Used by lane-batched units to
    /// reserve space for a full batch before producing it.
    pub fn can_push_n(&self, n: usize) -> bool {
        self.queue.len() + n <= self.capacity && self.credits >= n as f64
    }

    /// Whether a pop at the given cycle would succeed (a word is present and
    /// its latency has elapsed).
    pub fn can_pop(&self, now: u64) -> bool {
        self.queue
            .front()
            .map(|&(ready, _)| ready <= now)
            .unwrap_or(false)
    }

    /// Grant this cycle's bandwidth credits; called once per simulation
    /// cycle.
    pub fn begin_cycle(&mut self) {
        if self.words_per_cycle.is_finite() {
            self.credits = (self.credits + self.words_per_cycle).min(self.words_per_cycle.max(1.0));
        } else {
            self.credits = f64::INFINITY;
        }
    }

    /// Push a word at cycle `now`.
    ///
    /// # Panics
    ///
    /// Panics if the channel is full or out of bandwidth credits; callers
    /// must check [`Fifo::can_push`] first (the simulator always does).
    pub fn push(&mut self, now: u64, value: f64) {
        assert!(self.can_push(), "push into full channel `{}`", self.name);
        self.queue.push_back((now + self.latency, value));
        self.credits -= 1.0;
        self.pushed_total += 1;
        self.high_watermark = self.high_watermark.max(self.queue.len());
    }

    /// Pop the oldest visible word at cycle `now`.
    ///
    /// # Panics
    ///
    /// Panics if no word is available; callers must check [`Fifo::can_pop`].
    pub fn pop(&mut self, now: u64) -> f64 {
        assert!(self.can_pop(now), "pop from empty channel `{}`", self.name);
        self.popped_total += 1;
        self.queue.pop_front().expect("checked above").1
    }

    /// Total words pushed over the run.
    pub fn pushed_total(&self) -> u64 {
        self.pushed_total
    }

    /// Total words popped over the run.
    pub fn popped_total(&self) -> u64 {
        self.popped_total
    }

    /// Highest occupancy observed (words).
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo_order() {
        let mut fifo = Fifo::new("c", 4);
        fifo.begin_cycle();
        fifo.push(0, 1.0);
        fifo.push(0, 2.0);
        assert_eq!(fifo.len(), 2);
        assert_eq!(fifo.pop(0), 1.0);
        assert_eq!(fifo.pop(0), 2.0);
        assert!(fifo.is_empty());
        assert_eq!(fifo.pushed_total(), 2);
        assert_eq!(fifo.popped_total(), 2);
    }

    #[test]
    fn capacity_limits_pushes() {
        let mut fifo = Fifo::new("c", 2);
        fifo.begin_cycle();
        fifo.push(0, 1.0);
        fifo.push(0, 2.0);
        assert!(!fifo.can_push());
        assert_eq!(fifo.high_watermark(), 2);
    }

    #[test]
    fn latency_delays_visibility() {
        let mut fifo = Fifo::new("net", 8).with_latency(5);
        fifo.begin_cycle();
        fifo.push(0, 1.0);
        assert!(!fifo.can_pop(0));
        assert!(!fifo.can_pop(4));
        assert!(fifo.can_pop(5));
        assert_eq!(fifo.pop(5), 1.0);
    }

    #[test]
    fn unthrottled_channels_accept_pushes_before_any_cycle() {
        // Regression: freshly constructed unthrottled channels used to start
        // with zero bandwidth credits, rejecting pushes until the first
        // `begin_cycle` even though no bandwidth budget was configured.
        let mut fifo = Fifo::new("c", 4);
        assert!(fifo.can_push());
        fifo.push(0, 1.0);
        assert_eq!(fifo.pop(0), 1.0);
        // Latency does not interact with credits either.
        let mut delayed = Fifo::new("net", 4).with_latency(2);
        assert!(delayed.can_push());
        delayed.push(0, 2.0);
        assert_eq!(delayed.pop(2), 2.0);
    }

    #[test]
    fn bandwidth_limited_channels_still_wait_for_credits() {
        // Attaching a bandwidth budget resets the credit pool: no push until
        // `begin_cycle` grants the first credit.
        let mut fifo = Fifo::new("link", 4).with_bandwidth(1.0);
        assert!(!fifo.can_push());
        fifo.begin_cycle();
        assert!(fifo.can_push());
    }

    #[test]
    fn bandwidth_credits_throttle_pushes() {
        let mut fifo = Fifo::new("link", 64).with_bandwidth(0.5);
        fifo.begin_cycle(); // credits = 0.5
        assert!(!fifo.can_push());
        fifo.begin_cycle(); // credits = 1.0
        assert!(fifo.can_push());
        fifo.push(1, 3.0);
        assert!(!fifo.can_push());
    }

    #[test]
    #[should_panic(expected = "pop from empty channel")]
    fn popping_empty_channel_panics() {
        let mut fifo = Fifo::new("c", 2);
        let _ = fifo.pop(0);
    }
}
