//! Simulated stencil processing units.
//!
//! Each unit mirrors the expanded `Stencil` library node of Fig. 12: per
//! input field it keeps a sliding window (the shift-register internal buffer)
//! fed from the field's FIFO channel; every streaming iteration it shifts the
//! windows, reads all tap points, evaluates the stencil expression with
//! boundary predication, and conditionally writes the result to its output
//! channels. The unit passes through three phases: *initialization* (filling
//! the windows before any output can be produced), *streaming* (one consume
//! and one produce per cycle), and *draining* (producing the trailing cells
//! from buffered data while inputs are exhausted).

use crate::channel::Fifo;
use std::collections::{BTreeMap, VecDeque};
use stencilflow_expr::{
    CompiledKernel, EvalScratch, LaneScratch, TypedKernel, TypedScratch, Value, KERNEL_LANES,
};
use stencilflow_program::{BoundaryCondition, IterationSpace, StencilNode, StencilProgram};

/// The per-field input port of a stencil unit: a channel plus the sliding
/// window that implements the internal buffer.
#[derive(Debug)]
struct FieldPort {
    field: String,
    channel: usize,
    /// Smallest linearized access offset.
    min_lin: i64,
    /// How many elements ahead of the current output cell this port consumes
    /// (the internal-buffer fill distance, mirroring the shift-register
    /// implementation and the per-edge delay used by the analysis).
    consume_ahead: usize,
    /// Sliding window of recently consumed elements.
    window: VecDeque<f64>,
    /// Linear cell index corresponding to the front of the window.
    window_base: i64,
    /// Elements consumed from the channel so far.
    consumed: usize,
}

impl FieldPort {
    fn required_consumed(&self, cell: usize, total: usize) -> usize {
        let needed = cell as i64 + self.consume_ahead as i64;
        needed.clamp(0, total as i64) as usize
    }

    fn value_at(&self, linear: i64) -> Option<f64> {
        let offset = linear - self.window_base;
        if offset < 0 {
            return None;
        }
        self.window.get(offset as usize).copied()
    }

    fn prune(&mut self, cell: usize) {
        // Keep everything that can still be accessed by this or later cells.
        let keep_from = cell as i64 + self.min_lin;
        while self.window_base < keep_from && self.window.len() > 1 {
            self.window.pop_front();
            self.window_base += 1;
        }
    }
}

/// One pre-bound access of the unit's compiled kernel: which port it taps,
/// at which linearized offset, and the per-dimension bounds checks for
/// boundary predication.
#[derive(Debug)]
struct SlotTap {
    /// Index into `StencilUnitSim::ports`.
    port: usize,
    /// Linearized (memory-order) offset of the access.
    linear: i64,
    /// `(dimension, offset)` pairs to bounds-check.
    checks: Vec<(usize, i64)>,
    /// Boundary condition applied when a check fails.
    boundary: BoundaryCondition,
}

/// A simulated stencil unit.
#[derive(Debug)]
pub struct StencilUnitSim {
    /// Stencil name.
    pub name: String,
    space: IterationSpace,
    ports: Vec<FieldPort>,
    /// Compiled code segment; evaluated once per produced cell through
    /// pre-bound window taps (`slots`) instead of the tree-walking
    /// evaluator.
    kernel: CompiledKernel,
    /// Type-specialized kernel (all stream values carry the unit's data
    /// type): evaluates window taps on raw `f64`s with no `Value` tagging.
    typed: Option<TypedKernel>,
    slots: Vec<SlotTap>,
    slot_values: Vec<Value>,
    typed_values: Vec<f64>,
    scratch: EvalScratch,
    typed_scratch: TypedScratch,
    /// Functional fast mode: consume/evaluate/produce a full lane batch per
    /// step when the windows and output channels allow it (see
    /// [`StencilUnitSim::with_lane_batching`]).
    lane_batching: bool,
    /// Whether the typed kernel is branch-free (lane-batchable at all).
    lane_capable: bool,
    lane_values: Vec<[f64; KERNEL_LANES]>,
    lane_scratch: LaneScratch<KERNEL_LANES>,
    output_type: stencilflow_expr::DataType,
    /// Outgoing channel indices.
    pub out_channels: Vec<usize>,
    /// Cells produced so far.
    pub produced: usize,
    total_cells: usize,
    /// Cycles stalled waiting for input data.
    pub input_stalls: u64,
    /// Cycles stalled waiting for output space.
    pub output_stalls: u64,
}

impl StencilUnitSim {
    /// Create a unit for `stencil`, wiring each consumed field to the given
    /// channel index and the output to `out_channels`.
    pub fn new(
        program: &StencilProgram,
        stencil: &StencilNode,
        input_channels: &BTreeMap<String, usize>,
        out_channels: Vec<usize>,
    ) -> Self {
        let space = program.space().clone();
        let mut ports = Vec::new();
        for (field, info) in stencil.accesses.iter() {
            let mut lins: Vec<i64> = info
                .offsets
                .iter()
                .map(|offsets| {
                    let mut full = vec![0i64; space.rank()];
                    for (var, &off) in info.index_vars.iter().zip(offsets.iter()) {
                        if let Some(dim) = space.dim_index(var) {
                            full[dim] = off;
                        }
                    }
                    space.linearize_offset(&full)
                })
                .collect();
            if lins.is_empty() {
                lins.push(0);
            }
            let channel = *input_channels
                .get(field)
                .unwrap_or_else(|| panic!("no channel wired for field `{field}`"));
            let max_lin = *lins.iter().max().expect("non-empty");
            let min_lin = *lins.iter().min().expect("non-empty");
            // Buffer-fill distance: the full shift-register span when the
            // field is accessed more than once, otherwise just far enough to
            // have the (possibly forward-offset) single access available.
            let span = if lins.len() >= 2 {
                max_lin - min_lin + 1
            } else {
                0
            };
            let consume_ahead = span.max(max_lin + 1).max(1) as usize;
            ports.push(FieldPort {
                field: field.to_string(),
                channel,
                min_lin,
                consume_ahead,
                window: VecDeque::new(),
                window_base: 0,
                consumed: 0,
            });
        }

        // Compile the code segment and bind every access slot to its port
        // tap: linearized offset plus the bounds checks used for boundary
        // predication. This replaces the per-cell string-keyed resolver.
        let kernel =
            CompiledKernel::compile(&stencil.program).expect("validated stencil programs compile");
        let mut slots = Vec::with_capacity(kernel.slots().len());
        for slot in kernel.slots() {
            let port = ports
                .iter()
                .position(|p| p.field == slot.field)
                .unwrap_or_else(|| panic!("no port wired for field `{}`", slot.field));
            let mut full_offset = vec![0i64; space.rank()];
            let mut checks = Vec::with_capacity(slot.index_vars.len());
            for (var, &off) in slot.index_vars.iter().zip(slot.offsets.iter()) {
                if let Some(dim) = space.dim_index(var) {
                    full_offset[dim] = off;
                    checks.push((dim, off));
                }
            }
            slots.push(SlotTap {
                port,
                linear: space.linearize_offset(&full_offset),
                checks,
                boundary: stencil.boundary.condition_for(&slot.field),
            });
        }
        let slot_values = vec![Value::F64(0.0); slots.len()];
        let typed_values = vec![0.0; slots.len()];
        let lane_values = vec![[0.0; KERNEL_LANES]; slots.len()];
        // Every stream value of the unit is tagged with the unit's data
        // type, so the specialization is uniform over the slots.
        let slot_types = vec![stencil.output_type; slots.len()];
        let typed = kernel.specialize(&slot_types);
        let lane_capable = typed.as_ref().is_some_and(TypedKernel::supports_lanes);

        StencilUnitSim {
            name: stencil.name.clone(),
            space: space.clone(),
            ports,
            kernel,
            typed,
            slots,
            slot_values,
            typed_values,
            scratch: EvalScratch::default(),
            typed_scratch: TypedScratch::default(),
            lane_batching: false,
            lane_capable,
            lane_values,
            lane_scratch: LaneScratch::default(),
            output_type: stencil.output_type,
            out_channels,
            produced: 0,
            total_cells: space.num_cells(),
            input_stalls: 0,
            output_stalls: 0,
        }
    }

    /// Enable lane-batched production (builder style): when the unit's
    /// typed kernel is branch-free, its sliding windows already buffer the
    /// taps of the next `KERNEL_LANES` cells (all interior — boundary
    /// predication keeps the scalar path), and every output channel has
    /// space for the whole batch, one [`StencilUnitSim::step`] call
    /// consumes, evaluates, and produces all of them through
    /// [`TypedKernel::eval_lanes`] over the contiguous window storage.
    ///
    /// The produced streams are bit-identical to the scalar unit's; cycle
    /// counts and stall statistics stop modelling the hardware, which is
    /// why this functional fast mode is off by default.
    pub fn with_lane_batching(mut self, enabled: bool) -> Self {
        self.lane_batching = enabled;
        self
    }

    /// Whether the unit has produced its full output domain and drained all
    /// of its inputs.
    pub fn done(&self) -> bool {
        self.produced >= self.total_cells
            && self.ports.iter().all(|p| p.consumed >= self.total_cells)
    }

    /// Attempt one cycle of work; returns `true` if any progress was made.
    ///
    /// With [`StencilUnitSim::with_lane_batching`] enabled, a step may
    /// instead process a whole lane batch when the data allows it.
    pub fn step(&mut self, now: u64, channels: &mut [Fifo]) -> bool {
        if self.lane_batching && self.try_lane_batch(now, channels) {
            return true;
        }
        let mut progress = false;
        let cell = self.produced;

        // Consume phase: pull at most one element per field per cycle, as
        // long as this cell (or the drain of the stream) still needs it.
        let mut missing_input = false;
        for port in &mut self.ports {
            if port.consumed >= self.total_cells {
                continue;
            }
            let required = if cell < self.total_cells {
                port.required_consumed(cell, self.total_cells)
            } else {
                // Drain phase: pull whatever is left of the input stream.
                self.total_cells
            };
            if port.consumed < required {
                // A failed pop is back-pressure (word not produced yet or
                // still in network flight), not a bug: record the stall and
                // retry next cycle.
                match channels[port.channel].pop(now) {
                    Ok(value) => {
                        if port.window.is_empty() {
                            port.window_base = port.consumed as i64;
                        }
                        port.window.push_back(value);
                        port.consumed += 1;
                        progress = true;
                    }
                    Err(_) => {
                        missing_input = true;
                    }
                }
            }
        }

        if cell >= self.total_cells {
            return progress;
        }

        // Are all inputs for this cell available?
        let ready = self
            .ports
            .iter()
            .all(|p| p.consumed >= p.required_consumed(cell, self.total_cells));
        if !ready {
            if missing_input {
                self.input_stalls += 1;
            }
            return progress;
        }

        // Output channels must all have space (the conditional write of the
        // compute phase).
        if !self.out_channels.iter().all(|&c| channels[c].can_push()) {
            self.output_stalls += 1;
            return progress;
        }

        // Compute the cell: resolve every pre-bound slot against the port
        // windows (with boundary predication), then run the compiled kernel
        // — through the type-specialized variant when one exists.
        let index = self.decompose(cell);
        let dtype = self.output_type;
        let mut raw_values = std::mem::take(&mut self.typed_values);
        for (tap, value) in self.slots.iter().zip(raw_values.iter_mut()) {
            let port = &self.ports[tap.port];
            let out_of_bounds = tap.checks.iter().any(|&(dim, off)| {
                let pos = index[dim] as i64 + off;
                pos < 0 || pos >= self.space.shape[dim] as i64
            });
            let raw = if out_of_bounds {
                match tap.boundary {
                    BoundaryCondition::Constant(c) => Some(c),
                    BoundaryCondition::Copy => port.value_at(cell as i64),
                }
            } else {
                port.value_at(cell as i64 + tap.linear)
            };
            *value = raw
                .expect("validated programs evaluate; missing window data indicates a wiring bug");
        }
        let value = if let Some(typed) = &self.typed {
            // Raw taps round through the unit's data type exactly as the
            // `Value` path tags them; the typed kernel then runs `Value`-free.
            for v in raw_values.iter_mut() {
                *v = Value::from_f64(*v, dtype).as_f64();
            }
            let mut scratch = std::mem::take(&mut self.typed_scratch);
            let result = typed.eval_slots(&raw_values, &mut scratch);
            self.typed_scratch = scratch;
            Value::from_f64(result, dtype).as_f64()
        } else {
            let mut values = std::mem::take(&mut self.slot_values);
            for (value, &raw) in values.iter_mut().zip(raw_values.iter()) {
                *value = Value::from_f64(raw, dtype);
            }
            let mut scratch = std::mem::take(&mut self.scratch);
            let result = self
                .kernel
                .eval_slots(&values, &mut scratch)
                .expect("validated programs evaluate; unresolved symbols indicate a wiring bug");
            self.slot_values = values;
            self.scratch = scratch;
            Value::from_f64(result.as_f64(), dtype).as_f64()
        };
        self.typed_values = raw_values;
        for &c in &self.out_channels {
            channels[c]
                .push(now, value)
                .expect("output space reserved by the can_push check above");
        }
        self.produced += 1;
        // Prune windows to their steady-state size.
        let next = self.produced;
        for port in &mut self.ports {
            port.prune(next);
        }
        true
    }

    /// Try to consume, evaluate, and produce one full lane batch
    /// (`KERNEL_LANES` consecutive cells of the innermost dimension) in this
    /// step. Returns `false` — leaving the scalar cycle path to run — when
    /// the kernel has control flow, the batch would cross a row end or
    /// touch a boundary-predicated tap, input data or output space is
    /// missing, or fewer than `KERNEL_LANES` cells remain.
    fn try_lane_batch(&mut self, now: u64, channels: &mut [Fifo]) -> bool {
        const L: usize = KERNEL_LANES;
        if !self.lane_capable {
            return false;
        }
        let cell = self.produced;
        if cell + L > self.total_cells {
            return false;
        }
        let index = self.decompose(cell);
        let rank = self.space.shape.len();
        let k = index[rank - 1];
        // The batch must stay within one innermost-dimension run so that
        // only the last index varies across lanes.
        if k + L > self.space.shape[rank - 1] {
            return false;
        }
        // Every tap of every lane must be interior: boundary predication
        // (and its Copy re-reads) keeps the scalar path.
        for tap in &self.slots {
            for &(dim, off) in &tap.checks {
                let (lo, hi) = if dim == rank - 1 {
                    (k as i64 + off, (k + L - 1) as i64 + off)
                } else {
                    let pos = index[dim] as i64 + off;
                    (pos, pos)
                };
                if lo < 0 || hi >= self.space.shape[dim] as i64 {
                    return false;
                }
            }
        }
        // Top up every window to cover the batch's trailing cell; bail if a
        // channel cannot supply it yet.
        for port in &mut self.ports {
            let required = port.required_consumed(cell + L - 1, self.total_cells);
            while port.consumed < required {
                let Ok(value) = channels[port.channel].pop(now) else {
                    return false;
                };
                if port.window.is_empty() {
                    port.window_base = port.consumed as i64;
                }
                port.window.push_back(value);
                port.consumed += 1;
            }
            // Make the window contiguous so taps gather from one slice.
            port.window.make_contiguous();
        }
        // Reserve output space for the whole batch. Bandwidth-limited
        // channels cap their per-cycle credits below a batch, so units
        // writing to them permanently fall back to the scalar path — a
        // silent fallback, not a stall: the scalar cycle does its own stall
        // accounting when it genuinely cannot push.
        if !self.out_channels.iter().all(|&c| channels[c].can_push_n(L)) {
            return false;
        }

        // Gather each tap's lanes from the contiguous window run and round
        // them through the unit's data type, exactly as the scalar path
        // tags per-cell values.
        let dtype = self.output_type;
        let mut lanes = std::mem::take(&mut self.lane_values);
        for (tap, lane_row) in self.slots.iter().zip(lanes.iter_mut()) {
            let port = &self.ports[tap.port];
            let start = (cell as i64 + tap.linear - port.window_base) as usize;
            let (window, _) = port.window.as_slices();
            for (value, &raw) in lane_row.iter_mut().zip(window[start..start + L].iter()) {
                *value = Value::from_f64(raw, dtype).as_f64();
            }
        }
        let typed = self.typed.as_ref().expect("lane_capable implies typed");
        let mut scratch = std::mem::take(&mut self.lane_scratch);
        let result = typed.eval_lanes(&lanes, &mut scratch);
        self.lane_scratch = scratch;
        self.lane_values = lanes;
        for &c in &self.out_channels {
            for &value in &result {
                channels[c]
                    .push(now, Value::from_f64(value, dtype).as_f64())
                    .expect("batch space reserved by the can_push_n check above");
            }
        }
        self.produced += L;
        let next = self.produced;
        for port in &mut self.ports {
            port.prune(next);
        }
        true
    }

    fn decompose(&self, mut flat: usize) -> Vec<usize> {
        let shape = &self.space.shape;
        let mut index = vec![0usize; shape.len()];
        for d in (0..shape.len()).rev() {
            index[d] = flat % shape[d];
            flat /= shape[d];
        }
        index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilflow_expr::DataType;
    use stencilflow_program::StencilProgramBuilder;

    fn simple_program() -> StencilProgram {
        StencilProgramBuilder::new("p", &[8])
            .input("a", DataType::Float32, &["i"])
            .stencil("s", "a[i-1] + a[i+1]")
            .boundary("s", "a", BoundaryCondition::Constant(0.0))
            .output("s")
            .build()
            .unwrap()
    }

    #[test]
    fn unit_streams_a_three_point_stencil() {
        let program = simple_program();
        let stencil = program.stencil("s").unwrap();
        let mut channels = vec![Fifo::new("a->s", 64), Fifo::new("s->out", 64)];
        let inputs: BTreeMap<String, usize> = [("a".to_string(), 0)].into_iter().collect();
        let mut unit = StencilUnitSim::new(&program, stencil, &inputs, vec![1]);

        // Feed the input stream 0..8 and run until done.
        let data: Vec<f64> = (0..8).map(|v| v as f64).collect();
        let mut fed = 0usize;
        for cycle in 0..200u64 {
            for c in channels.iter_mut() {
                c.begin_cycle();
            }
            if fed < data.len() && channels[0].can_push() {
                channels[0].push(cycle, data[fed]).unwrap();
                fed += 1;
            }
            unit.step(cycle, &mut channels);
            if unit.done() {
                break;
            }
        }
        assert!(unit.done());
        let outputs: Vec<f64> = (0..8).map(|_| channels[1].pop(1000).unwrap()).collect();
        // s[i] = a[i-1] + a[i+1] with constant-0 boundaries.
        assert_eq!(outputs, vec![1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 6.0]);
    }

    #[test]
    fn typed_and_value_kernel_paths_agree_bitwise() {
        // Two programs computing the same function: the first specializes
        // (all-float), the second keeps the dynamic `Value` path because the
        // integer literal blocks specialization (`1 * x` is not folded by
        // the exact fold mode and is value-preserving on f32).
        let build = |code: &str| {
            StencilProgramBuilder::new("p", &[8])
                .input("a", DataType::Float32, &["i"])
                .stencil("s", code)
                .boundary("s", "a", BoundaryCondition::Constant(0.5))
                .output("s")
                .build()
                .unwrap()
        };
        let typed_program = build("0.5 * (a[i-1] + a[i+1])");
        let value_program = build("1 * (0.5 * (a[i-1] + a[i+1]))");
        let data: Vec<f64> = (0..8).map(|v| v as f64 * 0.37).collect();
        let mut outputs: Vec<Vec<f64>> = Vec::new();
        for (program, expect_typed) in [(typed_program, true), (value_program, false)] {
            let stencil = program.stencil("s").unwrap();
            let mut channels = vec![Fifo::new("a->s", 64), Fifo::new("s->out", 64)];
            let wiring: BTreeMap<String, usize> = [("a".to_string(), 0)].into_iter().collect();
            let mut unit = StencilUnitSim::new(&program, stencil, &wiring, vec![1]);
            assert_eq!(unit.typed.is_some(), expect_typed);
            let mut fed = 0usize;
            for cycle in 0..200u64 {
                for c in channels.iter_mut() {
                    c.begin_cycle();
                }
                if fed < data.len() && channels[0].can_push() {
                    channels[0].push(cycle, data[fed]).unwrap();
                    fed += 1;
                }
                unit.step(cycle, &mut channels);
                if unit.done() {
                    break;
                }
            }
            assert!(unit.done());
            outputs.push((0..8).map(|_| channels[1].pop(1000).unwrap()).collect());
        }
        for (a, b) in outputs[0].iter().zip(outputs[1].iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn lane_batched_unit_matches_scalar_unit_bitwise() {
        // A 2-D stencil with boundary predication on both ends of the
        // innermost dimension: interior cells lane-batch (when enough data
        // is buffered), halo cells take the scalar path, and the produced
        // stream must match the scalar unit's bit for bit.
        let program = StencilProgramBuilder::new("p", &[4, 19])
            .input("a", DataType::Float32, &["i", "j"])
            .stencil("s", "0.5 * (a[i,j-1] + a[i,j+1]) - 0.25 * a[i-1,j]")
            .boundary("s", "a", BoundaryCondition::Constant(0.75))
            .output("s")
            .build()
            .unwrap();
        let stencil = program.stencil("s").unwrap();
        let total = program.space().num_cells();
        let data: Vec<f64> = (0..total)
            .map(|v| (v as f64 * 0.37) as f32 as f64)
            .collect();
        let mut outputs: Vec<Vec<f64>> = Vec::new();
        for lane_batching in [false, true] {
            let mut channels = vec![Fifo::new("a->s", 1024), Fifo::new("s->out", 1024)];
            let wiring: BTreeMap<String, usize> = [("a".to_string(), 0)].into_iter().collect();
            let mut unit = StencilUnitSim::new(&program, stencil, &wiring, vec![1])
                .with_lane_batching(lane_batching);
            assert!(unit.lane_capable);
            let mut fed = 0usize;
            for cycle in 0..10_000u64 {
                for c in channels.iter_mut() {
                    c.begin_cycle();
                }
                // Feed eagerly so the lane path has whole batches buffered.
                while fed < data.len() && channels[0].can_push() {
                    channels[0].push(cycle, data[fed]).unwrap();
                    fed += 1;
                }
                unit.step(cycle, &mut channels);
                if unit.done() {
                    break;
                }
            }
            assert!(unit.done());
            assert_eq!(unit.produced, total);
            outputs.push(
                (0..total)
                    .map(|_| channels[1].pop(1_000_000).unwrap())
                    .collect(),
            );
        }
        for (cell, (a, b)) in outputs[0].iter().zip(outputs[1].iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "cell {cell}: {a:?} vs {b:?}");
        }
    }

    #[test]
    fn branchy_kernels_lane_batch_after_if_conversion() {
        // A data-dependent ternary used to force the scalar path
        // (`supports_lanes` rejected the jump diamond); the if-conversion
        // pass lowers it to a select, so the unit's lane mode engages — and
        // the produced stream must still match the scalar unit bit for bit.
        let program = StencilProgramBuilder::new("p", &[4, 19])
            .input("a", DataType::Float32, &["i", "j"])
            .stencil(
                "s",
                "d = a[i,j] - a[i,j-1]; d > 0.0 ? d * a[i,j+1] : -d * a[i,j]",
            )
            .boundary("s", "a", BoundaryCondition::Constant(0.25))
            .output("s")
            .build()
            .unwrap();
        let stencil = program.stencil("s").unwrap();
        let total = program.space().num_cells();
        let data: Vec<f64> = (0..total)
            .map(|v| ((v as f64 * 0.61 - 11.0) as f32) as f64)
            .collect();
        let mut outputs: Vec<Vec<f64>> = Vec::new();
        for lane_batching in [false, true] {
            let mut channels = vec![Fifo::new("a->s", 1024), Fifo::new("s->out", 1024)];
            let wiring: BTreeMap<String, usize> = [("a".to_string(), 0)].into_iter().collect();
            let mut unit = StencilUnitSim::new(&program, stencil, &wiring, vec![1])
                .with_lane_batching(lane_batching);
            assert!(
                unit.lane_capable,
                "if-converted ternary kernels must support lanes"
            );
            let mut fed = 0usize;
            for cycle in 0..10_000u64 {
                for c in channels.iter_mut() {
                    c.begin_cycle();
                }
                while fed < data.len() && channels[0].can_push() {
                    channels[0].push(cycle, data[fed]).unwrap();
                    fed += 1;
                }
                unit.step(cycle, &mut channels);
                if unit.done() {
                    break;
                }
            }
            assert!(unit.done());
            outputs.push(
                (0..total)
                    .map(|_| channels[1].pop(1_000_000).unwrap())
                    .collect(),
            );
        }
        for (cell, (a, b)) in outputs[0].iter().zip(outputs[1].iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "cell {cell}: {a:?} vs {b:?}");
        }
    }

    #[test]
    fn unit_stalls_without_input_and_counts_it() {
        let program = simple_program();
        let stencil = program.stencil("s").unwrap();
        let mut channels = vec![Fifo::new("a->s", 4), Fifo::new("s->out", 4)];
        let inputs: BTreeMap<String, usize> = [("a".to_string(), 0)].into_iter().collect();
        let mut unit = StencilUnitSim::new(&program, stencil, &inputs, vec![1]);
        for c in channels.iter_mut() {
            c.begin_cycle();
        }
        // No input available: no progress, and the stall is recorded.
        assert!(!unit.step(0, &mut channels));
        assert!(unit.input_stalls > 0);
    }

    #[test]
    fn unit_blocks_on_full_output_channel() {
        let program = simple_program();
        let stencil = program.stencil("s").unwrap();
        // Output channel of capacity 1.
        let mut channels = vec![Fifo::new("a->s", 64), Fifo::new("s->out", 1)];
        let inputs: BTreeMap<String, usize> = [("a".to_string(), 0)].into_iter().collect();
        let mut unit = StencilUnitSim::new(&program, stencil, &inputs, vec![1]);
        for cycle in 0..20u64 {
            for c in channels.iter_mut() {
                c.begin_cycle();
            }
            if channels[0].can_push() {
                channels[0].push(cycle, cycle as f64).unwrap();
            }
            unit.step(cycle, &mut channels);
        }
        // Only one output fits; the unit must have stalled on output.
        assert_eq!(channels[1].len(), 1);
        assert!(unit.output_stalls > 0);
        assert!(unit.produced <= 2);
    }
}
