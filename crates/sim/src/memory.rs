//! Off-chip memory model and the reader / writer units attached to it.

use crate::channel::Fifo;
use stencilflow_program::IterationSpace;
use stencilflow_reference::Grid;

/// Shared off-chip bandwidth budget.
///
/// All full-domain readers and all writers draw words from the same per-cycle
/// budget; when the budget is exhausted, the remaining memory units stall for
/// the rest of the cycle. Lower-dimensional parameter fields are served from
/// on-chip copies after an initial load and do not draw from the budget,
/// matching how the analysis counts "operands per cycle" (§VIII-D, §IX-A).
#[derive(Debug, Clone)]
pub struct MemoryModel {
    words_per_cycle: Option<f64>,
    credits: f64,
    total_words: u64,
    stalled_requests: u64,
}

impl MemoryModel {
    /// Create a memory model; `None` means unlimited bandwidth.
    pub fn new(words_per_cycle: Option<f64>) -> Self {
        MemoryModel {
            words_per_cycle,
            credits: 0.0,
            total_words: 0,
            stalled_requests: 0,
        }
    }

    /// Grant this cycle's budget.
    pub fn begin_cycle(&mut self) {
        match self.words_per_cycle {
            Some(budget) => {
                // Credits do not accumulate beyond one cycle's worth plus one
                // word: DRAM bandwidth not used in a cycle is lost.
                self.credits = (self.credits + budget).min(budget.max(1.0));
            }
            None => self.credits = f64::INFINITY,
        }
    }

    /// Try to reserve one word of bandwidth.
    pub fn request_word(&mut self) -> bool {
        if self.credits >= 1.0 {
            self.credits -= 1.0;
            self.total_words += 1;
            true
        } else {
            self.stalled_requests += 1;
            false
        }
    }

    /// Total words transferred.
    pub fn total_words(&self) -> u64 {
        self.total_words
    }

    /// Number of requests that had to wait for bandwidth.
    pub fn stalled_requests(&self) -> u64 {
        self.stalled_requests
    }
}

/// A dedicated prefetcher reading one input field from off-chip memory and
/// broadcasting it, one element per output cell, to all consumers.
#[derive(Debug)]
pub struct ReaderUnit {
    /// Field name.
    pub field: String,
    /// Values streamed per cell (pre-projected from the input grid).
    values: Vec<f64>,
    /// Indices of the outgoing channels in the simulator's channel table.
    pub out_channels: Vec<usize>,
    /// Whether this reader draws from the off-chip bandwidth budget
    /// (full-domain fields only).
    pub uses_bandwidth: bool,
    /// Elements pushed so far.
    pub produced: usize,
    /// Cycles spent unable to push.
    pub stall_cycles: u64,
}

impl ReaderUnit {
    /// Build a reader by projecting `grid` onto the full iteration space:
    /// element `c` of the stream is the grid value the stencils expect at
    /// cell `c` (lower-dimensional fields repeat values).
    pub fn new(
        field: &str,
        grid: &Grid,
        space: &IterationSpace,
        out_channels: Vec<usize>,
        uses_bandwidth: bool,
    ) -> Self {
        let mut values = Vec::with_capacity(space.num_cells());
        for index in space.indices() {
            let projected: Vec<usize> = grid
                .dims()
                .iter()
                .map(|d| space.dim_index(d).map(|ix| index[ix]).unwrap_or(0))
                .collect();
            values.push(grid.get(&projected));
        }
        ReaderUnit {
            field: field.to_string(),
            values,
            out_channels,
            uses_bandwidth,
            produced: 0,
            stall_cycles: 0,
        }
    }

    /// Whether the reader has streamed its whole field.
    pub fn done(&self) -> bool {
        self.produced >= self.values.len()
    }

    /// Attempt one cycle of work; returns `true` if progress was made.
    pub fn step(&mut self, now: u64, channels: &mut [Fifo], memory: &mut MemoryModel) -> bool {
        if self.done() {
            return false;
        }
        if !self.out_channels.iter().all(|&c| channels[c].can_push()) {
            self.stall_cycles += 1;
            return false;
        }
        if self.uses_bandwidth && !memory.request_word() {
            self.stall_cycles += 1;
            return false;
        }
        let value = self.values[self.produced];
        for &c in &self.out_channels {
            channels[c]
                .push(now, value)
                .expect("output space reserved by the can_push check above");
        }
        self.produced += 1;
        true
    }
}

/// A dedicated writer draining one program output to off-chip memory.
#[derive(Debug)]
pub struct WriterUnit {
    /// Output field name.
    pub field: String,
    /// Index of the incoming channel.
    pub in_channel: usize,
    /// Collected output values (row-major over the iteration space).
    pub values: Vec<f64>,
    /// Total number of cells expected.
    pub expected: usize,
    /// Cycles spent waiting for data or bandwidth.
    pub stall_cycles: u64,
}

impl WriterUnit {
    /// Create a writer expecting `expected` elements.
    pub fn new(field: &str, in_channel: usize, expected: usize) -> Self {
        WriterUnit {
            field: field.to_string(),
            in_channel,
            values: Vec::with_capacity(expected),
            expected,
            stall_cycles: 0,
        }
    }

    /// Whether all output cells have been received.
    pub fn done(&self) -> bool {
        self.values.len() >= self.expected
    }

    /// Attempt one cycle of work; returns `true` if progress was made.
    pub fn step(&mut self, now: u64, channels: &mut [Fifo], memory: &mut MemoryModel) -> bool {
        if self.done() {
            return false;
        }
        if !channels[self.in_channel].can_pop(now) {
            self.stall_cycles += 1;
            return false;
        }
        if !memory.request_word() {
            self.stall_cycles += 1;
            return false;
        }
        let value = channels[self.in_channel]
            .pop(now)
            .expect("word availability established by the can_pop check above");
        self.values.push(value);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilflow_expr::DataType;

    #[test]
    fn memory_model_enforces_budget() {
        let mut memory = MemoryModel::new(Some(2.0));
        memory.begin_cycle();
        assert!(memory.request_word());
        assert!(memory.request_word());
        assert!(!memory.request_word());
        assert_eq!(memory.total_words(), 2);
        assert_eq!(memory.stalled_requests(), 1);
        memory.begin_cycle();
        assert!(memory.request_word());
    }

    #[test]
    fn unlimited_memory_never_stalls() {
        let mut memory = MemoryModel::new(None);
        memory.begin_cycle();
        for _ in 0..1000 {
            assert!(memory.request_word());
        }
        assert_eq!(memory.stalled_requests(), 0);
    }

    #[test]
    fn reader_projects_lower_dimensional_fields() {
        let space = IterationSpace::new(&["i", "j"], &[2, 3]).unwrap();
        let grid = Grid::from_values(&["j"], &[3], &[10.0, 20.0, 30.0]);
        let mut channels = vec![Fifo::new("c", 16)];
        let mut memory = MemoryModel::new(None);
        let mut reader = ReaderUnit::new("row", &grid, &space, vec![0], false);
        memory.begin_cycle();
        channels[0].begin_cycle();
        for _ in 0..6 {
            assert!(reader.step(0, &mut channels, &mut memory));
        }
        assert!(reader.done());
        let streamed: Vec<f64> = (0..6).map(|_| channels[0].pop(0).unwrap()).collect();
        assert_eq!(streamed, vec![10.0, 20.0, 30.0, 10.0, 20.0, 30.0]);
    }

    #[test]
    fn writer_collects_in_order() {
        let mut channels = vec![Fifo::new("c", 16)];
        channels[0].begin_cycle();
        let mut memory = MemoryModel::new(None);
        memory.begin_cycle();
        channels[0].push(0, 1.5).unwrap();
        channels[0].push(0, 2.5).unwrap();
        let mut writer = WriterUnit::new("out", 0, 2);
        assert!(writer.step(0, &mut channels, &mut memory));
        assert!(writer.step(0, &mut channels, &mut memory));
        assert!(writer.done());
        assert_eq!(writer.values, vec![1.5, 2.5]);
        // Further steps make no progress.
        assert!(!writer.step(0, &mut channels, &mut memory));
    }

    #[test]
    fn reader_stalls_on_full_channel_and_scalar_grid_broadcasts() {
        let space = IterationSpace::new(&["i"], &[4]).unwrap();
        let grid = Grid::scalar(7.0, DataType::Float32);
        let mut channels = vec![Fifo::new("c", 1)];
        let mut memory = MemoryModel::new(None);
        memory.begin_cycle();
        channels[0].begin_cycle();
        let mut reader = ReaderUnit::new("dt", &grid, &space, vec![0], false);
        assert!(reader.step(0, &mut channels, &mut memory));
        assert!(!reader.step(0, &mut channels, &mut memory)); // channel full
        assert_eq!(reader.stall_cycles, 1);
        assert_eq!(channels[0].pop(0).unwrap(), 7.0);
    }
}
