//! The top-level simulator: builds the spatial design from a program and its
//! buffering analysis, then executes it cycle by cycle.

use crate::channel::Fifo;
use crate::config::SimConfig;
use crate::memory::{MemoryModel, ReaderUnit, WriterUnit};
use crate::report::{ChannelStats, SimOutcome, SimReport, UnitStats};
use crate::unit::StencilUnitSim;
use std::collections::BTreeMap;
use stencilflow_core::{AnalysisConfig, CoreError, DelayBufferAnalysis, InternalBufferAnalysis};
use stencilflow_core::{MultiDevicePlan, Result as CoreResult};
use stencilflow_program::{ProgramError, StencilDag, StencilProgram};
use stencilflow_reference::Grid;

/// Description of one channel of the built design (before instantiation).
#[derive(Debug, Clone)]
struct ChannelSpec {
    from: String,
    to: String,
    capacity: usize,
    latency: u64,
    words_per_cycle: f64,
}

/// A spatial design ready to be simulated on concrete input data.
#[derive(Debug)]
pub struct Simulator {
    program: StencilProgram,
    config: SimConfig,
    channel_specs: Vec<ChannelSpec>,
    /// `(from, to) -> channel index`
    channel_index: BTreeMap<(String, String), usize>,
    /// Stencils in topological order.
    stencil_order: Vec<String>,
}

impl Simulator {
    /// Build the single-device design for `program`, using the delay-buffer
    /// analysis to size every channel.
    ///
    /// # Errors
    ///
    /// Returns an error if the program DAG is invalid.
    pub fn build(
        program: &StencilProgram,
        analysis: &AnalysisConfig,
        config: &SimConfig,
    ) -> CoreResult<Self> {
        Self::build_inner(program, analysis, config, None)
    }

    /// Build a design partitioned across multiple devices: channels crossing
    /// device boundaries become network channels with the configured latency
    /// and bandwidth (the SMI substitute).
    ///
    /// # Errors
    ///
    /// Returns an error if the program DAG is invalid or the plan does not
    /// cover all stencils.
    pub fn build_multi_device(
        program: &StencilProgram,
        analysis: &AnalysisConfig,
        plan: &MultiDevicePlan,
        config: &SimConfig,
    ) -> CoreResult<Self> {
        Self::build_inner(program, analysis, config, Some(plan))
    }

    fn build_inner(
        program: &StencilProgram,
        analysis: &AnalysisConfig,
        config: &SimConfig,
        plan: Option<&MultiDevicePlan>,
    ) -> CoreResult<Self> {
        let internal = InternalBufferAnalysis::compute(program, analysis)?;
        let delay = DelayBufferAnalysis::compute(program, &internal, analysis)?;
        let dag = program.dag()?;

        // Device assignment for network-channel classification.
        let mut device_of: BTreeMap<String, usize> = BTreeMap::new();
        if let Some(plan) = plan {
            for partition in &plan.devices {
                for stencil in &partition.stencils {
                    device_of.insert(stencil.clone(), partition.index);
                }
            }
        }

        let mut channel_specs = Vec::new();
        let mut channel_index = BTreeMap::new();
        for channel in delay.channels() {
            let capacity = config
                .channel_depth_override
                .unwrap_or(channel.depth_words.max(1) + config.extra_channel_slack)
                as usize;
            let crosses_devices = match (device_of.get(&channel.from), device_of.get(&channel.to)) {
                (Some(a), Some(b)) => a != b,
                _ => false,
            };
            let (latency, words_per_cycle) = if crosses_devices {
                (
                    config.network.latency_cycles,
                    config.network.words_per_cycle,
                )
            } else {
                (0, f64::INFINITY)
            };
            let index = channel_specs.len();
            channel_specs.push(ChannelSpec {
                from: channel.from.clone(),
                to: channel.to.clone(),
                capacity: capacity.max(1) + if crosses_devices { latency as usize } else { 0 },
                latency,
                words_per_cycle,
            });
            channel_index.insert((channel.from.clone(), channel.to.clone()), index);
        }

        let _ = &dag; // DAG used only for validation side effects today.
        Ok(Simulator {
            program: program.clone(),
            config: config.clone(),
            channel_specs,
            channel_index,
            stencil_order: program.topological_stencils()?,
        })
    }

    /// Number of channels in the built design.
    pub fn channel_count(&self) -> usize {
        self.channel_specs.len()
    }

    /// Run the design on concrete input grids.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Program`] if an input grid is missing or has the
    /// wrong shape.
    pub fn run(&self, inputs: &BTreeMap<String, Grid>) -> CoreResult<SimReport> {
        let program = &self.program;
        let space = program.space();
        let total_cells = space.num_cells();

        // Validate inputs.
        for (name, decl) in program.inputs() {
            let grid = inputs.get(name).ok_or_else(|| {
                CoreError::Program(ProgramError::Invalid {
                    message: format!("missing input grid `{name}`"),
                })
            })?;
            if grid.rank() != decl.rank() {
                return Err(CoreError::Program(ProgramError::Invalid {
                    message: format!(
                        "input `{name}` has rank {}, expected {}",
                        grid.rank(),
                        decl.rank()
                    ),
                }));
            }
        }

        // Instantiate channels.
        let mut channels: Vec<Fifo> = self
            .channel_specs
            .iter()
            .map(|spec| {
                let mut fifo = Fifo::new(&format!("{}->{}", spec.from, spec.to), spec.capacity)
                    .with_latency(spec.latency);
                if spec.words_per_cycle.is_finite() {
                    fifo = fifo.with_bandwidth(spec.words_per_cycle);
                }
                fifo
            })
            .collect();

        // Readers: one per program input.
        let full_rank = space.rank();
        let mut readers: Vec<ReaderUnit> = Vec::new();
        for (name, decl) in program.inputs() {
            let outs: Vec<usize> = self
                .channel_index
                .iter()
                .filter(|((from, _), _)| from == name)
                .map(|(_, &idx)| idx)
                .collect();
            if outs.is_empty() {
                continue; // unused input
            }
            readers.push(ReaderUnit::new(
                name,
                &inputs[name],
                space,
                outs,
                decl.rank() == full_rank,
            ));
        }

        // Stencil units.
        let mut units: Vec<StencilUnitSim> = Vec::new();
        for name in &self.stencil_order {
            let stencil = program.stencil(name).expect("topological order is valid");
            let mut input_channels = BTreeMap::new();
            for (field, _) in stencil.accesses.iter() {
                let idx = self
                    .channel_index
                    .get(&(field.to_string(), name.clone()))
                    .copied()
                    .ok_or_else(|| CoreError::Internal {
                        message: format!("no channel from `{field}` to `{name}`"),
                    })?;
                input_channels.insert(field.to_string(), idx);
            }
            let outs: Vec<usize> = self
                .channel_index
                .iter()
                .filter(|((from, _), _)| from == name)
                .map(|(_, &idx)| idx)
                .collect();
            units.push(
                StencilUnitSim::new(program, stencil, &input_channels, outs)
                    .with_lane_batching(self.config.lane_batching),
            );
        }

        // Writers: one per program output.
        let mut writers: Vec<WriterUnit> = Vec::new();
        for output in program.outputs() {
            let sink = StencilDag::output_node_name(output);
            let idx = self
                .channel_index
                .get(&(output.clone(), sink))
                .copied()
                .ok_or_else(|| CoreError::Internal {
                    message: format!("no channel from `{output}` to its output memory"),
                })?;
            writers.push(WriterUnit::new(output, idx, total_cells));
        }

        // Main loop.
        let mut memory = MemoryModel::new(self.config.memory_words_per_cycle);
        let mut cycles: u64 = 0;
        let mut idle_cycles: u64 = 0;
        let outcome = loop {
            if writers.iter().all(WriterUnit::done) {
                break SimOutcome::Completed;
            }
            if cycles >= self.config.max_cycles {
                break SimOutcome::MaxCyclesExceeded;
            }
            memory.begin_cycle();
            for channel in channels.iter_mut() {
                channel.begin_cycle();
            }
            let mut progress = false;
            for reader in readers.iter_mut() {
                progress |= reader.step(cycles, &mut channels, &mut memory);
            }
            for unit in units.iter_mut() {
                progress |= unit.step(cycles, &mut channels);
            }
            for writer in writers.iter_mut() {
                progress |= writer.step(cycles, &mut channels, &mut memory);
            }
            if progress {
                idle_cycles = 0;
            } else {
                idle_cycles += 1;
                if idle_cycles >= self.config.deadlock_window {
                    break SimOutcome::Deadlocked;
                }
            }
            cycles += 1;
        };

        // Collect outputs.
        let dim_refs: Vec<&str> = space.dims.iter().map(String::as_str).collect();
        let mut outputs = BTreeMap::new();
        if outcome == SimOutcome::Completed {
            for writer in &writers {
                let dtype = program
                    .field_type(&writer.field)
                    .unwrap_or(stencilflow_expr::DataType::Float32);
                let mut grid = Grid::zeros(&dim_refs, &space.shape, dtype);
                for (flat, index) in space.indices().enumerate() {
                    grid.set(&index, writer.values[flat]);
                }
                outputs.insert(writer.field.clone(), grid);
            }
        }

        // Statistics.
        let mut unit_stats = Vec::new();
        for reader in &readers {
            unit_stats.push(UnitStats {
                name: format!("read:{}", reader.field),
                produced: reader.produced,
                input_stalls: 0,
                output_stalls: reader.stall_cycles,
            });
        }
        for unit in &units {
            unit_stats.push(UnitStats {
                name: unit.name.clone(),
                produced: unit.produced,
                input_stalls: unit.input_stalls,
                output_stalls: unit.output_stalls,
            });
        }
        for writer in &writers {
            unit_stats.push(UnitStats {
                name: format!("write:{}", writer.field),
                produced: writer.values.len(),
                input_stalls: writer.stall_cycles,
                output_stalls: 0,
            });
        }
        let channel_stats = channels
            .iter()
            .map(|c| ChannelStats {
                name: c.name().to_string(),
                capacity: c.capacity(),
                high_watermark: c.high_watermark(),
                words: c.pushed_total(),
            })
            .collect();

        Ok(SimReport {
            outcome,
            cycles,
            outputs,
            unit_stats,
            channel_stats,
            memory_words: memory.total_words(),
            memory_stalls: memory.stalled_requests(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilflow_core::PartitionConfig;
    use stencilflow_reference::{generate_inputs, ReferenceExecutor};
    use stencilflow_workloads::{chain_program, ChainSpec};

    #[test]
    fn chain_streams_at_full_rate() {
        let program = chain_program(&ChainSpec::new(4, 8).with_shape(&[32, 8, 8]));
        let inputs = generate_inputs(&program, 1);
        let sim = Simulator::build(
            &program,
            &AnalysisConfig::paper_defaults(),
            &SimConfig::default(),
        )
        .unwrap();
        let report = sim.run(&inputs).unwrap();
        assert!(report.completed());
        let n = program.space().num_cells();
        // A linear chain is fully pipelined: close to one cell per cycle.
        assert!(
            report.cells_per_cycle(n) > 0.8,
            "rate = {}",
            report.cells_per_cycle(n)
        );
        // Functional check against the reference executor.
        let reference = ReferenceExecutor::new().run(&program, &inputs).unwrap();
        let max_err = reference
            .compare_field("f4", report.output("f4").unwrap())
            .unwrap();
        assert!(max_err < 1e-4);
    }

    #[test]
    fn multi_device_chain_matches_single_device_functionally() {
        let program = chain_program(&ChainSpec::new(6, 8).with_shape(&[16, 8, 8]));
        let inputs = generate_inputs(&program, 2);
        let single = Simulator::build(
            &program,
            &AnalysisConfig::paper_defaults(),
            &SimConfig::default(),
        )
        .unwrap()
        .run(&inputs)
        .unwrap();
        let plan = MultiDevicePlan::partition(&program, &PartitionConfig::devices(2)).unwrap();
        let multi = Simulator::build_multi_device(
            &program,
            &AnalysisConfig::paper_defaults(),
            &plan,
            &SimConfig::default(),
        )
        .unwrap()
        .run(&inputs)
        .unwrap();
        assert!(single.completed());
        assert!(multi.completed());
        let a = single.output("f6").unwrap();
        let b = multi.output("f6").unwrap();
        assert!(a.approx_eq(b, 1e-9));
        // The network latency shows up as extra cycles, but the design still
        // streams (it is not orders of magnitude slower).
        assert!(multi.cycles >= single.cycles);
        assert!(multi.cycles < single.cycles * 3);
    }

    #[test]
    fn lane_batched_simulation_is_bit_identical() {
        // The lane-batching fast mode must not change a single output bit —
        // only how many cells a unit may process per step.
        let program = chain_program(&ChainSpec::new(4, 8).with_shape(&[16, 8, 8]));
        let inputs = generate_inputs(&program, 3);
        let scalar = Simulator::build(
            &program,
            &AnalysisConfig::paper_defaults(),
            &SimConfig::default(),
        )
        .unwrap()
        .run(&inputs)
        .unwrap();
        let batched = Simulator::build(
            &program,
            &AnalysisConfig::paper_defaults(),
            &SimConfig::default().with_lane_batching(true),
        )
        .unwrap()
        .run(&inputs)
        .unwrap();
        assert!(scalar.completed());
        assert!(batched.completed());
        let a = scalar.output("f4").unwrap();
        let b = batched.output("f4").unwrap();
        for (x, y) in a.as_slice().iter().zip(b.as_slice().iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn channel_count_matches_dag_edges() {
        let program = chain_program(&ChainSpec::new(3, 8).with_shape(&[16, 8, 8]));
        let sim = Simulator::build(
            &program,
            &AnalysisConfig::paper_defaults(),
            &SimConfig::default(),
        )
        .unwrap();
        // f0->f1, f1->f2, f2->f3, f3->out.
        assert_eq!(sim.channel_count(), 4);
    }
}
