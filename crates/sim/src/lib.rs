//! Cycle-level spatial dataflow simulator for StencilFlow designs.
//!
//! The paper evaluates StencilFlow on a Stratix 10 FPGA testbed; no FPGA (or
//! HLS toolchain) is available in this reproduction, so this crate stands in
//! for the hardware: it simulates, cycle by cycle, exactly the architecture
//! the paper's code generator emits (§VI, Fig. 12):
//!
//! * one **stencil unit** per DAG node, holding shift-register internal
//!   buffers with tap points, predicated boundary handling, and
//!   initialization / streaming / draining phases;
//! * bounded **FIFO channels** between units, with the depths computed by the
//!   delay-buffer analysis (`stencilflow-core`);
//! * dedicated **memory readers / writers** at source and sink nodes, subject
//!   to an optional off-chip bandwidth budget;
//! * optional **network channels** (SMI substitute) with added latency and
//!   bandwidth limits for designs spanning multiple devices.
//!
//! Because the units evaluate the real stencil expressions on real data, the
//! simulator doubles as a functional backend: its outputs are compared
//! against the sequential reference executor in the test suite, and its cycle
//! counts against the analytical model `C = L + I·N` (Eq. 1). Crucially, it
//! also reproduces the paper's deadlock scenario (Fig. 4): running a
//! reconvergent DAG with insufficient channel depths stalls permanently,
//! while the analysis-computed depths stream to completion.

#![forbid(unsafe_code)]

// The channel layer moved to `stencilflow-core` so the sharded runtime in
// `stencilflow-reference` (a dependency of this crate) can reuse it; the
// historical `sim::channel` path keeps working through this re-export.
pub use stencilflow_core::channel;
pub mod config;
pub mod memory;
pub mod report;
pub mod simulator;
pub mod unit;

pub use channel::{ChannelError, Fifo};
pub use config::{NetworkParams, SimConfig};
pub use memory::MemoryModel;
pub use report::{SimOutcome, SimReport};
pub use simulator::Simulator;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use stencilflow_core::AnalysisConfig;
    use stencilflow_reference::{generate_inputs, ReferenceExecutor};
    use stencilflow_workloads::listing1::listing1_with_shape;

    #[test]
    fn listing1_streams_to_completion_and_matches_reference() {
        let program = listing1_with_shape(&[6, 6, 6]);
        let inputs = generate_inputs(&program, 11);
        let reference = ReferenceExecutor::new().run(&program, &inputs).unwrap();

        let sim = Simulator::build(
            &program,
            &AnalysisConfig::paper_defaults(),
            &SimConfig::default(),
        )
        .unwrap();
        let report = sim.run(&inputs).unwrap();
        assert_eq!(report.outcome, SimOutcome::Completed);
        let out = report.output("b4").unwrap();
        let max_err = reference.compare_field("b4", out).unwrap();
        assert!(
            max_err < 1e-5,
            "simulator diverges from reference: {max_err}"
        );
        // Eq. 1: cycles are close to N + L (never less than N).
        let n = program.space().num_cells() as u64;
        assert!(report.cycles >= n);
        assert!(
            report.cycles < 3 * n,
            "cycles = {} for N = {n}",
            report.cycles
        );
    }

    #[test]
    fn insufficient_channel_depths_deadlock() {
        // Fig. 4: the fork/join of listing1 (b0 feeds b1/b2, reconverging at
        // b4 through paths of different latency) deadlocks when all channels
        // are forced to depth 1.
        let program = listing1_with_shape(&[6, 6, 6]);
        let inputs = generate_inputs(&program, 11);
        let config = SimConfig {
            channel_depth_override: Some(1),
            ..SimConfig::default()
        };
        let sim = Simulator::build(&program, &AnalysisConfig::paper_defaults(), &config).unwrap();
        let report = sim.run(&inputs).unwrap();
        assert_eq!(report.outcome, SimOutcome::Deadlocked);
    }

    #[test]
    fn memory_bandwidth_limit_slows_the_design_down() {
        let program = listing1_with_shape(&[6, 6, 6]);
        let inputs = generate_inputs(&program, 3);
        let unlimited = Simulator::build(
            &program,
            &AnalysisConfig::paper_defaults(),
            &SimConfig::default(),
        )
        .unwrap()
        .run(&inputs)
        .unwrap();
        let limited_config = SimConfig {
            memory_words_per_cycle: Some(1.0),
            ..SimConfig::default()
        };
        let limited =
            Simulator::build(&program, &AnalysisConfig::paper_defaults(), &limited_config)
                .unwrap()
                .run(&inputs)
                .unwrap();
        assert_eq!(limited.outcome, SimOutcome::Completed);
        assert!(limited.cycles > unlimited.cycles);
        // Results stay correct, only slower.
        let a = unlimited.output("b4").unwrap();
        let b = limited.output("b4").unwrap();
        assert!(a.approx_eq(b, 1e-6));
    }

    #[test]
    fn horizontal_diffusion_small_matches_reference() {
        use stencilflow_workloads::{horizontal_diffusion, HorizontalDiffusionSpec};
        let program = horizontal_diffusion(&HorizontalDiffusionSpec::small());
        let inputs = generate_inputs(&program, 5);
        let reference = ReferenceExecutor::new().run(&program, &inputs).unwrap();
        let sim = Simulator::build(
            &program,
            &AnalysisConfig::paper_defaults(),
            &SimConfig::default(),
        )
        .unwrap();
        let report = sim.run(&inputs).unwrap();
        assert_eq!(report.outcome, SimOutcome::Completed);
        for output in ["u_out", "v_out", "w_out", "pp_out"] {
            let max_err = reference
                .compare_field(output, report.output(output).unwrap())
                .unwrap();
            assert!(max_err < 1e-4, "{output} diverges: {max_err}");
        }
    }

    #[test]
    fn missing_inputs_are_reported() {
        let program = listing1_with_shape(&[4, 4, 4]);
        let sim = Simulator::build(
            &program,
            &AnalysisConfig::paper_defaults(),
            &SimConfig::default(),
        )
        .unwrap();
        let empty: BTreeMap<String, stencilflow_reference::Grid> = BTreeMap::new();
        assert!(sim.run(&empty).is_err());
    }
}
