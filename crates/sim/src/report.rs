//! Simulation results and statistics.

use std::collections::BTreeMap;
use stencilflow_reference::Grid;

/// How a simulation run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimOutcome {
    /// All program outputs were fully written.
    Completed,
    /// No unit made progress for the configured deadlock window: the design
    /// is deadlocked (Fig. 4 without sufficient buffering).
    Deadlocked,
    /// The configured cycle limit was reached before completion.
    MaxCyclesExceeded,
}

/// Per-unit statistics collected during a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitStats {
    /// Unit name (stencil, reader `read:<field>`, or writer `write:<field>`).
    pub name: String,
    /// Output cells or elements produced.
    pub produced: usize,
    /// Cycles stalled waiting for inputs.
    pub input_stalls: u64,
    /// Cycles stalled waiting for output space or bandwidth.
    pub output_stalls: u64,
}

/// Per-channel statistics collected during a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelStats {
    /// Channel name (`producer->consumer`).
    pub name: String,
    /// Configured capacity in words.
    pub capacity: usize,
    /// Highest occupancy observed.
    pub high_watermark: usize,
    /// Total words transferred.
    pub words: u64,
}

/// The result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// How the run ended.
    pub outcome: SimOutcome,
    /// Cycles simulated.
    pub cycles: u64,
    /// Collected program outputs (one grid per program output), valid only
    /// when the run completed.
    pub outputs: BTreeMap<String, Grid>,
    /// Per-unit statistics.
    pub unit_stats: Vec<UnitStats>,
    /// Per-channel statistics.
    pub channel_stats: Vec<ChannelStats>,
    /// Total off-chip words transferred.
    pub memory_words: u64,
    /// Memory requests that had to wait for bandwidth.
    pub memory_stalls: u64,
}

impl SimReport {
    /// The collected grid of one program output.
    pub fn output(&self, name: &str) -> Option<&Grid> {
        self.outputs.get(name)
    }

    /// Whether the run completed successfully.
    pub fn completed(&self) -> bool {
        self.outcome == SimOutcome::Completed
    }

    /// Effective throughput in output cells per cycle (counting one output
    /// field; 1.0 means perfect pipelining).
    pub fn cells_per_cycle(&self, total_cells: usize) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        total_cells as f64 / self.cycles as f64
    }

    /// Statistics of one unit, if present.
    pub fn unit(&self, name: &str) -> Option<&UnitStats> {
        self.unit_stats.iter().find(|u| u.name == name)
    }

    /// The largest observed occupancy across all channels, as a fraction of
    /// capacity — useful to confirm that the computed delay buffers are
    /// actually exercised.
    pub fn peak_channel_utilization(&self) -> f64 {
        self.channel_stats
            .iter()
            .map(|c| c.high_watermark as f64 / c.capacity.max(1) as f64)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accessors() {
        let report = SimReport {
            outcome: SimOutcome::Completed,
            cycles: 100,
            outputs: BTreeMap::new(),
            unit_stats: vec![UnitStats {
                name: "s".into(),
                produced: 50,
                input_stalls: 3,
                output_stalls: 1,
            }],
            channel_stats: vec![ChannelStats {
                name: "a->s".into(),
                capacity: 16,
                high_watermark: 8,
                words: 50,
            }],
            memory_words: 100,
            memory_stalls: 0,
        };
        assert!(report.completed());
        assert_eq!(report.cells_per_cycle(50), 0.5);
        assert_eq!(report.unit("s").unwrap().produced, 50);
        assert!(report.unit("missing").is_none());
        assert_eq!(report.peak_channel_utilization(), 0.5);
        assert!(report.output("x").is_none());
    }

    #[test]
    fn outcome_equality() {
        assert_ne!(SimOutcome::Completed, SimOutcome::Deadlocked);
        assert_ne!(SimOutcome::Deadlocked, SimOutcome::MaxCyclesExceeded);
    }
}
