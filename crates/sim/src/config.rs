//! Simulation configuration.

/// Parameters of inter-device network channels (the SMI substitute).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkParams {
    /// Additional latency of a remote stream, in cycles.
    pub latency_cycles: u64,
    /// Bandwidth of a remote stream in words per cycle (two 40 Gbit/s links
    /// carry ~8 32-bit words per cycle at 300 MHz; the default of 4 models a
    /// single link).
    pub words_per_cycle: f64,
}

impl Default for NetworkParams {
    fn default() -> Self {
        NetworkParams {
            latency_cycles: 200,
            words_per_cycle: 4.0,
        }
    }
}

/// Configuration of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Force every channel to this depth instead of the analysis-computed
    /// depth. Used to demonstrate the deadlock of Fig. 4.
    pub channel_depth_override: Option<u64>,
    /// Off-chip memory bandwidth budget shared by all readers and writers, in
    /// words per cycle. `None` models unlimited bandwidth.
    pub memory_words_per_cycle: Option<f64>,
    /// Network parameters applied to channels that cross devices (only
    /// relevant when simulating a multi-device plan).
    pub network: NetworkParams,
    /// Abort the simulation after this many cycles without completion.
    pub max_cycles: u64,
    /// Declare deadlock after this many consecutive cycles without any unit
    /// making progress.
    pub deadlock_window: u64,
    /// Extra capacity (words) added to every channel on top of the computed
    /// delay-buffer depth. Models the granularity of on-chip memory blocks
    /// (an M20K holds 512 32-bit words, and HLS tools round FIFO depths up)
    /// and absorbs the small difference between the analysis's conservative
    /// compute-latency terms and the simulator's single-cycle evaluation.
    /// Ignored when `channel_depth_override` is set.
    pub extra_channel_slack: u64,
    /// Let stencil units consume, evaluate, and produce a full lane batch
    /// (`stencilflow_expr::KERNEL_LANES` cells) in one step when their
    /// sliding windows already buffer the data and the output channels have
    /// space. This is a **functional fast mode**: the output streams are
    /// bit-identical to the cycle-accurate run, but cycle counts and stall
    /// statistics no longer model the hardware. Off by default.
    pub lane_batching: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            channel_depth_override: None,
            memory_words_per_cycle: None,
            network: NetworkParams::default(),
            max_cycles: 200_000_000,
            deadlock_window: 10_000,
            extra_channel_slack: 1024,
            lane_batching: false,
        }
    }
}

impl SimConfig {
    /// Configuration that forces minimal channels, used to reproduce the
    /// deadlock scenario of Fig. 4.
    pub fn with_minimal_channels() -> Self {
        SimConfig {
            channel_depth_override: Some(1),
            ..Default::default()
        }
    }

    /// Set the shared off-chip bandwidth budget (builder style).
    pub fn with_memory_bandwidth(mut self, words_per_cycle: f64) -> Self {
        self.memory_words_per_cycle = Some(words_per_cycle);
        self
    }

    /// Enable lane-batched stencil units (builder style). Functional fast
    /// mode: bit-identical streams, non-hardware-accurate cycle counts.
    pub fn with_lane_batching(mut self, enabled: bool) -> Self {
        self.lane_batching = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let config = SimConfig::default();
        assert!(config.channel_depth_override.is_none());
        assert!(config.memory_words_per_cycle.is_none());
        assert!(config.max_cycles > 1_000_000);
        assert!(config.deadlock_window >= 1_000);
    }

    #[test]
    fn builders() {
        let config = SimConfig::with_minimal_channels().with_memory_bandwidth(2.0);
        assert_eq!(config.channel_depth_override, Some(1));
        assert_eq!(config.memory_words_per_cycle, Some(2.0));
        assert!(NetworkParams::default().words_per_cycle > 0.0);
    }
}
