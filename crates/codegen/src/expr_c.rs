//! Translation of stencil expressions to C (OpenCL C) source text.
//!
//! Two emitters are provided:
//!
//! * [`kernel_to_c`] — the preferred path: emits from the **optimized
//!   bytecode** ([`CompiledKernel`]), so the generated code reflects what
//!   the shared pass pipeline produced (if-converted selects, CSE'd
//!   subexpressions held in named temporaries, dead code already gone).
//!   It handles branch-free kernels only and returns `None` when jumps
//!   remain (an arm that resisted if-conversion).
//! * [`program_to_c`] / [`expr_to_c`] — the raw AST walk, kept as the
//!   fallback for jump-carrying kernels, where lazy evaluation must be
//!   expressed with native C ternaries.
//!
//! Both emit float literals in shortest-round-trip form and derive the
//! literal suffix (and math-function flavor, `sqrtf` vs `sqrt`) from the
//! kernel's element type, so `double` kernels are not silently truncated
//! through `float` constants.

use stencilflow_expr::ast::{BinOp, Expr, MathFn, Program, UnOp};
use stencilflow_expr::{CompiledKernel, DataType, Op, Value};

/// How [`kernel_to_c`] renders an [`Op::Select`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectStyle {
    /// A C conditional expression, `(c ? t : e)`.
    #[default]
    Ternary,
    /// The OpenCL `select(e, t, c)` builtin (note the operand order), with
    /// the condition cast to the integer type of matching width.
    OpenClSelect,
}

/// C scalar type name for a kernel element type.
fn c_type(dtype: DataType) -> &'static str {
    match dtype {
        DataType::Float64 => "double",
        _ => "float",
    }
}

/// Emit a floating-point literal in shortest-round-trip form, suffixed for
/// the kernel's element type (`f` only for `float` kernels — a `double`
/// kernel must not have its constants truncated through `float`).
pub(crate) fn float_literal(v: f64, dtype: DataType) -> String {
    // `{v:?}` prints the shortest decimal that round-trips to `v` exactly;
    // `{v}` does not guarantee that, and fixed-precision formats lose bits.
    let body = format!("{v:?}");
    match dtype {
        DataType::Float64 => body,
        _ => format!("{body}f"),
    }
}

/// Math-function spelling for the kernel's element type (`fminf` vs
/// `fmin`, ...).
pub(crate) fn mathfn_c(func: MathFn, dtype: DataType) -> String {
    let base = match func {
        MathFn::Sqrt => "sqrt",
        MathFn::Abs => "fabs",
        MathFn::Min => "fmin",
        MathFn::Max => "fmax",
        MathFn::Exp => "exp",
        MathFn::Log => "log",
        MathFn::Pow => "pow",
        MathFn::Sin => "sin",
        MathFn::Cos => "cos",
        MathFn::Tan => "tan",
        MathFn::Floor => "floor",
        MathFn::Ceil => "ceil",
    };
    match dtype {
        DataType::Float64 => base.to_string(),
        _ => format!("{base}f"),
    }
}

/// Translate a full code segment to a sequence of C statements via the raw
/// AST walk. Field accesses are rendered through `access`, which receives
/// the field name and its offsets and returns the C expression for that tap
/// (e.g. a shift-register read with boundary predication). `dtype` is the
/// kernel's element type, driving literal suffixes, local declarations, and
/// math-function flavors.
///
/// Prefer [`kernel_to_c`], which emits from the optimized bytecode; this
/// walk remains for kernels whose control flow resists if-conversion.
pub fn program_to_c(
    program: &Program,
    access: &impl Fn(&str, &[i64]) -> String,
    dtype: DataType,
) -> Vec<String> {
    let mut lines = Vec::new();
    for (idx, stmt) in program.statements.iter().enumerate() {
        let rhs = expr_to_c(&stmt.value, access, dtype);
        let line = match (&stmt.name, idx + 1 == program.statements.len()) {
            (Some(name), _) => format!("const {} {name} = {rhs};", c_type(dtype)),
            (None, true) => format!("result = {rhs};"),
            (None, false) => format!("(void)({rhs});"),
        };
        lines.push(line);
    }
    lines
}

/// Translate one expression to C (see [`program_to_c`]).
pub fn expr_to_c(expr: &Expr, access: &impl Fn(&str, &[i64]) -> String, dtype: DataType) -> String {
    match expr {
        Expr::IntLit(v) => format!("{v}"),
        Expr::FloatLit(v) => float_literal(*v, dtype),
        Expr::Var(name) => name.clone(),
        Expr::FieldAccess { field, indices } => {
            let offsets: Vec<i64> = indices.iter().map(|ix| ix.offset).collect();
            access(field, &offsets)
        }
        Expr::Unary { op, operand } => {
            let inner = expr_to_c(operand, access, dtype);
            match op {
                UnOp::Neg => format!("(-{inner})"),
                UnOp::Not => format!("(!{inner})"),
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = expr_to_c(lhs, access, dtype);
            let r = expr_to_c(rhs, access, dtype);
            format!("({l} {} {r})", op.symbol())
        }
        Expr::Ternary {
            cond,
            then,
            otherwise,
        } => {
            let c = expr_to_c(cond, access, dtype);
            let t = expr_to_c(then, access, dtype);
            let e = expr_to_c(otherwise, access, dtype);
            format!("({c} ? {t} : {e})")
        }
        Expr::Call { func, args } => {
            let rendered: Vec<String> = args.iter().map(|a| expr_to_c(a, access, dtype)).collect();
            format!("{}({})", mathfn_c(*func, dtype), rendered.join(", "))
        }
    }
}

/// Structural summary of a stack entry tracked by [`kernel_to_c`] to
/// recognize clamp patterns at [`Op::Select`] sites.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Shape {
    /// A finite floating-point literal.
    Literal(f64),
    /// An ordering comparison with its operands' rendered C expressions
    /// (and, when literal, their values).
    Compare {
        /// The comparison operator.
        op: BinOp,
        /// Rendered C expression of the left operand.
        lhs: String,
        /// Rendered C expression of the right operand.
        rhs: String,
        /// The left operand's value when it is a finite literal.
        lhs_literal: Option<f64>,
        /// The right operand's value when it is a finite literal.
        rhs_literal: Option<f64>,
    },
    /// Anything else.
    Other,
}

/// Try to fuse `cond ? then : otherwise` into `fmin` / `fmax`.
///
/// Only the bit-faithful orientations fuse: the *else* arm must be a
/// finite **non-zero** literal `c` and the *then* arm the other compared
/// operand `x` (`x < c ? x : c`, `x > c ? x : c`, `c < x ? x : c`,
/// `c > x ? x : c`). A NaN `x` fails the comparison and selects `c` —
/// exactly what IEEE `fmin`/`fmax` return against a NaN operand — and
/// with `c` non-zero a numeric tie (`x == c`) implies identical bits, so
/// the fused form agrees with the ternary on *every* input. Zero
/// literals are excluded: `x = ∓0.0` ties against `c = ±0.0` with
/// different bits, and `fmin`/`fmax` may return either zero where the
/// ternary's pick is fixed by the comparison. The mirrored orientation
/// with the literal in the then-arm (`x > c ? c : x`) propagates a NaN
/// where `fmin` would return `c`, so it deliberately stays a select.
pub(crate) fn fuse_clamp(
    cond: &Shape,
    then: &str,
    otherwise: &Shape,
    otherwise_str: &str,
    dtype: DataType,
    style: SelectStyle,
) -> Option<String> {
    let Shape::Compare {
        op,
        lhs,
        rhs,
        lhs_literal,
        rhs_literal,
    } = cond
    else {
        return None;
    };
    let Shape::Literal(c) = otherwise else {
        return None;
    };
    if !c.is_finite() || *c == 0.0 {
        return None;
    }
    // `x` is whichever compared operand the then-arm repeats; the else
    // arm must be the other (literal) operand.
    let (x, pick_smaller) = if then == lhs && otherwise_str == rhs && rhs_literal.is_some() {
        // x OP c ? x : c
        match op {
            BinOp::Lt | BinOp::Le => (lhs, true),
            BinOp::Gt | BinOp::Ge => (lhs, false),
            _ => return None,
        }
    } else if then == rhs && otherwise_str == lhs && lhs_literal.is_some() {
        // c OP x ? x : c
        match op {
            BinOp::Lt | BinOp::Le => (rhs, false),
            BinOp::Gt | BinOp::Ge => (rhs, true),
            _ => return None,
        }
    } else {
        return None;
    };
    // OpenCL C has no `fminf`/`fmaxf` — only the overloaded `fmin`/`fmax`
    // builtins — so the OpenCL style always uses the unsuffixed spelling.
    let func = match (pick_smaller, style) {
        (true, SelectStyle::OpenClSelect) => "fmin".to_string(),
        (false, SelectStyle::OpenClSelect) => "fmax".to_string(),
        (true, SelectStyle::Ternary) => mathfn_c(MathFn::Min, dtype),
        (false, SelectStyle::Ternary) => mathfn_c(MathFn::Max, dtype),
    };
    Some(format!("{func}({x}, {otherwise_str})"))
}

/// Emit C statements from a compiled (optimized) kernel's bytecode.
///
/// The instruction stream is symbolically executed with a stack of C
/// expression strings: slot reads render through `access`, CSE-introduced
/// registers become `const` temporaries (`t0`, `t1`, ...), and
/// [`Op::Select`] renders per `style` — a C ternary or the OpenCL `select`
/// builtin — except for **clamp patterns**, which fuse into
/// `fmin`/`fmax` calls when (and only when) the fused form is bit-faithful
/// to the ternary on every input, NaNs and signed zeros included (see the
/// `fuse_clamp` helper). Returns `None` when the kernel
/// still carries control flow (jump diamonds that resisted if-conversion
/// need the lazy AST walk, [`program_to_c`]).
pub fn kernel_to_c(
    kernel: &CompiledKernel,
    access: &impl Fn(&str, &[i64]) -> String,
    dtype: DataType,
    style: SelectStyle,
) -> Option<Vec<String>> {
    let mut lines = Vec::new();
    let mut stack: Vec<(String, Shape)> = Vec::new();
    let mut locals: Vec<Option<String>> = vec![None; kernel.local_count()];
    for op in kernel.ops() {
        match op {
            Op::Const(v) => stack.push(match v {
                Value::I32(x) => (format!("{x}"), Shape::Other),
                Value::I64(x) => (format!("{x}"), Shape::Other),
                Value::Bool(b) => (if *b { "1" } else { "0" }.to_string(), Shape::Other),
                Value::F32(x) => (float_literal(*x as f64, dtype), Shape::Literal(*x as f64)),
                Value::F64(x) => (float_literal(*x, dtype), Shape::Literal(*x)),
            }),
            Op::Slot(ix) => {
                let slot = &kernel.slots()[*ix as usize];
                // Scalar symbols are bare parameters, not buffer taps —
                // exactly like the AST walk's `Expr::Var` arm.
                let rendered = if slot.is_scalar() {
                    slot.field.clone()
                } else {
                    access(&slot.field, &slot.offsets)
                };
                stack.push((rendered, Shape::Other));
            }
            Op::Local(ix) => stack.push((locals[*ix as usize].clone()?, Shape::Other)),
            Op::Store(ix) => {
                let (value, _) = stack.pop()?;
                let name = format!("t{ix}");
                lines.push(format!("const {} {name} = {value};", c_type(dtype)));
                locals[*ix as usize] = Some(name);
            }
            Op::Pop => {
                let (value, _) = stack.pop()?;
                lines.push(format!("(void)({value});"));
            }
            Op::Unary(op) => {
                let (inner, _) = stack.pop()?;
                stack.push((
                    match op {
                        UnOp::Neg => format!("(-{inner})"),
                        UnOp::Not => format!("(!{inner})"),
                    },
                    Shape::Other,
                ));
            }
            Op::Binary(op) => {
                let (r, r_shape) = stack.pop()?;
                let (l, l_shape) = stack.pop()?;
                let rendered = format!("({l} {} {r})", op.symbol());
                let shape = match op {
                    BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge => Shape::Compare {
                        op: *op,
                        lhs_literal: match l_shape {
                            Shape::Literal(v) => Some(v),
                            _ => None,
                        },
                        rhs_literal: match r_shape {
                            Shape::Literal(v) => Some(v),
                            _ => None,
                        },
                        lhs: l,
                        rhs: r,
                    },
                    _ => Shape::Other,
                };
                stack.push((rendered, shape));
            }
            Op::Call1(func) => {
                let (a, _) = stack.pop()?;
                stack.push((format!("{}({a})", mathfn_c(*func, dtype)), Shape::Other));
            }
            Op::Call2(func) => {
                let (b, _) = stack.pop()?;
                let (a, _) = stack.pop()?;
                stack.push((
                    format!("{}({a}, {b})", mathfn_c(*func, dtype)),
                    Shape::Other,
                ));
            }
            Op::ToBool => {
                let (a, _) = stack.pop()?;
                stack.push((format!("({a} != 0)"), Shape::Other));
            }
            Op::Select => {
                let (otherwise, otherwise_shape) = stack.pop()?;
                let (then, _) = stack.pop()?;
                let (cond, cond_shape) = stack.pop()?;
                if let Some(fused) = fuse_clamp(
                    &cond_shape,
                    &then,
                    &otherwise_shape,
                    &otherwise,
                    dtype,
                    style,
                ) {
                    stack.push((fused, Shape::Other));
                    continue;
                }
                let rendered = match style {
                    SelectStyle::Ternary => format!("({cond} ? {then} : {otherwise})"),
                    SelectStyle::OpenClSelect => {
                        // OpenCL `select(a, b, c)` picks `b` where `c` is
                        // true; the condition must be an integer type of
                        // the operands' width. Language truthiness is
                        // `!= 0.0`, and a raw float condition (`c[i] ? …`)
                        // must not be truncated by the integer cast —
                        // 0.5 is true — so the comparison happens first.
                        let cond_type = match dtype {
                            DataType::Float64 => "long",
                            _ => "int",
                        };
                        let zero = float_literal(0.0, dtype);
                        format!("select({otherwise}, {then}, ({cond_type})({cond} != {zero}))")
                    }
                };
                stack.push((rendered, Shape::Other));
            }
            // Control flow cannot be expressed as a C expression DAG; the
            // caller falls back to the AST walk with native ternaries.
            Op::Jump(_) | Op::JumpIfFalse(_) | Op::AndShortCircuit(_) | Op::OrShortCircuit(_) => {
                return None;
            }
        }
    }
    let (result, _) = stack.pop()?;
    if !stack.is_empty() {
        return None;
    }
    lines.push(format!("result = {result};"));
    Some(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilflow_expr::parse_program;

    fn simple_access(field: &str, offsets: &[i64]) -> String {
        let parts: Vec<String> = offsets.iter().map(|o| format!("{o}")).collect();
        format!("buf_{field}[{}]", parts.join("]["))
    }

    #[test]
    fn translates_arithmetic_and_calls() {
        let program = parse_program("0.5 * (a[i-1] + a[i+1]) - sqrt(b[i])").unwrap();
        let c = program_to_c(&program, &simple_access, DataType::Float32);
        assert_eq!(c.len(), 1);
        assert!(c[0].contains("0.5f"));
        assert!(c[0].contains("buf_a[-1]"));
        assert!(c[0].contains("sqrtf(buf_b[0])"));
        assert!(c[0].starts_with("result ="));
    }

    #[test]
    fn translates_locals_ternaries_and_minmax() {
        let program =
            parse_program("d = a[i] - b[i]; min(max(d, 0.0), 1.0) > 0.5 ? d : -d").unwrap();
        let c = program_to_c(&program, &simple_access, DataType::Float32);
        assert_eq!(c.len(), 2);
        assert!(c[0].starts_with("const float d ="));
        assert!(c[1].contains("fminf(fmaxf(d, 0.0f), 1.0f)"));
        assert!(c[1].contains("? d : (-d)"));
    }

    #[test]
    fn float_literals_round_trip_exactly() {
        // 0.1 has no finite binary expansion: the emitted literal must be
        // the shortest decimal that parses back to the same f64, not a
        // fixed-precision rendering.
        let program = parse_program("a[i] * 0.1 + 1.0 + 0.30000000000000004").unwrap();
        let c = program_to_c(&program, &simple_access, DataType::Float32);
        assert!(c[0].contains("0.1f"));
        assert!(c[0].contains("1.0f"));
        assert!(c[0].contains("0.30000000000000004f"));
    }

    #[test]
    fn double_kernels_drop_the_float_suffix() {
        let program = parse_program("sqrt(a[i]) * 0.5 + min(b[i], 2.0)").unwrap();
        let c = program_to_c(&program, &simple_access, DataType::Float64);
        assert!(c[0].contains("0.5"));
        assert!(!c[0].contains("0.5f"));
        assert!(c[0].contains("sqrt(buf_a[0])"));
        assert!(!c[0].contains("sqrtf"));
        assert!(c[0].contains("fmin(buf_b[0], 2.0)"));
    }

    #[test]
    fn kernel_emission_renders_selects_as_ternaries() {
        let program = parse_program("a[i] > 0.0 ? a[i] : -a[i]").unwrap();
        let kernel = CompiledKernel::compile(&program).unwrap();
        let lines = kernel_to_c(
            &kernel,
            &simple_access,
            DataType::Float32,
            SelectStyle::Ternary,
        )
        .expect("if-converted kernels are branch-free");
        let body = lines.join("\n");
        assert!(body.contains('?'), "no ternary in:\n{body}");
        assert!(body.contains("buf_a[0]"));
        assert!(lines.last().unwrap().starts_with("result ="));
    }

    #[test]
    fn kernel_emission_renders_opencl_selects() {
        let program = parse_program("a[i] > 0.0 ? a[i] : -a[i]").unwrap();
        let kernel = CompiledKernel::compile(&program).unwrap();
        let lines = kernel_to_c(
            &kernel,
            &simple_access,
            DataType::Float32,
            SelectStyle::OpenClSelect,
        )
        .unwrap();
        let body = lines.join("\n");
        assert!(body.contains("select("), "no select in:\n{body}");
        assert!(body.contains("(int)("), "condition not cast in:\n{body}");
        let double = kernel_to_c(
            &kernel,
            &simple_access,
            DataType::Float64,
            SelectStyle::OpenClSelect,
        )
        .unwrap()
        .join("\n");
        assert!(double.contains("(long)("));
    }

    #[test]
    fn kernel_emission_renders_scalar_symbols_as_bare_names() {
        // Scalar symbols (empty-offset slots) must emit as plain parameter
        // names, not as zero-dimensional buffer taps.
        let program = parse_program("a[i] * dt + a[i-1]").unwrap();
        let kernel = CompiledKernel::compile(&program).unwrap();
        let lines = kernel_to_c(
            &kernel,
            &simple_access,
            DataType::Float32,
            SelectStyle::Ternary,
        )
        .unwrap();
        let body = lines.join("\n");
        assert!(body.contains("* dt)"), "scalar not bare in:\n{body}");
        assert!(!body.contains("buf_dt"), "scalar rendered as tap:\n{body}");
    }

    #[test]
    fn opencl_select_preserves_float_truthiness() {
        // A raw float condition is true when non-zero (0.5 is true); the
        // integer cast must apply to the comparison, not the float.
        let program = parse_program("a[i] ? b[i] : -b[i]").unwrap();
        let kernel = CompiledKernel::compile(&program).unwrap();
        let body = kernel_to_c(
            &kernel,
            &simple_access,
            DataType::Float32,
            SelectStyle::OpenClSelect,
        )
        .unwrap()
        .join("\n");
        assert!(
            body.contains("(int)(buf_a[0] != 0.0f)"),
            "condition cast truncates truthiness in:\n{body}"
        );
    }

    #[test]
    fn kernel_emission_names_cse_temporaries() {
        // The shared subexpression appears once, bound to a temporary.
        let program = parse_program("(a[i-1] + a[i+1]) * (a[i-1] + a[i+1])").unwrap();
        let kernel = CompiledKernel::compile(&program).unwrap();
        let lines = kernel_to_c(
            &kernel,
            &simple_access,
            DataType::Float32,
            SelectStyle::Ternary,
        )
        .unwrap();
        let body = lines.join("\n");
        assert_eq!(body.matches('+').count(), 1, "add not shared in:\n{body}");
        assert!(body.contains("const float t0 ="));
        assert!(body.contains("(t0 * t0)"));
    }

    #[test]
    fn clamp_selects_fuse_into_min_max() {
        // NaN-faithful orientations: the else-arm is the literal, so a
        // NaN input selects the literal in both the ternary and the
        // IEEE fmin/fmax rendering.
        for (code, expected) in [
            ("a[i] < 4.0 ? a[i] : 4.0", "fminf(buf_a[0], 4.0f)"),
            ("a[i] <= 4.0 ? a[i] : 4.0", "fminf(buf_a[0], 4.0f)"),
            ("a[i] > 0.125 ? a[i] : 0.125", "fmaxf(buf_a[0], 0.125f)"),
            ("0.5 > a[i] ? a[i] : 0.5", "fminf(buf_a[0], 0.5f)"),
            ("0.5 < a[i] ? a[i] : 0.5", "fmaxf(buf_a[0], 0.5f)"),
        ] {
            let program = parse_program(code).unwrap();
            let kernel = CompiledKernel::compile(&program).unwrap();
            let body = kernel_to_c(
                &kernel,
                &simple_access,
                DataType::Float32,
                SelectStyle::Ternary,
            )
            .unwrap()
            .join("\n");
            assert!(
                body.contains(expected),
                "`{code}` should fuse to `{expected}`:\n{body}"
            );
            assert!(!body.contains('?'), "select not fused in:\n{body}");
            // The OpenCL flavor has no suffixed fminf/fmaxf builtins: the
            // fused spelling must be the overloaded fmin/fmax.
            let opencl = kernel_to_c(
                &kernel,
                &simple_access,
                DataType::Float32,
                SelectStyle::OpenClSelect,
            )
            .unwrap()
            .join("\n");
            let unsuffixed = expected
                .replace("fminf(", "fmin(")
                .replace("fmaxf(", "fmax(");
            assert!(
                opencl.contains(&unsuffixed)
                    && !opencl.contains("fminf")
                    && !opencl.contains("fmaxf"),
                "`{code}` should fuse to `{unsuffixed}` under OpenCL:\n{opencl}"
            );
            assert!(
                !opencl.contains("select("),
                "select not fused in:\n{opencl}"
            );
        }
        // Double kernels use the double-flavored functions.
        let program = parse_program("a[i] < 4.0 ? a[i] : 4.0").unwrap();
        let kernel = CompiledKernel::compile(&program).unwrap();
        let body = kernel_to_c(
            &kernel,
            &simple_access,
            DataType::Float64,
            SelectStyle::Ternary,
        )
        .unwrap()
        .join("\n");
        assert!(body.contains("fmin(buf_a[0], 4.0)"), "{body}");
    }

    #[test]
    fn clamp_chains_fuse_through_cse_temporaries() {
        // A two-sided clamp built from chained ternaries: the shared
        // subexpression lands in a temporary and both selects fuse.
        let code = "x = a[i] > 0.25 ? a[i] : 0.25; x < 1.0 ? x : 1.0";
        let program = parse_program(code).unwrap();
        let kernel = CompiledKernel::compile(&program).unwrap();
        let body = kernel_to_c(
            &kernel,
            &simple_access,
            DataType::Float32,
            SelectStyle::Ternary,
        )
        .unwrap()
        .join("\n");
        assert!(
            body.contains("fmaxf(buf_a[0], 0.25f)"),
            "inner clamp not fused in:\n{body}"
        );
        assert!(body.contains("fminf("), "outer clamp not fused in:\n{body}");
        assert!(!body.contains('?'), "clamp chain kept a ternary:\n{body}");
    }

    #[test]
    fn nan_divergent_clamp_orientations_stay_selects() {
        // `x > c ? c : x` propagates a NaN `x` where fminf would return
        // `c`: the then-arm literal orientation must not fuse. (This is
        // the horizontal-diffusion limiter shape — correctness over
        // aesthetics.)
        for code in [
            "a[i] > 4.0 ? 4.0 : a[i]",
            "a[i] < 4.0 ? 4.0 : a[i]",
            // Non-literal bound: NaN-safety cannot be established.
            "a[i] < b[i] ? a[i] : b[i]",
            // Zero bound (relu): x = -0.0 ties against +0.0 with
            // different bits, and fmax may return either zero where the
            // ternary's pick is fixed — signed-zero faithfulness forbids
            // the fusion.
            "a[i] > 0.0 ? a[i] : 0.0",
            "a[i] < 0.0 ? a[i] : 0.0",
        ] {
            let program = parse_program(code).unwrap();
            let kernel = CompiledKernel::compile(&program).unwrap();
            let body = kernel_to_c(
                &kernel,
                &simple_access,
                DataType::Float32,
                SelectStyle::Ternary,
            )
            .unwrap()
            .join("\n");
            assert!(body.contains('?'), "`{code}` must stay a select:\n{body}");
            assert!(
                !body.contains("fminf") && !body.contains("fmaxf"),
                "`{code}` fused unsafely:\n{body}"
            );
        }
    }

    #[test]
    fn kernel_emission_falls_back_on_jumpy_kernels() {
        // A division in an arm keeps the jump diamond; the bytecode
        // emitter declines and the AST walk takes over.
        let program = parse_program("a[i] > 0.0 ? a[i] / b[i] : a[i]").unwrap();
        let kernel = CompiledKernel::compile(&program).unwrap();
        assert!(kernel_to_c(
            &kernel,
            &simple_access,
            DataType::Float32,
            SelectStyle::Ternary
        )
        .is_none());
        let fallback = program_to_c(&program, &simple_access, DataType::Float32);
        assert!(fallback[0].contains('?'));
    }
}
