//! Translation of stencil expressions to C (OpenCL C) source text.

use stencilflow_expr::ast::{BinOp, Expr, MathFn, Program, UnOp};

/// Translate a full code segment to a sequence of C statements. Field
/// accesses are rendered through `access`, which receives the field name and
/// its offsets and returns the C expression for that tap (e.g. a shift-
/// register read with boundary predication).
pub fn program_to_c(program: &Program, access: &impl Fn(&str, &[i64]) -> String) -> Vec<String> {
    let mut lines = Vec::new();
    for (idx, stmt) in program.statements.iter().enumerate() {
        let rhs = expr_to_c(&stmt.value, access);
        let line = match (&stmt.name, idx + 1 == program.statements.len()) {
            (Some(name), _) => format!("const float {name} = {rhs};"),
            (None, true) => format!("result = {rhs};"),
            (None, false) => format!("(void)({rhs});"),
        };
        lines.push(line);
    }
    lines
}

/// Translate one expression to C.
pub fn expr_to_c(expr: &Expr, access: &impl Fn(&str, &[i64]) -> String) -> String {
    match expr {
        Expr::IntLit(v) => format!("{v}"),
        Expr::FloatLit(v) => {
            if v.fract() == 0.0 {
                format!("{v:.1}f")
            } else {
                format!("{v}f")
            }
        }
        Expr::Var(name) => name.clone(),
        Expr::FieldAccess { field, indices } => {
            let offsets: Vec<i64> = indices.iter().map(|ix| ix.offset).collect();
            access(field, &offsets)
        }
        Expr::Unary { op, operand } => {
            let inner = expr_to_c(operand, access);
            match op {
                UnOp::Neg => format!("(-{inner})"),
                UnOp::Not => format!("(!{inner})"),
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = expr_to_c(lhs, access);
            let r = expr_to_c(rhs, access);
            format!("({l} {} {r})", binop_c(*op))
        }
        Expr::Ternary {
            cond,
            then,
            otherwise,
        } => {
            let c = expr_to_c(cond, access);
            let t = expr_to_c(then, access);
            let e = expr_to_c(otherwise, access);
            format!("({c} ? {t} : {e})")
        }
        Expr::Call { func, args } => {
            let rendered: Vec<String> = args.iter().map(|a| expr_to_c(a, access)).collect();
            format!("{}({})", mathfn_c(*func), rendered.join(", "))
        }
    }
}

fn binop_c(op: BinOp) -> &'static str {
    op.symbol()
}

fn mathfn_c(func: MathFn) -> &'static str {
    match func {
        MathFn::Sqrt => "sqrtf",
        MathFn::Abs => "fabsf",
        MathFn::Min => "fminf",
        MathFn::Max => "fmaxf",
        MathFn::Exp => "expf",
        MathFn::Log => "logf",
        MathFn::Pow => "powf",
        MathFn::Sin => "sinf",
        MathFn::Cos => "cosf",
        MathFn::Tan => "tanf",
        MathFn::Floor => "floorf",
        MathFn::Ceil => "ceilf",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilflow_expr::parse_program;

    fn simple_access(field: &str, offsets: &[i64]) -> String {
        let parts: Vec<String> = offsets.iter().map(|o| format!("{o}")).collect();
        format!("buf_{field}[{}]", parts.join("]["))
    }

    #[test]
    fn translates_arithmetic_and_calls() {
        let program = parse_program("0.5 * (a[i-1] + a[i+1]) - sqrt(b[i])").unwrap();
        let c = program_to_c(&program, &simple_access);
        assert_eq!(c.len(), 1);
        assert!(c[0].contains("0.5f"));
        assert!(c[0].contains("buf_a[-1]"));
        assert!(c[0].contains("sqrtf(buf_b[0])"));
        assert!(c[0].starts_with("result ="));
    }

    #[test]
    fn translates_locals_ternaries_and_minmax() {
        let program =
            parse_program("d = a[i] - b[i]; min(max(d, 0.0), 1.0) > 0.5 ? d : -d").unwrap();
        let c = program_to_c(&program, &simple_access);
        assert_eq!(c.len(), 2);
        assert!(c[0].starts_with("const float d ="));
        assert!(c[1].contains("fminf(fmaxf(d, 0.0f), 1.0f)"));
        assert!(c[1].contains("? d : (-d)"));
    }
}
