//! Human-readable mapping reports.

use std::fmt::Write as _;
use stencilflow_core::HardwareMapping;
use stencilflow_program::StencilProgram;

/// Produce a textual summary of a mapped design: units, channels, buffer
/// sizes, and the expected-performance model. Used by the benchmark binaries
/// and handy when inspecting generated architectures.
pub fn mapping_report(program: &StencilProgram, mapping: &HardwareMapping) -> String {
    let mut out = String::new();
    let perf = &mapping.performance;
    let _ = writeln!(out, "program `{}`", program.name());
    let _ = writeln!(
        out,
        "  domain {:?}, vectorization W={}",
        program.space().shape,
        mapping.vector_width
    );
    let _ = writeln!(
        out,
        "  {} stencil units, {} channels, {} memory interfaces",
        mapping.unit_count(),
        mapping.channels.len(),
        mapping.memory_units.len()
    );
    let _ = writeln!(
        out,
        "  {} Op/cycle, {} operand/cycle from DRAM, {} buffered elements on chip",
        mapping.ops_per_cycle(),
        mapping.memory_operands_per_cycle(),
        mapping.total_buffer_elements()
    );
    let _ = writeln!(
        out,
        "  expected cycles: {} (L = {}, N = {}), {:.1} us at {:.0} MHz, {:.1} GOp/s",
        perf.expected_cycles,
        perf.pipeline_latency,
        perf.iterations,
        perf.runtime_microseconds(),
        perf.frequency_hz / 1e6,
        perf.gops()
    );
    let _ = writeln!(out, "  stencil units:");
    for unit in &mapping.units {
        let _ = writeln!(
            out,
            "    {:<20} {:>4} Op  init {:>8} iters  latency {:>4} cyc  buffers {:>10} elems  fan-in {} fan-out {}",
            unit.name,
            unit.ops.flops(),
            unit.init_iterations,
            unit.compute_latency,
            unit.internal_buffer_elements,
            unit.fan_in,
            unit.fan_out
        );
    }
    let _ = writeln!(out, "  channels:");
    for channel in &mapping.channels {
        let _ = writeln!(
            out,
            "    {:<20} -> {:<20} depth {:>8} words",
            channel.from.name(),
            channel.to.name(),
            channel.depth_words
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilflow_core::AnalysisConfig;
    use stencilflow_workloads::listing1;

    #[test]
    fn report_lists_units_and_channels() {
        let program = listing1();
        let mapping = HardwareMapping::build(&program, &AnalysisConfig::paper_defaults()).unwrap();
        let report = mapping_report(&program, &mapping);
        assert!(report.contains("5 stencil units"));
        assert!(report.contains("b3"));
        assert!(report.contains("expected cycles"));
        assert!(report.lines().count() > 15);
    }
}
