//! Host-program pseudo-code generation.

use std::fmt::Write as _;
use stencilflow_core::{HardwareMapping, MemoryAccessKind};
use stencilflow_program::StencilProgram;

/// Generate the host program: buffer allocation, input copies, kernel
/// launches, and result collection, mirroring what the DaCe-generated host
/// code does in the paper's flow.
pub fn generate_host_code(program: &StencilProgram, mapping: &HardwareMapping) -> String {
    let mut out = String::new();
    let cells = program.space().num_cells();
    let _ = writeln!(out, "// Host program for `{}`.", program.name());
    let _ = writeln!(out, "cl_context context = create_context();");
    let _ = writeln!(
        out,
        "cl_program binary = load_bitstream(\"{}.aocx\");\n",
        program.name()
    );

    for (name, decl) in program.inputs() {
        let elements: usize = decl
            .dims
            .iter()
            .map(|d| {
                program
                    .space()
                    .dim_index(d)
                    .map(|ix| program.space().shape[ix])
                    .unwrap_or(1)
            })
            .product::<usize>()
            .max(1);
        let _ = writeln!(
            out,
            "cl_mem buf_{name} = clCreateBuffer(context, CL_MEM_READ_ONLY, {} * sizeof(float), NULL, NULL);",
            elements
        );
        let _ = writeln!(
            out,
            "clEnqueueWriteBuffer(queue, buf_{name}, CL_TRUE, 0, ..., host_{name}, 0, NULL, NULL);"
        );
    }
    for output in program.outputs() {
        let _ = writeln!(
            out,
            "cl_mem buf_{output} = clCreateBuffer(context, CL_MEM_WRITE_ONLY, {cells} * sizeof(float), NULL, NULL);"
        );
    }
    let _ = writeln!(out);
    for unit in &mapping.memory_units {
        let verb = match unit.kind {
            MemoryAccessKind::Read => "read",
            MemoryAccessKind::Write => "write",
        };
        let _ = writeln!(
            out,
            "launch_kernel(queue_{verb}_{field}, \"{verb}_{field}\", buf_{field}, {cells});",
            field = unit.field
        );
    }
    let _ = writeln!(
        out,
        "// {} autorun stencil kernels start on configuration.",
        mapping.unit_count()
    );
    let _ = writeln!(out, "clFinish(all_queues);");
    for output in program.outputs() {
        let _ = writeln!(out, "clEnqueueReadBuffer(queue, buf_{output}, CL_TRUE, 0, ..., host_{output}, 0, NULL, NULL);");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilflow_core::AnalysisConfig;
    use stencilflow_workloads::listing1;

    #[test]
    fn host_code_allocates_all_buffers_and_launches_memory_kernels() {
        let program = listing1();
        let mapping = HardwareMapping::build(&program, &AnalysisConfig::paper_defaults()).unwrap();
        let host = generate_host_code(&program, &mapping);
        for input in ["a0", "a1", "a2"] {
            assert!(host.contains(&format!("buf_{input}")));
        }
        assert!(host.contains("write_b4"));
        assert!(host.contains("read_a2"));
        assert!(host.contains("autorun"));
    }
}
