//! Code generation from mapped StencilFlow designs.
//!
//! The paper's backend emits annotated OpenCL for the Intel FPGA SDK (an HLS
//! compiler), plus host code and, for multi-device designs, SMI networking
//! kernels (§VI). No HLS toolchain is available in this reproduction, so the
//! generated code is never synthesized; it is still produced in full so that
//! the structure of the emitted architecture — channel declarations with
//! buffer depths, shift-register internal buffers with tap points, boundary
//! predication, autorun compute kernels, reader/writer kernels, and remote
//! streams — can be inspected, diffed, and tested against the analysis.
//!
//! * [`opencl`] — Intel-FPGA-OpenCL-style kernel emission for a single
//!   device, and SMI-style remote channels for multi-device plans.
//! * [`host`] — host-program pseudo-code (buffer allocation, kernel launch
//!   order, result collection).
//! * [`expr_c`] — translation of stencil expressions to C, preferring the
//!   optimized-bytecode emitter (if-converted selects, CSE temporaries)
//!   with the raw AST walk as the fallback for lazy control flow.
//! * [`report`] — a human-readable mapping report used by the benchmark
//!   binaries.
//! * [`jit_unit`] — whole-program C emission for the Tier-4 native
//!   backend: per-stage sweep functions in `double` with explicit
//!   `f32`-round wraps, bit-identical to the typed bytecode tiers.

#![forbid(unsafe_code)]

pub mod expr_c;
pub mod host;
pub mod jit_unit;
pub mod opencl;
pub mod report;

pub use expr_c::{expr_to_c, kernel_to_c, program_to_c, SelectStyle};
pub use host::generate_host_code;
pub use jit_unit::{jit_eval_unit, jit_translation_unit, JitSlotKind, JitStageSpec};
pub use opencl::{generate_kernels, generate_multi_device_kernels};
pub use report::mapping_report;

#[cfg(test)]
mod tests {
    use super::*;
    use stencilflow_core::{AnalysisConfig, HardwareMapping, MultiDevicePlan, PartitionConfig};
    use stencilflow_workloads::listing1;

    #[test]
    fn single_device_kernels_contain_expected_structure() {
        let program = listing1();
        let config = AnalysisConfig::paper_defaults();
        let mapping = HardwareMapping::build(&program, &config).unwrap();
        let code = generate_kernels(&program, &mapping);
        // Channels with explicit depths.
        assert!(code.contains("channel float"));
        assert!(code.contains("__attribute__((depth("));
        // One autorun kernel per stencil plus readers/writers.
        for stencil in ["b0", "b1", "b2", "b3", "b4"] {
            assert!(
                code.contains(&format!("void stencil_{stencil}")),
                "{stencil}"
            );
        }
        assert!(code.contains("__attribute__((autorun))"));
        assert!(code.contains("void read_a0"));
        assert!(code.contains("void write_b4"));
        // Shift-register buffers and boundary predication.
        assert!(code.contains("shift register"));
        assert!(code.contains("boundary"));
    }

    #[test]
    fn multi_device_kernels_use_remote_streams() {
        let program = listing1();
        let config = AnalysisConfig::paper_defaults();
        let plan = MultiDevicePlan::partition(&program, &PartitionConfig::devices(2)).unwrap();
        let mapping = HardwareMapping::build(&program, &config).unwrap();
        let per_device = generate_multi_device_kernels(&program, &mapping, &plan);
        assert_eq!(per_device.len(), 2);
        let all = per_device.join("\n");
        assert!(all.contains("SMI_Channel"));
        assert!(all.contains("remote stream"));
    }

    #[test]
    fn host_code_and_report() {
        let program = listing1();
        let config = AnalysisConfig::paper_defaults();
        let mapping = HardwareMapping::build(&program, &config).unwrap();
        let host = generate_host_code(&program, &mapping);
        assert!(host.contains("clCreateBuffer"));
        assert!(host.contains("a0"));
        assert!(host.contains("b4"));
        let report = mapping_report(&program, &mapping);
        assert!(report.contains("stencil units"));
        assert!(report.contains("channels"));
    }
}
