//! Execution-level round-trips of the emitted JIT eval units: the C the
//! emitter produces is compiled with the real system `cc` and evaluated
//! against the typed bytecode interpreter **bitwise** on adversarial
//! values — NaN, signed zeros, subnormals, range extremes, and inputs
//! chosen to expose double-rounding in the f32 `(double)(float)` wraps.
//! Text pins (in the unit tests) say what the emitter wrote; these tests
//! say what the compiled code *does*.
//!
//! The f32 cases deliberately use only operations for which
//! round-to-double-then-to-float equals direct float rounding (`+`, `-`,
//! `*`, `/`, `sqrt`, `fmin`, `fmax`, `fabs`, `floor`, `ceil`): that
//! exactness is what makes the emitted `(double)(float)(...)` wrap a
//! faithful image of the typed tier's `finish(v, round)`, and it does NOT
//! hold for the transcendental calls, which the emitter forwards to the
//! same libm the interpreter uses.

use stencilflow_codegen::jit_eval_unit;
use stencilflow_expr::{parse_program, CompiledKernel, DataType, TypedKernel, TypedScratch};
use stencilflow_jit::{JitConfig, JitEngine};

fn typed(source: &str, slots: &[DataType]) -> TypedKernel {
    let program = parse_program(source).expect("test kernels parse");
    let kernel = CompiledKernel::compile(&program).expect("test kernels compile");
    let slot_types: Vec<DataType> = kernel
        .slots()
        .iter()
        .zip(slots.iter().cycle())
        .map(|(_, t)| *t)
        .collect();
    kernel
        .specialize(&slot_types)
        .unwrap_or_else(|| panic!("`{source}` should specialize"))
}

fn engine() -> JitEngine {
    let mut config = JitConfig::from_env();
    config.cache_dir =
        std::env::temp_dir().join(format!("sf-jit-roundtrip-{}", std::process::id()));
    JitEngine::new(config).expect("system cc must be available for round-trip tests")
}

/// Evaluate `source` both ways over every row of `cases` (each row is one
/// slot assignment) and require bitwise agreement.
fn assert_roundtrip(engine: &JitEngine, source: &str, slots: &[DataType], cases: &[&[f64]]) {
    let kernel = typed(source, slots);
    let unit = jit_eval_unit(&kernel, "sf_eval").expect("eligible kernels emit");
    let module = engine.load(&unit, &unit).expect("emitted unit compiles");
    let eval = engine
        .eval_fn(&module, "sf_eval", kernel.slot_count())
        .expect("eval symbol resolves");
    let mut scratch = TypedScratch::default();
    for full in cases {
        assert!(
            full.len() >= kernel.slot_count(),
            "bad case arity for `{source}`"
        );
        let case = &full[..kernel.slot_count()];
        let want = kernel.eval_slots(case, &mut scratch);
        let got = eval.call(case).expect("native eval runs");
        assert!(
            got.to_bits() == want.to_bits(),
            "`{source}` on {case:?}: native {got:?} ({:#x}) != bytecode {want:?} ({:#x})",
            got.to_bits(),
            want.to_bits()
        );
    }
}

/// Adversarial f64 operand pairs: NaN, signed zeros, subnormals, the
/// double-rounding tripwire, and range extremes.
///
/// Only the default quiet NaN appears: when *both* operands of a
/// commutative operation are NaNs with different payload or sign bits,
/// IEEE 754 leaves the surviving payload unspecified and Rust and C
/// compilers may legally pick different operands, so that case sits
/// outside the bit-identity contract. Every NaN the pipeline itself
/// manufactures (0/0, inf−inf, …) is the default quiet NaN, for which the
/// question is moot.
///
/// The NaN *sign bit* through negation is equally unspecified: compilers
/// fold `-(x) + c` to `c - x` (exact for every non-NaN `x`), which keeps
/// the NaN's sign where the bytecode's explicit `Neg` flips it — so
/// negation kernels are exercised on the NaN-free set below.
#[allow(clippy::excessive_precision)] // the over-long literal IS the test
fn f64_pairs() -> Vec<[f64; 2]> {
    let specials = [
        f64::NAN,
        0.0,
        -0.0,
        5e-324, // minimum subnormal
        -5e-324,
        2.2250738585072011e-308, // largest subnormal (double-rounding tripwire)
        f64::MIN_POSITIVE,
        1.0,
        -1.0,
        1.0000000000000002, // nextafter(1.0)
        0.1,
        -2.5,
        1e300,
        -1.7976931348623157e308,
        f64::INFINITY,
        f64::NEG_INFINITY,
    ];
    let mut pairs = Vec::new();
    for &a in &specials {
        for &b in &specials {
            pairs.push([a, b]);
        }
    }
    pairs
}

/// Adversarial *exact-f32* operand pairs, widened to f64 the way the
/// runtime widens f32 grids.
fn f32_pairs() -> Vec<[f64; 2]> {
    let specials: Vec<f64> = [
        f32::NAN,
        0.0f32,
        -0.0f32,
        1e-45f32, // minimum f32 subnormal
        -1e-45f32,
        1.1754942e-38f32, // largest f32 subnormal
        f32::MIN_POSITIVE,
        1.0f32,
        1.0000001f32, // nextafter(1.0f)
        0.1f32,
        -2.25f32,
        3.4028235e38f32, // f32::MAX
        -3.4028235e38f32,
        f32::INFINITY,
        f32::NEG_INFINITY,
    ]
    .iter()
    .map(|&v| v as f64)
    .collect();
    let mut pairs = Vec::new();
    for &a in &specials {
        for &b in &specials {
            pairs.push([a, b]);
        }
    }
    pairs
}

#[test]
fn f64_arithmetic_round_trips_on_special_values() {
    let engine = engine();
    let pairs = f64_pairs();
    let cases: Vec<&[f64]> = pairs.iter().map(|p| p.as_slice()).collect();
    for source in [
        "a[i] + b[i]",
        "a[i] - b[i]",
        "a[i] * b[i]",
        "a[i] / b[i]",
        "a[i] * b[i] + a[i] / b[i] - 2.5",
        "min(a[i], b[i])",
        "max(a[i], b[i])",
        "abs(a[i]) + floor(b[i]) - ceil(b[i])",
        "sqrt(abs(a[i])) * b[i]",
    ] {
        assert_roundtrip(&engine, source, &[DataType::Float64], &cases);
    }
}

#[test]
fn negation_round_trips_on_nan_free_specials() {
    // Signed zeros and infinities through `Neg`: -(-0.0) must come back
    // as +0.0 bitwise. NaN is excluded — see `f64_pairs` on why the NaN
    // sign bit through negation is compiler-unspecified.
    let engine = engine();
    let values = [
        0.0,
        -0.0,
        5e-324,
        -5e-324,
        1.0,
        -1.0,
        1e300,
        f64::INFINITY,
        f64::NEG_INFINITY,
    ];
    let mut pairs = Vec::new();
    for &a in &values {
        for &b in &values {
            // 0 × inf manufactures a NaN mid-kernel, putting the pair
            // back in the unspecified NaN-sign territory.
            if (a * b).is_nan() || (b + 0.5).is_nan() {
                continue;
            }
            pairs.push([a, b]);
        }
    }
    let cases: Vec<&[f64]> = pairs.iter().map(|p| p.as_slice()).collect();
    for source in ["-a[i]", "-(a[i] * b[i]) + 0.5", "-a[i] * (b[i] + 0.5)"] {
        assert_roundtrip(&engine, source, &[DataType::Float64], &cases);
    }
}

#[test]
fn f32_round_wraps_round_trip_on_special_values() {
    // Every store and intermediate carries the f32 round flag; the C side
    // must land on bit-identical doubles through (double)(float) wraps.
    let engine = engine();
    let pairs = f32_pairs();
    let cases: Vec<&[f64]> = pairs.iter().map(|p| p.as_slice()).collect();
    for source in [
        "a[i] + b[i]",
        "a[i] - b[i]",
        "a[i] * b[i]",
        "a[i] / b[i]",
        "a[i] * b[i] + a[i] / b[i]",
        "min(a[i], b[i])",
        "max(a[i], b[i])",
        "abs(a[i]) - b[i]",
        "sqrt(abs(a[i]))",
        "floor(a[i]) + ceil(b[i])",
    ] {
        assert_roundtrip(&engine, source, &[DataType::Float32], &cases);
    }
}

#[test]
fn exact_float_literals_survive_c_parsing() {
    // Literals are emitted with Rust's shortest-round-trip formatting; the
    // C compiler must parse them back to the identical doubles. Exercised
    // at execution: `a + lit - a` style kernels leak any literal drift.
    let engine = engine();
    let zero: &[f64] = &[0.0];
    let one: &[f64] = &[1.0];
    for source in [
        "a[i] + 0.1",
        "a[i] + 5e-324",
        "a[i] + 2.2250738585072011e-308",
        "a[i] + 1.0000000000000002",
        "a[i] + 3.141592653589793",
        "a[i] * 1e300",
        "a[i] - 1.7976931348623157e308",
    ] {
        assert_roundtrip(&engine, source, &[DataType::Float64], &[zero, one]);
    }
}

#[test]
fn clamp_fusion_is_nan_faithful_in_compiled_code() {
    // The emitter fuses literal-else clamp selects to fmin/fmax only in
    // the orientations where the IEEE fmin/fmax NaN rule ("return the
    // non-NaN operand") agrees with the bytecode select. Execute every
    // orientation on NaN and friends against the interpreter: any
    // unfaithful fusion shows up as a bitwise diff here.
    let engine = engine();
    let values: Vec<[f64; 1]> = [
        f64::NAN,
        -f64::NAN,
        0.0,
        -0.0,
        0.5,
        0.25,
        0.75,
        5e-324,
        f64::INFINITY,
        f64::NEG_INFINITY,
    ]
    .iter()
    .map(|&v| [v])
    .collect();
    let cases: Vec<&[f64]> = values.iter().map(|p| p.as_slice()).collect();
    for source in [
        // Fusible orientations (fmin/fmax spelling).
        "a[i] < 0.5 ? a[i] : 0.5",
        "a[i] > 0.5 ? a[i] : 0.5",
        "a[i] <= 0.5 ? a[i] : 0.5",
        "a[i] >= 0.5 ? a[i] : 0.5",
        // Literal-then orientations: NOT fusible (fmin/fmax would launder
        // the NaN into the literal); must stay C ternaries.
        "a[i] < 0.5 ? 0.5 : a[i]",
        "a[i] > 0.5 ? 0.5 : a[i]",
        // Reversed operand orders.
        "0.5 < a[i] ? a[i] : 0.5",
        "0.5 > a[i] ? a[i] : 0.5",
        // Equality selects never fuse.
        "a[i] == 0.5 ? a[i] : 0.5",
        "a[i] != 0.5 ? a[i] : 0.5",
        // Two-sided clamp.
        "min(max(a[i], 0.25), 0.75)",
        "a[i] < 0.25 ? 0.25 : (a[i] > 0.75 ? 0.75 : a[i])",
    ] {
        assert_roundtrip(&engine, source, &[DataType::Float64], &cases);
    }
}

#[test]
fn locals_comparisons_and_logic_round_trip() {
    let engine = engine();
    let pairs = f64_pairs();
    let cases: Vec<&[f64]> = pairs.iter().map(|p| p.as_slice()).collect();
    for source in [
        // CSE/user locals become const double temporaries.
        "u = a[i] * b[i]; u + u / b[i]",
        "u = a[i] + b[i]; v = u * u; v - u",
        // Comparison results feed arithmetic as exact 0.0/1.0.
        "(a[i] < b[i]) + (a[i] > b[i]) * 2.0",
        // Select on a NaN condition takes the else arm, like JumpIfFalse.
        "a[i] == a[i] ? 1.0 : 2.0",
        "a[i] < b[i] ? a[i] - b[i] : b[i] - a[i]",
        // Short-circuit logic if-converts to selects; NaN is falsy in
        // comparisons and truthy nowhere here.
        "a[i] > 0.0 && b[i] > 0.0 ? a[i] : b[i]",
        "a[i] > 0.0 || b[i] > 0.0 ? a[i] : b[i]",
        "!(a[i] < b[i]) ? a[i] : b[i]",
    ] {
        assert_roundtrip(&engine, source, &[DataType::Float64], &cases);
    }
}

#[test]
fn transcendental_calls_forward_to_libm_bitwise() {
    // exp/log/pow/sin/cos/tan are not double-rounding-exact, so they are
    // only tested in f64 kernels (no round wraps): both sides call the
    // same libm and must agree bitwise.
    let engine = engine();
    let pairs = f64_pairs();
    let cases: Vec<&[f64]> = pairs.iter().map(|p| p.as_slice()).collect();
    for source in [
        "exp(a[i]) + b[i]",
        "log(abs(a[i]) + 1.0)",
        "pow(abs(a[i]), b[i])",
        "sin(a[i]) * cos(b[i]) + tan(a[i])",
    ] {
        assert_roundtrip(&engine, source, &[DataType::Float64], &cases);
    }
}
