//! Native Tier-4 backend for StencilFlow: drive the system C compiler over
//! emitted translation units, cache the resulting shared objects on disk,
//! and load them through a quarantined `dlopen` boundary.
//!
//! The crate deliberately knows nothing about stencils: it accepts a
//! *fingerprint* (the caller's stable identity for the program, salted here
//! with the compiler version and flags) plus C *source*, and returns a
//! loaded module from which typed symbols can be resolved. All policy —
//! which programs are eligible, what the C looks like, how sweeps map onto
//! the emitted ABI — lives in `stencilflow-codegen` and
//! `stencilflow-reference`; this crate only guarantees that
//!
//! * identical `(salt, fingerprint)` pairs never invoke `cc` twice, even
//!   across processes (the disk cache is the source of truth; an atomic
//!   `.key` sidecar written last marks an entry complete);
//! * a fingerprint collision (same hash, different key material) is
//!   detected and treated as a miss rather than served wrong code;
//! * entries built under a different compiler version or flag set are
//!   evicted at engine start, and the cache stays under a byte bound via
//!   least-recently-used eviction;
//! * everything `unsafe` stays inside [`ffi`], each block justified
//!   against the verifier judgment the emitted code was derived from (the
//!   rest of the workspace keeps `#![forbid(unsafe_code)]`).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod ffi;

pub use ffi::{EvalFn, ModuleHandle, SlotArg, StageFn, SweepArgs};

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

/// Compiler flags every JIT translation unit is built with. The set is part
/// of the cache salt and is chosen for *bit-identity with the interpreter*,
/// not peak speed:
///
/// * `-ffp-contract=off` — GCC's GNU-C default is `fast`, which fuses
///   `a*b + c` into FMA and changes results by one rounding; the
///   interpreter performs two roundings, so contraction must be off.
/// * `-fno-math-errno` — frees the compiler from materializing `errno`
///   stores around libm calls without changing any computed value.
/// * no `-march=native`, no `-ffast-math`: value-changing optimization is
///   out of the question, and host-specific code would poison a cache
///   shared between machines.
pub const BASE_CFLAGS: &[&str] = &[
    "-std=c11",
    "-O3",
    "-fPIC",
    "-shared",
    "-ffp-contract=off",
    "-fno-math-errno",
];

/// Default cap on the on-disk cache (sources, objects, sidecars, logs).
pub const DEFAULT_MAX_CACHE_BYTES: u64 = 256 * 1024 * 1024;

/// In-process loaded-module cache capacity; mirrors the executor's
/// compiled-program cache discipline (clear on overflow, no LRU churn).
const MODULE_CACHE_CAPACITY: usize = 64;

/// Counters for the disk cache and compiler driver, exported into the CI
/// artifact bundle by the `jit_gate` binary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Loads served from a valid existing cache entry (disk or in-process).
    pub hits: u64,
    /// Loads that required building a new entry.
    pub misses: u64,
    /// Times the external C compiler was actually spawned. The CI jit gate
    /// asserts this stays 0 on a warmed cache.
    pub cc_invocations: u64,
    /// Entries removed by salt-change or LRU byte-bound eviction.
    pub evictions: u64,
    /// Total bytes currently held by the on-disk cache.
    pub cache_bytes: u64,
}

/// Construction parameters for a [`JitEngine`].
#[derive(Debug, Clone)]
pub struct JitConfig {
    /// Directory holding `{hash}.c/.so/.key/.log` entries; created if absent.
    pub cache_dir: PathBuf,
    /// Byte bound enforced by LRU eviction after each build.
    pub max_cache_bytes: u64,
    /// The C compiler to drive (a name resolved via `PATH` or a path).
    pub cc: String,
    /// Extra flags appended after [`BASE_CFLAGS`]; they participate in the
    /// cache salt, so changing them invalidates prior entries.
    pub extra_flags: Vec<String>,
}

impl JitConfig {
    /// Configuration from the environment:
    /// `SF_JIT_CACHE_DIR` (default: `<tmp>/stencilflow-jit-cache`),
    /// `SF_JIT_CACHE_MAX_BYTES` (default 256 MiB), `SF_JIT_CC` (default
    /// `cc`).
    pub fn from_env() -> JitConfig {
        let cache_dir = std::env::var_os("SF_JIT_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| std::env::temp_dir().join("stencilflow-jit-cache"));
        let max_cache_bytes = std::env::var("SF_JIT_CACHE_MAX_BYTES")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(DEFAULT_MAX_CACHE_BYTES);
        let cc = std::env::var("SF_JIT_CC").unwrap_or_else(|_| "cc".to_string());
        JitConfig {
            cache_dir,
            max_cache_bytes,
            cc,
            extra_flags: Vec::new(),
        }
    }
}

/// A compiler driver plus disk-backed code cache. Cheap to share behind an
/// `Arc`; all interior state is mutex-guarded.
#[derive(Debug)]
pub struct JitEngine {
    config: JitConfig,
    /// First line of `cc --version` plus the full flag set; keys every
    /// cache entry so a toolchain change can never serve stale code.
    salt: String,
    stats: Mutex<CacheStats>,
    modules: Mutex<HashMap<String, Arc<ModuleHandle>>>,
}

impl JitEngine {
    /// Probe the configured compiler, prepare the cache directory, and
    /// evict entries built under a different salt.
    ///
    /// # Errors
    ///
    /// Fails when the compiler cannot be spawned (the usual "no `cc` on
    /// this machine" case — callers surface this as the JIT-unavailable
    /// reason and fall back to the fused tier) or the cache directory
    /// cannot be created.
    pub fn new(config: JitConfig) -> Result<JitEngine, String> {
        let probe = Command::new(&config.cc)
            .arg("--version")
            .output()
            .map_err(|e| format!("cannot run `{} --version`: {e}", config.cc))?;
        if !probe.status.success() {
            return Err(format!(
                "`{} --version` failed with {}: {}",
                config.cc,
                probe.status,
                String::from_utf8_lossy(&probe.stderr).trim()
            ));
        }
        let version_line = String::from_utf8_lossy(&probe.stdout)
            .lines()
            .next()
            .unwrap_or("")
            .trim()
            .to_string();
        if version_line.is_empty() {
            return Err(format!("`{} --version` produced no output", config.cc));
        }
        let mut flags: Vec<String> = BASE_CFLAGS.iter().map(|f| f.to_string()).collect();
        flags.extend(config.extra_flags.iter().cloned());
        let salt = format!("{version_line} | {}", flags.join(" "));
        fs::create_dir_all(&config.cache_dir).map_err(|e| {
            format!(
                "cannot create JIT cache dir {}: {e}",
                config.cache_dir.display()
            )
        })?;
        let engine = JitEngine {
            config,
            salt,
            stats: Mutex::new(CacheStats::default()),
            modules: Mutex::new(HashMap::new()),
        };
        engine.evict_stale_salt();
        engine.refresh_cache_bytes();
        Ok(engine)
    }

    /// The compiler-identity salt mixed into every cache key.
    pub fn salt(&self) -> &str {
        &self.salt
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        self.stats.lock().unwrap().clone()
    }

    /// The cache entry hash for a fingerprint under this engine's salt;
    /// stable across processes, used to name on-disk artifacts.
    pub fn entry_hash(&self, fingerprint: &str) -> String {
        let key = self.key_material(fingerprint);
        // Two independently seeded FNV-1a-64 passes give a 128-bit name;
        // the `.key` sidecar still guards against the residual collision.
        let a = fnv1a64(0xcbf2_9ce4_8422_2325, key.as_bytes());
        let b = fnv1a64(
            0xcbf2_9ce4_8422_2325 ^ 0x9e37_79b9_7f4a_7c15,
            key.as_bytes(),
        );
        format!("{a:016x}{b:016x}")
    }

    fn key_material(&self, fingerprint: &str) -> String {
        format!("{}\n{fingerprint}", self.salt)
    }

    /// Load the module for `(fingerprint, source)`, compiling at most once
    /// per `(salt, fingerprint)` across all processes sharing the cache
    /// directory.
    ///
    /// # Errors
    ///
    /// Fails when the compiler rejects the source (its stderr is included
    /// and persisted to the entry's `.log`) or the produced object cannot
    /// be loaded.
    pub fn load(&self, fingerprint: &str, source: &str) -> Result<Arc<ModuleHandle>, String> {
        let hash = self.entry_hash(fingerprint);
        if let Some(module) = self.modules.lock().unwrap().get(&hash) {
            self.stats.lock().unwrap().hits += 1;
            return Ok(Arc::clone(module));
        }
        let so_path = self.entry_path(&hash, "so");
        let key_path = self.entry_path(&hash, "key");
        let module =
            if self.disk_entry_valid(&hash, fingerprint) {
                self.stats.lock().unwrap().hits += 1;
                // Touch the hit marker so LRU eviction sees recent use.
                let _ = fs::OpenOptions::new()
                    .write(true)
                    .open(&key_path)
                    .and_then(|f| f.set_modified(SystemTime::now()));
                Arc::new(ModuleHandle::open(&so_path).map_err(|e| {
                    format!("cached module {} failed to load: {e}", so_path.display())
                })?)
            } else {
                self.build_entry(&hash, fingerprint, source)?;
                Arc::new(
                    ModuleHandle::open(&so_path)
                        .map_err(|e| format!("freshly built module failed to load: {e}"))?,
                )
            };
        let mut modules = self.modules.lock().unwrap();
        if modules.len() >= MODULE_CACHE_CAPACITY {
            modules.clear();
        }
        modules.insert(hash, Arc::clone(&module));
        Ok(module)
    }

    /// Resolve a stage-sweep symbol from a loaded module.
    ///
    /// # Errors
    ///
    /// Fails when the symbol is absent from the module.
    pub fn stage_fn(&self, module: &Arc<ModuleHandle>, symbol: &str) -> Result<StageFn, String> {
        StageFn::resolve(module, symbol)
    }

    /// Resolve a scalar-evaluation symbol (used by codegen round-trip
    /// tests) from a loaded module.
    ///
    /// # Errors
    ///
    /// Fails when the symbol is absent from the module.
    pub fn eval_fn(
        &self,
        module: &Arc<ModuleHandle>,
        symbol: &str,
        arity: usize,
    ) -> Result<EvalFn, String> {
        EvalFn::resolve(module, symbol, arity)
    }

    fn entry_path(&self, hash: &str, ext: &str) -> PathBuf {
        self.config.cache_dir.join(format!("{hash}.{ext}"))
    }

    /// An entry is a valid hit iff the `.so` exists and the `.key` sidecar
    /// (written last, atomically) matches this engine's full key material —
    /// a mismatched sidecar under the same hash is a detected collision or
    /// a torn write, and is rebuilt.
    fn disk_entry_valid(&self, hash: &str, fingerprint: &str) -> bool {
        if !self.entry_path(hash, "so").is_file() {
            return false;
        }
        match fs::read_to_string(self.entry_path(hash, "key")) {
            Ok(stored) => stored == self.key_material(fingerprint),
            Err(_) => false,
        }
    }

    fn build_entry(&self, hash: &str, fingerprint: &str, source: &str) -> Result<(), String> {
        let c_path = self.entry_path(hash, "c");
        let so_path = self.entry_path(hash, "so");
        let key_path = self.entry_path(hash, "key");
        let log_path = self.entry_path(hash, "log");
        // A rebuild over a mismatched entry must first drop the old hit
        // marker, so a crash mid-build leaves a miss, never a wrong hit.
        let _ = fs::remove_file(&key_path);
        write_atomic(&c_path, source.as_bytes())?;
        let so_tmp = self.entry_path(hash, "so.tmp");
        let mut cmd = Command::new(&self.config.cc);
        cmd.args(BASE_CFLAGS.iter())
            .args(self.config.extra_flags.iter())
            .arg("-o")
            .arg(&so_tmp)
            .arg(&c_path)
            .arg("-lm");
        {
            let mut stats = self.stats.lock().unwrap();
            stats.misses += 1;
            stats.cc_invocations += 1;
        }
        let output = cmd
            .output()
            .map_err(|e| format!("cannot run `{}`: {e}", self.config.cc))?;
        let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
        let _ = fs::write(&log_path, &stderr);
        if !output.status.success() {
            let _ = fs::remove_file(&so_tmp);
            return Err(format!(
                "`{}` failed with {} on {}:\n{}",
                self.config.cc,
                output.status,
                c_path.display(),
                stderr.trim()
            ));
        }
        fs::rename(&so_tmp, &so_path)
            .map_err(|e| format!("cannot finalize {}: {e}", so_path.display()))?;
        // The `.key` sidecar is the commit point: written last, atomically.
        write_atomic(&key_path, self.key_material(fingerprint).as_bytes())?;
        self.enforce_byte_bound(hash);
        self.refresh_cache_bytes();
        Ok(())
    }

    /// Remove every entry whose sidecar was written under a different
    /// salt (compiler upgrade, flag change). Runs once at engine start.
    fn evict_stale_salt(&self) {
        let mut evicted = 0u64;
        for (hash, key_path) in self.cache_keys() {
            let stale = match fs::read_to_string(&key_path) {
                Ok(stored) => stored.lines().next().unwrap_or("") != self.salt,
                Err(_) => true,
            };
            if stale {
                self.remove_entry(&hash);
                evicted += 1;
            }
        }
        if evicted > 0 {
            self.stats.lock().unwrap().evictions += evicted;
        }
    }

    /// Drop least-recently-used entries (by `.key` mtime) until the cache
    /// is within its byte bound; the entry named `keep` (the one just
    /// built) is never evicted.
    fn enforce_byte_bound(&self, keep: &str) {
        let mut entries: Vec<(String, SystemTime, u64)> = Vec::new();
        for (hash, key_path) in self.cache_keys() {
            let mtime = fs::metadata(&key_path)
                .and_then(|m| m.modified())
                .unwrap_or(SystemTime::UNIX_EPOCH);
            entries.push((hash.clone(), mtime, self.entry_bytes(&hash)));
        }
        let mut total: u64 = entries.iter().map(|(_, _, b)| b).sum();
        entries.sort_by_key(|(_, mtime, _)| *mtime);
        let mut evicted = 0u64;
        for (hash, _, bytes) in entries {
            if total <= self.config.max_cache_bytes {
                break;
            }
            if hash == keep {
                continue;
            }
            self.remove_entry(&hash);
            total = total.saturating_sub(bytes);
            evicted += 1;
        }
        if evicted > 0 {
            self.stats.lock().unwrap().evictions += evicted;
        }
    }

    /// `(hash, key-path)` for every committed entry in the cache dir.
    fn cache_keys(&self) -> Vec<(String, PathBuf)> {
        let mut keys = Vec::new();
        let Ok(dir) = fs::read_dir(&self.config.cache_dir) else {
            return keys;
        };
        for entry in dir.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("key") {
                if let Some(hash) = path.file_stem().and_then(|s| s.to_str()) {
                    keys.push((hash.to_string(), path.clone()));
                }
            }
        }
        keys
    }

    fn entry_bytes(&self, hash: &str) -> u64 {
        ["c", "so", "key", "log"]
            .iter()
            .filter_map(|ext| fs::metadata(self.entry_path(hash, ext)).ok())
            .map(|m| m.len())
            .sum()
    }

    fn remove_entry(&self, hash: &str) {
        // Sidecar first: once the hit marker is gone the entry is a miss
        // even if later removals fail.
        for ext in ["key", "so", "c", "log", "so.tmp"] {
            let _ = fs::remove_file(self.entry_path(hash, ext));
        }
        self.modules.lock().unwrap().remove(hash);
    }

    fn refresh_cache_bytes(&self) {
        let total: u64 = self
            .cache_keys()
            .iter()
            .map(|(hash, _)| self.entry_bytes(hash))
            .sum();
        self.stats.lock().unwrap().cache_bytes = total;
    }
}

/// FNV-1a over `bytes` from an explicit offset basis (seeding the basis
/// differently yields an independent hash stream).
fn fnv1a64(basis: u64, bytes: &[u8]) -> u64 {
    let mut hash = basis;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Write `bytes` to `path` atomically (`path` + `.tmp`, then rename), so a
/// concurrent reader sees either the old content or the new, never a torn
/// file.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), String> {
    let tmp = path.with_extension(match path.extension().and_then(|e| e.to_str()) {
        Some(ext) => format!("{ext}.w"),
        None => "w".to_string(),
    });
    fs::write(&tmp, bytes).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    fs::rename(&tmp, path).map_err(|e| format!("cannot finalize {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static TEST_DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

    fn test_config() -> JitConfig {
        let n = TEST_DIR_COUNTER.fetch_add(1, Ordering::SeqCst);
        let dir = std::env::temp_dir().join(format!("sf-jit-test-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        JitConfig {
            cache_dir: dir,
            max_cache_bytes: DEFAULT_MAX_CACHE_BYTES,
            cc: std::env::var("SF_JIT_CC").unwrap_or_else(|_| "cc".to_string()),
            extra_flags: Vec::new(),
        }
    }

    const EVAL_SOURCE: &str = "#include <stdint.h>\n\
        double sf_eval(const double *sf_slots) {\n\
            return sf_slots[0] * 2.0 + sf_slots[1];\n\
        }\n";

    const STAGE_SOURCE: &str = "#include <stdint.h>\n\
        void sf_stage_0(const double *const *sf_slots, const double *sf_scalars,\n\
                        const int64_t *sf_ss0, const int64_t *sf_ss1,\n\
                        double *restrict sf_out, int64_t sf_os0, int64_t sf_os1,\n\
                        int64_t sf_n0, int64_t sf_n1, int64_t sf_nk) {\n\
            for (int64_t i0 = 0; i0 < sf_n0; ++i0) {\n\
                for (int64_t i1 = 0; i1 < sf_n1; ++i1) {\n\
                    const double *sf_p0 = sf_slots[0] + i0 * sf_ss0[0] + i1 * sf_ss1[0];\n\
                    double *sf_o = sf_out + i0 * sf_os0 + i1 * sf_os1;\n\
                    for (int64_t sf_k = 0; sf_k < sf_nk; ++sf_k) {\n\
                        sf_o[sf_k] = sf_p0[sf_k] * sf_scalars[1];\n\
                    }\n\
                }\n\
            }\n\
        }\n";

    #[test]
    fn compiles_loads_and_calls_an_eval_symbol() {
        let config = test_config();
        let dir = config.cache_dir.clone();
        let engine = JitEngine::new(config).expect("engine");
        let module = engine.load("eval-basic", EVAL_SOURCE).expect("load");
        let eval = engine.eval_fn(&module, "sf_eval", 2).expect("symbol");
        assert_eq!(eval.call(&[3.0, 0.5]).unwrap(), 6.5);
        assert!(
            eval.call(&[1.0]).is_err(),
            "arity mismatch must be rejected"
        );
        let stats = engine.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.cc_invocations, 1);
        assert!(stats.cache_bytes > 0);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn stage_sweep_runs_and_validates_bounds() {
        let config = test_config();
        let dir = config.cache_dir.clone();
        let engine = JitEngine::new(config).expect("engine");
        let module = engine.load("stage-basic", STAGE_SOURCE).expect("load");
        let stage = engine.stage_fn(&module, "sf_stage_0").expect("symbol");

        let input: Vec<f64> = (0..24).map(f64::from).collect();
        let mut out = vec![0.0; 24];
        let slots = [
            SlotArg::Tap {
                buf: &input,
                base: 0,
                s0: 12,
                s1: 4,
            },
            SlotArg::Scalar(3.0),
        ];
        let mut args = SweepArgs {
            slots: &slots,
            out: &mut out,
            out_base: 0,
            out_s0: 12,
            out_s1: 4,
            n0: 2,
            n1: 3,
            nk: 4,
        };
        stage.sweep(&mut args).expect("sweep");
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f64 * 3.0, "cell {i}");
        }

        // Geometry that reaches past the buffer must be rejected in safe
        // code, not dereferenced.
        let mut short = vec![0.0; 23];
        let mut bad = SweepArgs {
            slots: &slots,
            out: &mut short,
            out_base: 0,
            out_s0: 12,
            out_s1: 4,
            n0: 2,
            n1: 3,
            nk: 4,
        };
        assert!(stage.sweep(&mut bad).is_err());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn second_engine_hits_disk_cache_without_invoking_cc() {
        let config = test_config();
        let dir = config.cache_dir.clone();
        {
            let engine = JitEngine::new(config.clone()).expect("engine");
            engine.load("shared-entry", EVAL_SOURCE).expect("load");
            assert_eq!(engine.stats().cc_invocations, 1);
        }
        // Fresh engine, same directory: must be a pure disk hit.
        let engine = JitEngine::new(config).expect("engine");
        let module = engine.load("shared-entry", EVAL_SOURCE).expect("load");
        let eval = engine.eval_fn(&module, "sf_eval", 2).expect("symbol");
        assert_eq!(eval.call(&[1.0, 1.0]).unwrap(), 3.0);
        let stats = engine.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.cc_invocations, 0, "warm cache must never recompile");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn sidecar_mismatch_is_treated_as_a_collision_and_rebuilt() {
        let config = test_config();
        let dir = config.cache_dir.clone();
        let engine = JitEngine::new(config.clone()).expect("engine");
        engine.load("collider", EVAL_SOURCE).expect("load");
        let hash = engine.entry_hash("collider");
        drop(engine);

        // Forge a sidecar claiming different key material under the same
        // hash — as if another fingerprint had collided into this entry.
        let key_path = dir.join(format!("{hash}.key"));
        let forged = fs::read_to_string(&key_path)
            .unwrap()
            .replace("collider", "other");
        fs::write(&key_path, forged).unwrap();

        let engine = JitEngine::new(config).expect("engine");
        engine.load("collider", EVAL_SOURCE).expect("load");
        let stats = engine.stats();
        assert_eq!(stats.hits, 0, "a collided entry must not be served");
        assert_eq!(stats.cc_invocations, 1);
        assert_eq!(
            fs::read_to_string(&key_path).unwrap(),
            format!("{}\ncollider", engine.salt()),
            "rebuild must restore the true key material"
        );
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn salt_change_evicts_stale_entries() {
        let config = test_config();
        let dir = config.cache_dir.clone();
        {
            let engine = JitEngine::new(config.clone()).expect("engine");
            engine.load("salted", EVAL_SOURCE).expect("load");
        }
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 4, "c/so/key/log");

        // A flag change is a salt change: the old entry must be evicted at
        // engine start and the load must recompile.
        let mut changed = config;
        changed.extra_flags = vec!["-DSF_SALT_CHANGE".to_string()];
        let engine = JitEngine::new(changed).expect("engine");
        assert_eq!(
            fs::read_dir(&dir).unwrap().count(),
            0,
            "stale-salt entries must be gone after engine init"
        );
        engine.load("salted", EVAL_SOURCE).expect("load");
        let stats = engine.stats();
        assert!(stats.evictions >= 1);
        assert_eq!(stats.cc_invocations, 1);
        assert_eq!(stats.hits, 0);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn byte_bound_evicts_least_recently_used_entry() {
        let mut config = test_config();
        let dir = config.cache_dir.clone();
        // Far below the size of a single entry: every new build must push
        // out everything older than itself.
        config.max_cache_bytes = 1;
        let engine = JitEngine::new(config).expect("engine");
        engine.load("lru-a", EVAL_SOURCE).expect("load");
        let hash_a = engine.entry_hash("lru-a");
        engine.load("lru-b", STAGE_SOURCE).expect("load");
        let hash_b = engine.entry_hash("lru-b");
        assert!(
            !dir.join(format!("{hash_a}.key")).exists(),
            "oldest entry must be evicted when over the byte bound"
        );
        assert!(
            dir.join(format!("{hash_b}.so")).exists(),
            "the just-built entry must survive"
        );
        assert!(engine.stats().evictions >= 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn compile_error_reports_compiler_stderr() {
        let config = test_config();
        let dir = config.cache_dir.clone();
        let engine = JitEngine::new(config).expect("engine");
        let err = engine
            .load(
                "broken",
                "double sf_eval(const double *s) { return undeclared_symbol; }\n",
            )
            .expect_err("must fail");
        assert!(
            err.contains("undeclared_symbol"),
            "compiler stderr must be surfaced, got: {err}"
        );
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn missing_compiler_is_a_loud_construction_error() {
        let mut config = test_config();
        config.cc = "definitely-not-a-compiler-sf".to_string();
        let err = JitEngine::new(config).expect_err("must fail");
        assert!(err.contains("definitely-not-a-compiler-sf"));
    }
}
