//! The quarantined `unsafe` surface of the JIT tier: `dlopen`-family
//! declarations, shared-object handles, and the typed symbol wrappers the
//! safe API hands out.
//!
//! This module is the **only** place in the workspace where `unsafe`
//! appears (the crate is `#![deny(unsafe_code)]`; every other crate keeps
//! `#![forbid(unsafe_code)]`). The exposure is kept minimal on purpose:
//!
//! * the raw symbols loaded here are produced exclusively by
//!   `stencilflow-codegen`'s whole-program emitter, which only emits from
//!   bytecode that carries a clean `stencilflow_expr::verify::KernelJudgment`
//!   (verified stack/local/slot safety, branch-free) — the generated C
//!   reads slot rows at `p[k]` for `k ∈ [0, nk)` and writes the output row
//!   at the same bounded indices, nothing else;
//! * independently of that judgment, [`StageFn::sweep`] re-validates every
//!   buffer bound against the sweep geometry *in safe code* before the
//!   call, so even a miscomputed base/stride is rejected instead of
//!   dereferenced;
//! * aliasing is ruled out by construction: the output row is an exclusive
//!   `&mut` borrow while every tap is a shared borrow, which the borrow
//!   checker enforces at the call site (the emitted C declares the output
//!   pointer `restrict`, matching that guarantee).
#![allow(unsafe_code)]

use std::ffi::{c_char, c_int, c_void, CStr, CString};
use std::path::Path;
use std::sync::Arc;

// `dlopen`/`dlsym`/`dlclose`/`dlerror` live in libc proper on every glibc
// ≥ 2.34 (and in libSystem on macOS), both of which the Rust runtime
// already links; no extra link attribute is needed.
extern "C" {
    fn dlopen(filename: *const c_char, flags: c_int) -> *mut c_void;
    fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
    fn dlclose(handle: *mut c_void) -> c_int;
    fn dlerror() -> *mut c_char;
}

/// `RTLD_NOW`: resolve all symbols at load time, so a missing libm symbol
/// fails the load instead of aborting mid-sweep.
const RTLD_NOW: c_int = 2;

/// The last `dlerror` message, or a fallback when libdl reports none.
fn dl_error_message() -> String {
    // SAFETY: `dlerror` returns either NULL or a pointer to a
    // NUL-terminated string in libdl's static buffer, valid until the next
    // dl* call on this thread; it is only read here, immediately.
    let ptr = unsafe { dlerror() };
    if ptr.is_null() {
        return "unknown dlopen error".to_string();
    }
    // SAFETY: non-NULL `dlerror` results are valid NUL-terminated C
    // strings (POSIX); the bytes are copied out before any further dl*
    // call could invalidate the buffer.
    unsafe { CStr::from_ptr(ptr) }
        .to_string_lossy()
        .into_owned()
}

/// An open shared object. Closing happens on drop; symbol wrappers keep the
/// handle alive through an [`Arc`], so a loaded function can never outlive
/// its module.
#[derive(Debug)]
pub struct ModuleHandle {
    raw: *mut c_void,
}

// SAFETY: a POSIX `dlopen` handle is process-global state, not
// thread-affine — `dlsym` and `dlclose` on it are thread-safe (POSIX
// requires the dl* family to be thread-safe), and the code loaded from a
// stencilflow JIT module is pure (no writable globals are ever emitted),
// so sharing the handle across the executor's sweep workers is sound.
unsafe impl Send for ModuleHandle {}
// SAFETY: see `Send` above; `&ModuleHandle` only permits `dlsym` lookups,
// which are thread-safe.
unsafe impl Sync for ModuleHandle {}

impl ModuleHandle {
    /// Open a shared object with `RTLD_NOW`.
    pub(crate) fn open(path: &Path) -> Result<ModuleHandle, String> {
        let c_path = CString::new(path.to_string_lossy().into_owned())
            .map_err(|_| format!("module path contains a NUL byte: {}", path.display()))?;
        // SAFETY: `c_path` is a valid NUL-terminated string and the flags
        // are a supported `dlopen` mode; a NULL return is handled below.
        let raw = unsafe { dlopen(c_path.as_ptr(), RTLD_NOW) };
        if raw.is_null() {
            return Err(dl_error_message());
        }
        Ok(ModuleHandle { raw })
    }

    /// Look up a symbol's raw address.
    fn symbol_address(&self, symbol: &str) -> Result<*mut c_void, String> {
        let c_symbol = CString::new(symbol)
            .map_err(|_| format!("symbol name contains a NUL byte: {symbol}"))?;
        // SAFETY: `self.raw` is a live handle (it is only closed in Drop,
        // and `self` is borrowed) and `c_symbol` is a valid C string; a
        // NULL result is handled below (emitted functions are never at
        // address zero).
        let addr = unsafe { dlsym(self.raw, c_symbol.as_ptr()) };
        if addr.is_null() {
            return Err(format!(
                "symbol `{symbol}` not found: {}",
                dl_error_message()
            ));
        }
        Ok(addr)
    }
}

impl Drop for ModuleHandle {
    fn drop(&mut self) {
        // SAFETY: `raw` came from a successful `dlopen` and is closed
        // exactly once (Drop consumes the sole owner; symbol wrappers hold
        // the Arc that delays this drop until they are gone).
        unsafe { dlclose(self.raw) };
    }
}

/// ABI of an emitted stage-sweep function (see
/// `stencilflow_codegen::jit_unit` for the generating side):
///
/// ```c
/// void sf_stage_N(const double *const *slots, const double *scalars,
///                 const int64_t *ss0, const int64_t *ss1,
///                 double *restrict out, int64_t os0, int64_t os1,
///                 int64_t n0, int64_t n1, int64_t nk);
/// ```
///
/// The function sweeps `n0 × n1` rows of `nk` cells; the row pointer of
/// slot `s` at `(i0, i1)` is `slots[s] + i0*ss0[s] + i1*ss1[s]`, and only
/// indices `[0, nk)` of each row pointer (shifted by nothing further) are
/// read or written.
type RawStageFn = unsafe extern "C" fn(
    *const *const f64,
    *const f64,
    *const i64,
    *const i64,
    *mut f64,
    i64,
    i64,
    i64,
    i64,
    i64,
);

/// ABI of an emitted scalar evaluation function (round-trip tests):
/// `double sf_eval(const double *slots)` over `arity` slot values.
type RawEvalFn = unsafe extern "C" fn(*const f64) -> f64;

/// How one kernel slot is fed to a [`StageFn::sweep`] call.
#[derive(Debug)]
pub enum SlotArg<'a> {
    /// Scalar symbol: the emitted code reads it from the scalar table, the
    /// tap pointer for this slot is never dereferenced.
    Scalar(f64),
    /// Buffer tap: row `(i0, i1)` starts at `buf[base + i0*s0 + i1*s1]`
    /// and the sweep reads cells `[0, nk)` of it.
    Tap {
        /// The scratch buffer the slot reads.
        buf: &'a [f64],
        /// Flat offset of the `(0, 0)` row's `k = 0` cell.
        base: usize,
        /// Outer-row stride.
        s0: usize,
        /// Inner-row stride.
        s1: usize,
    },
}

/// One stage-sweep call: geometry plus the borrowed buffers. The `&mut`
/// output against `&` taps makes caller-side aliasing impossible.
#[derive(Debug)]
pub struct SweepArgs<'a> {
    /// Per-slot sources, indexed by kernel slot.
    pub slots: &'a [SlotArg<'a>],
    /// Output buffer (the stage's scratch buffer, temporarily detached).
    pub out: &'a mut [f64],
    /// Flat offset of the output's `(0, 0)` row `k = 0` cell.
    pub out_base: usize,
    /// Output outer-row stride.
    pub out_s0: usize,
    /// Output inner-row stride.
    pub out_s1: usize,
    /// Outer row count.
    pub n0: usize,
    /// Inner row count.
    pub n1: usize,
    /// Cells per row.
    pub nk: usize,
}

/// Largest flat index a `(base, s0, s1)` row layout touches over an
/// `n0 × n1 × nk` sweep, or `None` on arithmetic overflow (which the
/// caller treats as out of bounds).
fn max_index(base: usize, s0: usize, s1: usize, n0: usize, n1: usize, nk: usize) -> Option<usize> {
    base.checked_add((n0 - 1).checked_mul(s0)?)?
        .checked_add((n1 - 1).checked_mul(s1)?)?
        .checked_add(nk - 1)
}

/// A stage-sweep symbol bound to its (kept-alive) module.
#[derive(Debug, Clone)]
pub struct StageFn {
    module: Arc<ModuleHandle>,
    raw: RawStageFn,
}

impl StageFn {
    pub(crate) fn resolve(module: &Arc<ModuleHandle>, symbol: &str) -> Result<StageFn, String> {
        let addr = module.symbol_address(symbol)?;
        // SAFETY: the address is a non-NULL function symbol from a module
        // emitted by the stencilflow code generator, whose stage symbols
        // all have exactly the `RawStageFn` signature (the emitter and
        // this declaration are pinned to each other by the round-trip and
        // golden-equivalence suites).
        let raw = unsafe { std::mem::transmute::<*mut c_void, RawStageFn>(addr) };
        Ok(StageFn {
            module: Arc::clone(module),
            raw,
        })
    }

    /// Sweep `args.n0 × args.n1` rows of `args.nk` cells through the
    /// compiled stage.
    ///
    /// # Errors
    ///
    /// Returns a description when any tap or the output cannot hold the
    /// sweep (`base + (n0-1)·s0 + (n1-1)·s1 + nk` exceeds the buffer);
    /// nothing is dereferenced in that case.
    pub fn sweep(&self, args: &mut SweepArgs<'_>) -> Result<(), String> {
        if args.n0 == 0 || args.n1 == 0 || args.nk == 0 {
            return Ok(());
        }
        // The module must stay loaded for the duration of the call.
        let _keep_alive = &self.module;
        // Validate every reachable index in safe code before the native
        // call: the emitted code touches exactly the row-layout footprint
        // checked here (by the emitter's construction from verified,
        // branch-free bytecode — its only loads are `p[k]`, `k < nk`).
        for (ix, slot) in args.slots.iter().enumerate() {
            if let SlotArg::Tap { buf, base, s0, s1 } = slot {
                let max = max_index(*base, *s0, *s1, args.n0, args.n1, args.nk);
                match max {
                    Some(max) if max < buf.len() => {}
                    _ => {
                        return Err(format!(
                            "slot {ix} tap out of bounds: base {base} strides ({s0}, {s1}) \
                             over {}x{}x{} exceeds buffer of {}",
                            args.n0,
                            args.n1,
                            args.nk,
                            buf.len()
                        ));
                    }
                }
            }
        }
        match max_index(
            args.out_base,
            args.out_s0,
            args.out_s1,
            args.n0,
            args.n1,
            args.nk,
        ) {
            Some(max) if max < args.out.len() => {}
            _ => {
                return Err(format!(
                    "output out of bounds: base {} strides ({}, {}) over {}x{}x{} \
                     exceeds buffer of {}",
                    args.out_base,
                    args.out_s0,
                    args.out_s1,
                    args.n0,
                    args.n1,
                    args.nk,
                    args.out.len()
                ));
            }
        }
        let mut slot_ptrs: Vec<*const f64> = Vec::with_capacity(args.slots.len());
        let mut scalars: Vec<f64> = Vec::with_capacity(args.slots.len());
        let mut ss0: Vec<i64> = Vec::with_capacity(args.slots.len());
        let mut ss1: Vec<i64> = Vec::with_capacity(args.slots.len());
        for slot in args.slots.iter() {
            match slot {
                SlotArg::Scalar(v) => {
                    // The tap pointer of a scalar slot is never
                    // dereferenced (the emitter reads the scalar table
                    // instead); a well-aligned dangling pointer keeps the
                    // array free of NULLs.
                    slot_ptrs.push(std::ptr::NonNull::<f64>::dangling().as_ptr());
                    scalars.push(*v);
                    ss0.push(0);
                    ss1.push(0);
                }
                SlotArg::Tap { buf, base, s0, s1 } => {
                    slot_ptrs.push(buf[*base..].as_ptr());
                    scalars.push(0.0);
                    ss0.push(*s0 as i64);
                    ss1.push(*s1 as i64);
                }
            }
        }
        let out = &mut args.out[args.out_base..];
        // SAFETY: the call target is a stage function emitted from
        // bytecode holding a clean `KernelJudgment` (verified, branch-free
        // — see the module docs), so its entire memory footprint is the
        // row layout validated above: every tap read and output write
        // lands strictly inside the borrowed slices, the output slice is
        // an exclusive borrow disjoint from every tap (borrow-checked at
        // the call site, matching the emitted `restrict`), and the
        // argument arrays outlive the call. The module stays loaded for
        // the life of `self.module`.
        unsafe {
            (self.raw)(
                slot_ptrs.as_ptr(),
                scalars.as_ptr(),
                ss0.as_ptr(),
                ss1.as_ptr(),
                out.as_mut_ptr(),
                args.out_s0 as i64,
                args.out_s1 as i64,
                args.n0 as i64,
                args.n1 as i64,
                args.nk as i64,
            );
        }
        Ok(())
    }
}

/// A scalar-evaluation symbol bound to its (kept-alive) module; used by the
/// codegen round-trip tests to execute emitted expressions one cell at a
/// time.
#[derive(Debug, Clone)]
pub struct EvalFn {
    module: Arc<ModuleHandle>,
    raw: RawEvalFn,
    arity: usize,
}

impl EvalFn {
    pub(crate) fn resolve(
        module: &Arc<ModuleHandle>,
        symbol: &str,
        arity: usize,
    ) -> Result<EvalFn, String> {
        let addr = module.symbol_address(symbol)?;
        // SAFETY: as for `StageFn::resolve` — eval symbols are emitted
        // with exactly the `RawEvalFn` signature.
        let raw = unsafe { std::mem::transmute::<*mut c_void, RawEvalFn>(addr) };
        Ok(EvalFn {
            module: Arc::clone(module),
            raw,
            arity,
        })
    }

    /// Evaluate the compiled expression on one slot-value vector.
    ///
    /// # Errors
    ///
    /// Returns a description when `slots` does not match the arity the
    /// symbol was resolved with.
    pub fn call(&self, slots: &[f64]) -> Result<f64, String> {
        if slots.len() != self.arity {
            return Err(format!(
                "eval arity mismatch: got {} slot values, symbol takes {}",
                slots.len(),
                self.arity
            ));
        }
        let _keep_alive = &self.module;
        // SAFETY: the target reads exactly `arity` doubles from the
        // pointer (pinned by the emitter, validated against `slots.len()`
        // above) and performs no other memory access — it is emitted from
        // the same verified branch-free bytecode as the stage sweeps.
        Ok(unsafe { (self.raw)(slots.as_ptr()) })
    }
}
