#!/usr/bin/env bash
# Mirror of the CI gates (.github/workflows/ci.yml) so local runs and CI
# cannot drift: the workflow invokes this script, and a local
# `scripts/verify.sh` run reproduces exactly what CI enforces.
#
# Gates, in order:
#   1. cargo fmt --check          — formatting
#   2. cargo build --release     — the build the benchmarks and examples use
#   3. cargo test -q             — tier-1 tests (incl. golden equivalence
#                                  and the in-crate speedup floors)
#   4. cargo clippy -D warnings  — lints
#   5. cargo doc -D warnings     — documentation (intra-doc links included)
#   6. analyze --check           — the static-analysis gate: every workload
#                                  must be free of error-severity
#                                  diagnostics (cycles, out-of-domain
#                                  footprints, failed kernel verification,
#                                  predicted shard-link deadlocks); the
#                                  diagnostics JSON lands in $ANALYSIS_JSON
#   7. examples                  — compile-and-run every example
#   8. fault_sweep               — the sharded fault-injection suite: every
#                                  (seed x fault schedule) run must stay
#                                  bitwise identical to the interpreter;
#                                  seeds extend via STENCILFLOW_FAULT_SEEDS
#                                  (comma-separated), and the fault-log JSON
#                                  lands next to the bench JSON
#   9. jit gate                  — the Tier-4 native-JIT gate, run twice:
#                                  a first pass against an empty
#                                  $SF_JIT_CACHE_DIR sweeps all ten
#                                  workloads through the `cc`-compiled
#                                  `.so` backend and diffs each bitwise
#                                  against the interpreter (writing the
#                                  emitted C, compiler logs, and cache
#                                  stats to $JIT_ARTIFACTS), then a second
#                                  pass in a fresh process asserts the
#                                  disk cache serves every module without
#                                  spawning the compiler again. A working
#                                  system `cc` is probed up front; set
#                                  SF_JIT_ALLOW_MISSING_CC=1 to downgrade
#                                  a missing compiler to a skip.
#  10. bench_eval --quick + report --quick
#                                — the benchmark smoke run; writes the JSON
#                                  document the floor gate checks
#  11. bench_eval --check-floors — kernel-tier speedup floors (compiled /
#                                  typed / simd on jacobi3d, the
#                                  if-conversion lane floor on upwind3d,
#                                  the fused-tier floors on the chain
#                                  and time-stepping rows, the Tier-4
#                                  jit-vs-fused floor on the jacobi3d
#                                  rows, and the sharded zero-fault
#                                  overhead floors conditioned on the
#                                  recorded host thread count)
#  12. bench_serve --quick + --check-floors
#                                — the multi-tenant service-layer gate:
#                                  runs the seeded job mix through the
#                                  batch executor and fails the build if
#                                  sustained throughput falls under the
#                                  host-conditioned floor, the small-job
#                                  p99 latency bound breaks (fairness),
#                                  any job errors, or a measured
#                                  steady-state batch allocates at all
#                                  (pool/mask misses or recompiles != 0)
#  13. daemon gate               — the resilient-daemon smoke gate: pipes
#                                  a seeded mixed-traffic script (normal
#                                  + stepped jobs, a poison job, an
#                                  over-quota tenant, a past-deadline
#                                  job, a duplicate id, a mid-stream
#                                  drain) through the JSON-lines loop and
#                                  asserts every admitted job settles
#                                  with a structured outcome, completed
#                                  outputs are bitwise identical to the
#                                  interpreter, the drain is clean, and a
#                                  restarted daemon reuses the persisted
#                                  tier cache with zero re-measurements;
#                                  the stats JSON lands in $DAEMON_JSON
#
# The quick-mode JSON lands in $BENCH_JSON (default: bench_eval_ci.json in
# the repository root), the serve JSON in $SERVE_JSON (default:
# bench_serve_ci.json), the daemon JSON in $DAEMON_JSON (default:
# daemon_gate_ci.json), the fault log in $FAULT_JSON (default:
# fault_sweep_ci.json), and the jit bundle in $JIT_ARTIFACTS (default:
# jit_artifacts_ci/); CI uploads all of them as artifacts.

set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_JSON="${BENCH_JSON:-bench_eval_ci.json}"
SERVE_JSON="${SERVE_JSON:-bench_serve_ci.json}"
DAEMON_JSON="${DAEMON_JSON:-daemon_gate_ci.json}"
FAULT_JSON="${FAULT_JSON:-fault_sweep_ci.json}"
ANALYSIS_JSON="${ANALYSIS_JSON:-analysis_ci.json}"
JIT_ARTIFACTS="${JIT_ARTIFACTS:-jit_artifacts_ci}"
# The jit gate owns its cache directory so the zero-recompile assertion
# measures exactly the modules this run built, not a stale machine cache.
export SF_JIT_CACHE_DIR="${SF_JIT_CACHE_DIR:-$PWD/target/jit-cache-ci}"

# Probe for a usable C compiler before spending time on the build: the
# Tier-4 jit gate needs one, and a missing toolchain should fail loudly
# up front (opt out with SF_JIT_ALLOW_MISSING_CC=1, which downgrades the
# jit gate to an explicit skip).
JIT_CC="${SF_JIT_CC:-cc}"
HAVE_CC=1
if ! CC_PROBE="$("${JIT_CC}" --version 2>&1)"; then
  HAVE_CC=0
  if [ "${SF_JIT_ALLOW_MISSING_CC:-0}" != "1" ]; then
    echo "verify.sh: no usable C compiler: \`${JIT_CC} --version\` failed:" >&2
    echo "${CC_PROBE}" >&2
    echo "(set SF_JIT_ALLOW_MISSING_CC=1 to skip the jit gate instead)" >&2
    exit 1
  fi
else
  echo "==> C compiler probe: $(printf '%s' "${CC_PROBE}" | head -n 1)"
fi

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> static-analysis gate -> ${ANALYSIS_JSON}"
cargo run --release --bin analyze -- --check --out "${ANALYSIS_JSON}"

echo "==> examples"
cargo run --release --example quickstart
cargo run --release --example horizontal_diffusion
cargo run --release --example multi_device
cargo run --release --example deadlock_buffers

echo "==> sharded fault-injection sweep -> ${FAULT_JSON}"
cargo run --release --bin fault_sweep -- --out "${FAULT_JSON}"

if [ "${HAVE_CC}" = "1" ]; then
  echo "==> jit gate (cold cache) -> ${JIT_ARTIFACTS}"
  rm -rf "${SF_JIT_CACHE_DIR}" "${JIT_ARTIFACTS}"
  cargo run --release --bin jit_gate -- --artifacts "${JIT_ARTIFACTS}"
  echo "==> jit gate (warm cache, fresh process, zero recompiles)"
  cargo run --release --bin jit_gate -- --assert-cached
else
  echo "==> jit gate: SKIPPED (no cc)"
fi

echo "==> bench smoke run (quick mode) -> ${BENCH_JSON}"
cargo run --release --bin bench_eval -- --quick "${BENCH_JSON}"
cargo run --release --bin report -- --quick

echo "==> kernel-tier speedup floors"
cargo run --release --bin bench_eval -- --check-floors "${BENCH_JSON}"

echo "==> service-layer smoke run (quick mode) -> ${SERVE_JSON}"
cargo run --release --bin bench_serve -- --quick "${SERVE_JSON}"

echo "==> service-layer floors (throughput, p99 fairness, zero steady-state allocation)"
cargo run --release --bin bench_serve -- --check-floors "${SERVE_JSON}"

echo "==> resilient-daemon gate (chaos script + restart tier-cache reuse) -> ${DAEMON_JSON}"
cargo run --release --bin daemon_gate -- --out "${DAEMON_JSON}"

echo "verify.sh: all gates passed"
